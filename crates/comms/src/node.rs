//! The receiving end of the fleet plane: a TCP listener that stages
//! offered bundles next to a scoring node's spool, verifies them
//! against their content address, and atomically publishes them for the
//! node's `SpoolWatcher` to deploy.
//!
//! # Verify-before-visible
//!
//! An in-flight transfer lives in a hidden staging file
//! `.{tenant}.{checksum:016x}.part` inside the spool directory. The
//! watcher only considers `*.bundle` files, so a partial transfer is
//! never deployable. Only after a `Commit` frame arrives, every offered
//! byte is staged, and the staged file's FNV-1a 64 hash equals the
//! offered checksum does the node rename the part onto
//! `{tenant}.bundle` — the same single-syscall publish the local
//! hot-reload path uses, so the watcher observes either the old bundle
//! or the complete new one, never a torn write.
//!
//! # Resume
//!
//! The staging file is the resume state. A publisher that reconnects
//! and re-offers the same `(tenant, checksum, total_len)` gets back
//! `OfferAck { have }` where `have` is the staged prefix length, and
//! only sends the remaining bytes. Because the checksum is in the part
//! file's name, a *different* bundle for the same tenant never resumes
//! onto stale bytes — it starts its own part (and retires any stale
//! parts for that tenant).
//!
//! # Failure containment
//!
//! Hostile bytes cost exactly the connection that sent them: the node
//! answers with a typed `Nak` frame where it still can, closes that
//! socket, and keeps serving every other connection. A checksum
//! mismatch additionally deletes the staged part — those bytes are
//! provably corrupt and must not seed a resume.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mathkit::bytes::fnv1a64;

use crate::error::{CommsError, NakCode};
use crate::frame::{
    decode_request, encode_response, FrameHeader, Request, Response, DEFAULT_MAX_FRAME_LEN,
    HEADER_LEN,
};

/// Default cap on an offered bundle's total length (64 MiB — a trained
/// engine bundle on the acceptance corpus is well under 1 MiB).
pub const DEFAULT_MAX_BUNDLE_LEN: u64 = 64 * 1024 * 1024;

/// Default per-frame completion deadline (slow-loris defence).
pub const DEFAULT_FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// How often a blocked node thread wakes to check the stop flag.
const TICK: Duration = Duration::from_millis(50);

/// Looks up a tenant's exported streaming baseline (`None` when the
/// node has nothing deployed under that tenant).
pub type StateFn = Arc<dyn Fn(&str) -> Option<Vec<u8>> + Send + Sync>;

/// Observes [`NodeEvent`]s, typically to bump metrics counters.
pub type EventFn = Arc<dyn Fn(&NodeEvent) + Send + Sync>;

/// Something observable happened on the node's fleet endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NodeEvent {
    /// A bundle verified against its content address and was renamed
    /// into the spool, visible to the watcher's next poll.
    BundleStored {
        /// Tenant the bundle deploys.
        tenant: String,
        /// Total bundle length in bytes.
        bytes: u64,
        /// Staged prefix the transfer resumed from (0 for a fresh send).
        resumed_from: u64,
    },
    /// A request was refused with a `Nak`; the connection closed.
    BundleRejected {
        /// Tenant of the in-flight transfer, when one was established.
        tenant: Option<String>,
        /// The refusal code sent back.
        code: NakCode,
    },
    /// A `StateQuery` was answered.
    StateServed {
        /// Tenant queried.
        tenant: String,
        /// Whether the node had a baseline to report.
        hit: bool,
    },
}

/// Configuration for a [`FleetNode`].
#[derive(Debug, Clone)]
pub struct FleetNodeConfig {
    /// Address to listen on (use port 0 to let the OS pick).
    pub addr: SocketAddr,
    /// Spool directory bundles are published into — the same directory
    /// the node's `SpoolWatcher` polls.
    pub spool: PathBuf,
    /// Cap on a single frame's declared payload length.
    pub max_frame_len: usize,
    /// Cap on an offered bundle's total length.
    pub max_bundle_len: u64,
    /// A started frame must complete within this deadline.
    pub frame_timeout: Duration,
}

impl FleetNodeConfig {
    /// Configuration with default limits.
    pub fn new(addr: SocketAddr, spool: impl Into<PathBuf>) -> Self {
        FleetNodeConfig {
            addr,
            spool: spool.into(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            max_bundle_len: DEFAULT_MAX_BUNDLE_LEN,
            frame_timeout: DEFAULT_FRAME_TIMEOUT,
        }
    }

    /// Overrides the frame length cap.
    #[must_use]
    pub fn with_max_frame_len(mut self, cap: usize) -> Self {
        self.max_frame_len = cap;
        self
    }

    /// Overrides the bundle length cap.
    #[must_use]
    pub fn with_max_bundle_len(mut self, cap: u64) -> Self {
        self.max_bundle_len = cap;
        self
    }

    /// Overrides the frame completion deadline.
    #[must_use]
    pub fn with_frame_timeout(mut self, deadline: Duration) -> Self {
        self.frame_timeout = deadline;
        self
    }
}

/// Checks that a tenant name is safe to use as a spool file stem.
///
/// Accepted: 1–255 bytes of UTF-8 containing no `/`, `\`, or NUL, not
/// `.` or `..`, and not starting with `.` (hidden names are reserved
/// for staging files). This is deliberately stricter than the frame
/// codec, which only bounds length: the codec carries names, the node
/// turns them into paths.
///
/// # Errors
///
/// [`CommsError::Malformed`] naming the violated rule.
pub fn validate_tenant(tenant: &str) -> Result<(), CommsError> {
    if tenant.is_empty() {
        return Err(CommsError::Malformed("empty tenant name"));
    }
    if tenant.len() > crate::frame::MAX_TENANT_LEN {
        return Err(CommsError::Malformed("tenant name longer than 255 bytes"));
    }
    if tenant == "." || tenant == ".." {
        return Err(CommsError::Malformed("tenant name must not be . or .."));
    }
    if tenant.starts_with('.') {
        return Err(CommsError::Malformed("tenant name must not start with ."));
    }
    if tenant.contains(['/', '\\', '\0']) {
        return Err(CommsError::Malformed(
            "tenant name must not contain path separators or NUL",
        ));
    }
    Ok(())
}

/// Spool path a committed bundle is published to.
fn bundle_path(spool: &Path, tenant: &str) -> PathBuf {
    spool.join(format!("{tenant}.bundle"))
}

/// Hidden staging path for an in-flight transfer of one content address.
fn part_path(spool: &Path, tenant: &str, checksum: u64) -> PathBuf {
    spool.join(format!(".{tenant}.{checksum:016x}.part"))
}

/// One transfer in flight on a connection.
struct Transfer {
    tenant: String,
    total_len: u64,
    checksum: u64,
    have: u64,
    resumed_from: u64,
    part: PathBuf,
    /// Open append handle to the part file; `None` when the spool's
    /// visible bundle already matches the offer and no bytes need to
    /// be staged.
    file: Option<File>,
}

/// A running fleet endpoint: accepts GHSF connections and publishes
/// verified bundles into the spool. Stop it with
/// [`FleetNode::stop_and_join`] (also called on drop).
pub struct FleetNode {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FleetNode {
    /// Binds the listener and starts the accept loop.
    ///
    /// `state_fn` answers `StateQuery` frames; `event_fn` observes node
    /// events (pass a no-op closure if you don't care).
    ///
    /// # Errors
    ///
    /// [`CommsError::Io`] when the spool can't be created or the
    /// address can't be bound.
    pub fn start(
        config: FleetNodeConfig,
        state_fn: StateFn,
        event_fn: EventFn,
    ) -> Result<Self, CommsError> {
        fs::create_dir_all(&config.spool)?;
        let listener = TcpListener::bind(config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = thread::Builder::new()
            .name("ghsf-accept".to_string())
            .spawn(move || accept_loop(listener, config, state_fn, event_fn, accept_stop))
            .map_err(|e| CommsError::Io(e.to_string()))?;
        Ok(FleetNode {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the node is actually listening on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals every node thread to stop and joins them.
    pub fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FleetNode {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    config: FleetNodeConfig,
    state_fn: StateFn,
    event_fn: EventFn,
    stop: Arc<AtomicBool>,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let config = config.clone();
                let state_fn = Arc::clone(&state_fn);
                let event_fn = Arc::clone(&event_fn);
                let conn_stop = Arc::clone(&stop);
                let spawned =
                    thread::Builder::new()
                        .name("ghsf-conn".to_string())
                        .spawn(move || {
                            handle_connection(stream, &config, &state_fn, &event_fn, &conn_stop);
                        });
                if let Ok(handle) = spawned {
                    conns.push(handle);
                }
                conns.retain(|h| !h.is_finished());
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    for handle in conns {
        let _ = handle.join();
    }
}

/// Reads exactly `buf.len()` bytes, waking every [`TICK`] to honour the
/// stop flag and the frame deadline. `deadline` is `None` until the
/// first byte of a frame arrives — an idle connection may sit quietly
/// forever, a *started* frame must finish in time.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    deadline: &mut Option<Instant>,
    frame_timeout: Duration,
) -> Result<bool, CommsError> {
    let mut got = 0usize;
    while got < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Ok(false);
        }
        if let Some(d) = *deadline {
            if Instant::now() >= d {
                return Err(CommsError::TimedOut);
            }
        }
        let window = buf.get_mut(got..).unwrap_or(&mut []);
        match stream.read(window) {
            Ok(0) => {
                if got == 0 {
                    return Ok(false); // clean EOF between frames
                }
                return Err(CommsError::Disconnected);
            }
            Ok(n) => {
                if deadline.is_none() {
                    *deadline = Some(Instant::now() + frame_timeout);
                }
                got += n;
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(CommsError::Io(e.to_string())),
        }
    }
    Ok(true)
}

/// Maps a decode-side error onto the nak code the peer should see.
fn nak_code_for(err: &CommsError) -> NakCode {
    match err {
        CommsError::BadMagic
        | CommsError::UnsupportedVersion { .. }
        | CommsError::UnknownFrameType(_) => NakCode::Unsupported,
        CommsError::FrameTooLarge { .. } => NakCode::TooLarge,
        _ => NakCode::Malformed,
    }
}

fn send_response(stream: &mut TcpStream, response: &Response) -> Result<(), CommsError> {
    let frame = encode_response(response)?;
    stream.write_all(&frame)?;
    Ok(())
}

fn handle_connection(
    mut stream: TcpStream,
    config: &FleetNodeConfig,
    state_fn: &StateFn,
    event_fn: &EventFn,
    stop: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(TICK));
    let mut transfer: Option<Transfer> = None;
    loop {
        let mut deadline = None;
        let mut header = [0u8; HEADER_LEN];
        let alive = match read_full(
            &mut stream,
            &mut header,
            stop,
            &mut deadline,
            config.frame_timeout,
        ) {
            Ok(alive) => alive,
            Err(e) => {
                refuse(
                    &mut stream,
                    event_fn,
                    &transfer,
                    nak_code_for(&e),
                    &e.to_string(),
                );
                return;
            }
        };
        if !alive {
            return;
        }
        let parsed = FrameHeader::decode(&header, config.max_frame_len).and_then(|h| {
            let mut payload = vec![0u8; h.payload_len];
            match read_full(
                &mut stream,
                &mut payload,
                stop,
                &mut deadline,
                config.frame_timeout,
            ) {
                Ok(true) => decode_request(h.frame_type, &payload),
                Ok(false) => Err(CommsError::Disconnected),
                Err(e) => Err(e),
            }
        });
        let request = match parsed {
            Ok(request) => request,
            Err(e) => {
                refuse(
                    &mut stream,
                    event_fn,
                    &transfer,
                    nak_code_for(&e),
                    &e.to_string(),
                );
                return;
            }
        };
        match step(
            &mut stream,
            config,
            state_fn,
            event_fn,
            &mut transfer,
            request,
        ) {
            Ok(()) => {}
            Err(()) => return, // nak sent (or socket dead): connection is done
        }
    }
}

/// Sends a nak (best effort), emits the reject event, and lets the
/// caller close the connection. The staged part file survives for
/// resume unless the caller already removed it.
fn refuse(
    stream: &mut TcpStream,
    event_fn: &EventFn,
    transfer: &Option<Transfer>,
    code: NakCode,
    detail: &str,
) {
    let _ = send_response(
        stream,
        &Response::Nak {
            code,
            detail: detail.to_string(),
        },
    );
    event_fn(&NodeEvent::BundleRejected {
        tenant: transfer.as_ref().map(|t| t.tenant.clone()),
        code,
    });
}

/// Handles one decoded request. `Err(())` means the connection must
/// close (a nak was sent, or the socket failed).
fn step(
    stream: &mut TcpStream,
    config: &FleetNodeConfig,
    state_fn: &StateFn,
    event_fn: &EventFn,
    transfer: &mut Option<Transfer>,
    request: Request,
) -> Result<(), ()> {
    match request {
        Request::Ping => send_response(stream, &Response::Pong).map_err(|_| ()),
        Request::StateQuery { tenant } => {
            if let Err(e) = validate_tenant(&tenant) {
                refuse(
                    stream,
                    event_fn,
                    transfer,
                    NakCode::Malformed,
                    &e.to_string(),
                );
                return Err(());
            }
            let state = state_fn(&tenant);
            event_fn(&NodeEvent::StateServed {
                tenant,
                hit: state.is_some(),
            });
            send_response(stream, &Response::StateReply { state }).map_err(|_| ())
        }
        Request::Offer {
            tenant,
            total_len,
            checksum,
        } => {
            if transfer.is_some() {
                refuse(
                    stream,
                    event_fn,
                    transfer,
                    NakCode::Malformed,
                    "offer while a transfer is in flight",
                );
                return Err(());
            }
            if let Err(e) = validate_tenant(&tenant) {
                refuse(
                    stream,
                    event_fn,
                    transfer,
                    NakCode::Malformed,
                    &e.to_string(),
                );
                return Err(());
            }
            if total_len > config.max_bundle_len {
                refuse(
                    stream,
                    event_fn,
                    transfer,
                    NakCode::TooLarge,
                    &format!(
                        "offered {total_len} bytes, node accepts at most {} bytes",
                        config.max_bundle_len
                    ),
                );
                return Err(());
            }
            match open_transfer(config, &tenant, total_len, checksum) {
                Ok(t) => {
                    let have = t.have;
                    *transfer = Some(t);
                    send_response(stream, &Response::OfferAck { have }).map_err(|_| ())
                }
                Err(e) => {
                    refuse(
                        stream,
                        event_fn,
                        transfer,
                        NakCode::Internal,
                        &e.to_string(),
                    );
                    Err(())
                }
            }
        }
        Request::Chunk { offset, data } => {
            // Check invariants under a scoped borrow so a refusal can
            // still read the transfer for its tenant label.
            let outcome = match transfer.as_mut() {
                None => Err((
                    NakCode::Malformed,
                    "chunk without an accepted offer".to_string(),
                )),
                Some(t) => {
                    let end = t.have.saturating_add(data.len() as u64);
                    if offset != t.have {
                        Err((
                            NakCode::BadOffset,
                            format!("chunk at offset {offset}, node expected {}", t.have),
                        ))
                    } else if end > t.total_len {
                        Err((
                            NakCode::BadOffset,
                            format!(
                                "chunk runs to byte {end}, past the offered {} bytes",
                                t.total_len
                            ),
                        ))
                    } else {
                        match t.file.as_mut() {
                            None => Err((
                                NakCode::BadOffset,
                                "chunk for a bundle the node already has in full".to_string(),
                            )),
                            Some(file) => match file.write_all(&data) {
                                Ok(()) => {
                                    t.have = end;
                                    Ok(())
                                }
                                Err(e) => Err((NakCode::Internal, e.to_string())),
                            },
                        }
                    }
                }
            };
            match outcome {
                // Chunks are streamed: no ack until the commit.
                Ok(()) => Ok(()),
                Err((code, detail)) => {
                    refuse(stream, event_fn, transfer, code, &detail);
                    Err(())
                }
            }
        }
        Request::Commit { checksum } => {
            let Some(t) = transfer.take() else {
                refuse(
                    stream,
                    event_fn,
                    transfer,
                    NakCode::Malformed,
                    "commit without an accepted offer",
                );
                return Err(());
            };
            if checksum != t.checksum {
                refuse(
                    stream,
                    event_fn,
                    &Some(t),
                    NakCode::Malformed,
                    "commit checksum disagrees with the offer",
                );
                return Err(());
            }
            if t.have != t.total_len {
                let detail = format!("commit after {} of {} offered bytes", t.have, t.total_len);
                refuse(stream, event_fn, &Some(t), NakCode::BadOffset, &detail);
                return Err(());
            }
            match seal_transfer(config, &t) {
                Ok(()) => {
                    if t.file.is_some() {
                        event_fn(&NodeEvent::BundleStored {
                            tenant: t.tenant.clone(),
                            bytes: t.total_len,
                            resumed_from: t.resumed_from,
                        });
                    }
                    send_response(stream, &Response::BundleAck { checksum }).map_err(|_| ())
                }
                Err((code, detail)) => {
                    refuse(stream, event_fn, &Some(t), code, &detail);
                    Err(())
                }
            }
        }
    }
}

/// Opens (or resumes) the staging file for an offer and reports how
/// many bytes are already present. Also retires stale parts for the
/// same tenant under a different content address.
fn open_transfer(
    config: &FleetNodeConfig,
    tenant: &str,
    total_len: u64,
    checksum: u64,
) -> Result<Transfer, CommsError> {
    let part = part_path(&config.spool, tenant, checksum);
    retire_stale_parts(&config.spool, tenant, &part);

    // Already-current check: if the visible bundle is byte-identical to
    // the offer, no bytes need to flow — ack with have == total_len and
    // let the commit answer trivially.
    let visible = bundle_path(&config.spool, tenant);
    if let Ok(bytes) = fs::read(&visible) {
        if bytes.len() as u64 == total_len && fnv1a64(&bytes) == checksum {
            return Ok(Transfer {
                tenant: tenant.to_string(),
                total_len,
                checksum,
                have: total_len,
                resumed_from: total_len,
                part,
                file: None,
            });
        }
    }

    let staged = fs::metadata(&part).map(|m| m.len()).unwrap_or(0);
    let have = if staged > total_len {
        // A part longer than the offer can't belong to this content
        // address; start over.
        let _ = fs::remove_file(&part);
        0
    } else {
        staged
    };
    let file = OpenOptions::new().create(true).append(true).open(&part)?;
    Ok(Transfer {
        tenant: tenant.to_string(),
        total_len,
        checksum,
        have,
        resumed_from: have,
        part,
        file: Some(file),
    })
}

/// Removes staging files for `tenant` other than the one in use: they
/// belong to content addresses the publisher has moved past.
fn retire_stale_parts(spool: &Path, tenant: &str, keep: &Path) {
    let prefix = format!(".{tenant}.");
    let Ok(entries) = fs::read_dir(spool) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path == keep {
            continue;
        }
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(&prefix) && name.ends_with(".part") {
            let _ = fs::remove_file(&path);
        }
    }
}

/// Verifies the staged bytes against the offered checksum and renames
/// the part onto the visible bundle path. A mismatch deletes the part —
/// it is provably corrupt and must not seed a resume.
fn seal_transfer(config: &FleetNodeConfig, t: &Transfer) -> Result<(), (NakCode, String)> {
    if t.file.is_none() {
        // Visible bundle already matched the offer; nothing to publish.
        return Ok(());
    }
    let staged = fs::read(&t.part)
        .map_err(|e| (NakCode::Internal, format!("reading staged bundle: {e}")))?;
    if staged.len() as u64 != t.total_len {
        let _ = fs::remove_file(&t.part);
        return Err((
            NakCode::Internal,
            format!(
                "staged file is {} bytes, offer said {}",
                staged.len(),
                t.total_len
            ),
        ));
    }
    let actual = fnv1a64(&staged);
    if actual != t.checksum {
        let _ = fs::remove_file(&t.part);
        return Err((
            NakCode::ChecksumMismatch,
            format!(
                "staged bundle hashes to {actual:#018x}, offer said {:#018x}",
                t.checksum
            ),
        ));
    }
    fs::rename(&t.part, bundle_path(&config.spool, &t.tenant))
        .map_err(|e| (NakCode::Internal, format!("publishing bundle: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_request, CHUNK_LEN};
    use std::sync::Mutex;

    fn temp_spool(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ghsf-node-{tag}-{}-{:?}",
            std::process::id(),
            thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn start_node(spool: &Path) -> (FleetNode, Arc<Mutex<Vec<NodeEvent>>>) {
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let node = FleetNode::start(
            FleetNodeConfig::new("127.0.0.1:0".parse().unwrap(), spool),
            Arc::new(|tenant: &str| (tenant == "known").then(|| vec![0xAB; 40])),
            Arc::new(move |e: &NodeEvent| sink.lock().unwrap().push(e.clone())),
        )
        .unwrap();
        (node, events)
    }

    fn send(stream: &mut TcpStream, request: &Request) {
        stream.write_all(&encode_request(request).unwrap()).unwrap();
    }

    fn recv(stream: &mut TcpStream) -> Response {
        let mut header = [0u8; HEADER_LEN];
        stream.read_exact(&mut header).unwrap();
        let header = FrameHeader::decode(&header, DEFAULT_MAX_FRAME_LEN).unwrap();
        let mut payload = vec![0u8; header.payload_len];
        stream.read_exact(&mut payload).unwrap();
        crate::frame::decode_response(header.frame_type, &payload).unwrap()
    }

    fn replicate_raw(addr: SocketAddr, tenant: &str, bytes: &[u8]) -> Response {
        let checksum = fnv1a64(bytes);
        let mut stream = TcpStream::connect(addr).unwrap();
        send(
            &mut stream,
            &Request::Offer {
                tenant: tenant.to_string(),
                total_len: bytes.len() as u64,
                checksum,
            },
        );
        let ack = recv(&mut stream);
        let have = match ack {
            Response::OfferAck { have } => have,
            other => panic!("expected offer ack, got {other:?}"),
        };
        let mut offset = have as usize;
        while offset < bytes.len() {
            let end = (offset + CHUNK_LEN).min(bytes.len());
            send(
                &mut stream,
                &Request::Chunk {
                    offset: offset as u64,
                    data: bytes[offset..end].to_vec(),
                },
            );
            offset = end;
        }
        send(&mut stream, &Request::Commit { checksum });
        recv(&mut stream)
    }

    #[test]
    fn ping_pong_and_state_query() {
        let spool = temp_spool("ping");
        let (node, events) = start_node(&spool);
        let mut stream = TcpStream::connect(node.local_addr()).unwrap();
        send(&mut stream, &Request::Ping);
        assert_eq!(recv(&mut stream), Response::Pong);
        send(
            &mut stream,
            &Request::StateQuery {
                tenant: "known".to_string(),
            },
        );
        assert_eq!(
            recv(&mut stream),
            Response::StateReply {
                state: Some(vec![0xAB; 40])
            }
        );
        send(
            &mut stream,
            &Request::StateQuery {
                tenant: "absent".to_string(),
            },
        );
        assert_eq!(recv(&mut stream), Response::StateReply { state: None });
        drop(stream);
        drop(node);
        let events = events.lock().unwrap();
        assert!(events.contains(&NodeEvent::StateServed {
            tenant: "known".to_string(),
            hit: true
        }));
    }

    #[test]
    fn replicates_verifies_and_publishes() {
        let spool = temp_spool("publish");
        let (node, events) = start_node(&spool);
        let bytes: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
        let reply = replicate_raw(node.local_addr(), "edge", &bytes);
        assert_eq!(
            reply,
            Response::BundleAck {
                checksum: fnv1a64(&bytes)
            }
        );
        assert_eq!(fs::read(spool.join("edge.bundle")).unwrap(), bytes);
        // No stray staging files remain.
        let leftovers: Vec<_> = fs::read_dir(&spool)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".part"))
            .collect();
        assert!(leftovers.is_empty());
        drop(node);
        assert!(events.lock().unwrap().iter().any(|e| matches!(
            e,
            NodeEvent::BundleStored { tenant, bytes: 300_000, resumed_from: 0 } if tenant == "edge"
        )));
    }

    #[test]
    fn resumes_after_disconnect_mid_stream() {
        let spool = temp_spool("resume");
        let (node, events) = start_node(&spool);
        let bytes: Vec<u8> = (0..100_000u32).map(|i| (i % 13) as u8).collect();
        let checksum = fnv1a64(&bytes);

        // First attempt: offer, send 40_000 bytes, drop the connection.
        {
            let mut stream = TcpStream::connect(node.local_addr()).unwrap();
            send(
                &mut stream,
                &Request::Offer {
                    tenant: "edge".to_string(),
                    total_len: bytes.len() as u64,
                    checksum,
                },
            );
            assert_eq!(recv(&mut stream), Response::OfferAck { have: 0 });
            send(
                &mut stream,
                &Request::Chunk {
                    offset: 0,
                    data: bytes[..40_000].to_vec(),
                },
            );
            // Half-close and wait for the node to notice so the staged
            // prefix is fully written.
            drop(stream);
        }
        // The write is synchronous in the connection thread; poll until
        // the part file holds the prefix.
        let part = part_path(&spool, "edge", checksum);
        let deadline = Instant::now() + Duration::from_secs(5);
        while fs::metadata(&part).map(|m| m.len()).unwrap_or(0) < 40_000 {
            assert!(Instant::now() < deadline, "staged prefix never appeared");
            thread::sleep(Duration::from_millis(10));
        }

        // Second attempt resumes from the staged prefix.
        let reply = replicate_raw(node.local_addr(), "edge", &bytes);
        assert_eq!(reply, Response::BundleAck { checksum });
        assert_eq!(fs::read(spool.join("edge.bundle")).unwrap(), bytes);
        drop(node);
        assert!(events.lock().unwrap().iter().any(|e| matches!(
            e,
            NodeEvent::BundleStored {
                resumed_from: 40_000,
                ..
            }
        )));
    }

    #[test]
    fn already_current_bundle_sends_no_bytes() {
        let spool = temp_spool("current");
        let (node, events) = start_node(&spool);
        let bytes = vec![7u8; 5_000];
        assert!(matches!(
            replicate_raw(node.local_addr(), "edge", &bytes),
            Response::BundleAck { .. }
        ));
        // Second replication of identical content: offer ack says
        // have == total, commit acks without a store event.
        let checksum = fnv1a64(&bytes);
        let mut stream = TcpStream::connect(node.local_addr()).unwrap();
        send(
            &mut stream,
            &Request::Offer {
                tenant: "edge".to_string(),
                total_len: bytes.len() as u64,
                checksum,
            },
        );
        assert_eq!(
            recv(&mut stream),
            Response::OfferAck {
                have: bytes.len() as u64
            }
        );
        send(&mut stream, &Request::Commit { checksum });
        assert_eq!(recv(&mut stream), Response::BundleAck { checksum });
        drop(node);
        let stores = events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| matches!(e, NodeEvent::BundleStored { .. }))
            .count();
        assert_eq!(stores, 1);
    }

    #[test]
    fn checksum_mismatch_naks_and_discards_the_part() {
        let spool = temp_spool("mismatch");
        let (node, events) = start_node(&spool);
        let bytes = vec![1u8; 10_000];
        let lied = fnv1a64(&bytes) ^ 0xFFFF;
        let mut stream = TcpStream::connect(node.local_addr()).unwrap();
        send(
            &mut stream,
            &Request::Offer {
                tenant: "edge".to_string(),
                total_len: bytes.len() as u64,
                checksum: lied,
            },
        );
        assert_eq!(recv(&mut stream), Response::OfferAck { have: 0 });
        send(
            &mut stream,
            &Request::Chunk {
                offset: 0,
                data: bytes.clone(),
            },
        );
        send(&mut stream, &Request::Commit { checksum: lied });
        match recv(&mut stream) {
            Response::Nak { code, .. } => assert_eq!(code, NakCode::ChecksumMismatch),
            other => panic!("expected nak, got {other:?}"),
        }
        drop(stream);
        drop(node);
        assert!(!spool.join("edge.bundle").exists());
        assert!(!part_path(&spool, "edge", lied).exists());
        assert!(events.lock().unwrap().iter().any(|e| matches!(
            e,
            NodeEvent::BundleRejected {
                code: NakCode::ChecksumMismatch,
                ..
            }
        )));
    }

    #[test]
    fn bad_offsets_and_protocol_violations_are_naked() {
        let spool = temp_spool("violations");
        let (node, _events) = start_node(&spool);

        // Chunk without an offer.
        let mut stream = TcpStream::connect(node.local_addr()).unwrap();
        send(
            &mut stream,
            &Request::Chunk {
                offset: 0,
                data: vec![1],
            },
        );
        assert!(matches!(
            recv(&mut stream),
            Response::Nak {
                code: NakCode::Malformed,
                ..
            }
        ));

        // Non-sequential chunk offset.
        let mut stream = TcpStream::connect(node.local_addr()).unwrap();
        send(
            &mut stream,
            &Request::Offer {
                tenant: "edge".to_string(),
                total_len: 100,
                checksum: 1,
            },
        );
        assert_eq!(recv(&mut stream), Response::OfferAck { have: 0 });
        send(
            &mut stream,
            &Request::Chunk {
                offset: 50,
                data: vec![1],
            },
        );
        assert!(matches!(
            recv(&mut stream),
            Response::Nak {
                code: NakCode::BadOffset,
                ..
            }
        ));

        // Early commit.
        let mut stream = TcpStream::connect(node.local_addr()).unwrap();
        send(
            &mut stream,
            &Request::Offer {
                tenant: "edge2".to_string(),
                total_len: 100,
                checksum: 1,
            },
        );
        assert_eq!(recv(&mut stream), Response::OfferAck { have: 0 });
        send(&mut stream, &Request::Commit { checksum: 1 });
        assert!(matches!(
            recv(&mut stream),
            Response::Nak {
                code: NakCode::BadOffset,
                ..
            }
        ));

        // Hostile tenant names.
        for tenant in ["../escape", ".hidden", "a/b", "..", "nul\0"] {
            let mut stream = TcpStream::connect(node.local_addr()).unwrap();
            send(
                &mut stream,
                &Request::Offer {
                    tenant: tenant.to_string(),
                    total_len: 1,
                    checksum: 0,
                },
            );
            assert!(
                matches!(recv(&mut stream), Response::Nak { .. }),
                "tenant {tenant:?} was accepted"
            );
        }

        // Oversized offer.
        let spool2 = temp_spool("toolarge");
        let small = FleetNode::start(
            FleetNodeConfig::new("127.0.0.1:0".parse().unwrap(), &spool2).with_max_bundle_len(64),
            Arc::new(|_: &str| None),
            Arc::new(|_: &NodeEvent| {}),
        )
        .unwrap();
        let mut stream = TcpStream::connect(small.local_addr()).unwrap();
        send(
            &mut stream,
            &Request::Offer {
                tenant: "edge".to_string(),
                total_len: 65,
                checksum: 0,
            },
        );
        assert!(matches!(
            recv(&mut stream),
            Response::Nak {
                code: NakCode::TooLarge,
                ..
            }
        ));
    }

    #[test]
    fn hostile_magic_costs_the_connection_not_the_node() {
        let spool = temp_spool("hostile");
        let (node, _events) = start_node(&spool);
        let mut stream = TcpStream::connect(node.local_addr()).unwrap();
        stream.write_all(b"HTTP/1.1 GET /\r\n").unwrap();
        // The node naks (unsupported) and closes; the nak may or may
        // not arrive before the reset depending on timing — what
        // matters is the connection dies and the node survives.
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
        drop(stream);
        // Node still serves fresh connections.
        let mut stream = TcpStream::connect(node.local_addr()).unwrap();
        send(&mut stream, &Request::Ping);
        assert_eq!(recv(&mut stream), Response::Pong);
    }

    #[test]
    fn validate_tenant_rules() {
        assert!(validate_tenant("edge-7").is_ok());
        assert!(validate_tenant("αβγ").is_ok());
        for bad in ["", ".", "..", ".hidden", "a/b", "a\\b", "a\0b"] {
            assert!(validate_tenant(bad).is_err(), "{bad:?} accepted");
        }
        assert!(validate_tenant(&"x".repeat(256)).is_err());
    }
}
