//! Fleet control plane for the GHSOM serving stack: a std-only,
//! length-prefixed frame protocol (**GHSF**) over `std::net::TcpStream`
//! that replicates content-addressed engine bundles into scoring
//! nodes' spool directories and queries their streaming baselines.
//!
//! The record plane (scoring traffic) stays on the GHSD protocol
//! served by `ghsom-daemon`; this crate carries the *control* plane:
//!
//! - [`FleetNode`] — the receiving endpoint a scoring node runs next
//!   to its spool. Offered bundles are staged in hidden `.part` files,
//!   verified against their FNV-1a 64 content address, and published
//!   with an atomic rename, so the node's `SpoolWatcher` only ever
//!   sees complete, verified bundles.
//! - [`Replicator`] — the client that pushes one bundle to one node,
//!   resuming interrupted transfers from the bytes the node staged.
//! - [`SpoolPublisher`] — the fleet loop: watch a source spool
//!   directory, fan every new bundle out to N nodes, report per-node
//!   sync/failure, converge nodes that were down when they return.
//!
//! The wire protocol is specified normatively in `docs/FLEET.md`; the
//! operator's view (deploy, rollback, fleet walkthrough) lives in
//! `docs/OPERATIONS.md`.
//!
//! # Example: replicate a bundle to a node
//!
//! ```
//! use std::sync::Arc;
//! use ghsom_comms::{FleetNode, FleetNodeConfig, NodeEvent, Replicator};
//!
//! // A node serving a spool directory (port 0: OS-assigned).
//! let spool = std::env::temp_dir().join(format!("ghsf-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&spool)?;
//! let node = FleetNode::start(
//!     FleetNodeConfig::new("127.0.0.1:0".parse()?, &spool),
//!     Arc::new(|_tenant: &str| None),     // no baselines to report
//!     Arc::new(|_event: &NodeEvent| {}),  // ignore node events
//! )?;
//!
//! // Push a bundle; the node verifies it and makes it visible.
//! let mut rep = Replicator::connect(node.local_addr())?;
//! let report = rep.replicate("edge", b"engine bundle bytes")?;
//! assert!(!report.already_current);
//! assert!(spool.join("edge.bundle").exists());
//!
//! // Pushing identical bytes again moves nothing over the wire.
//! let again = rep.replicate("edge", b"engine bundle bytes")?;
//! assert!(again.already_current);
//! # std::fs::remove_dir_all(&spool)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Example: keep a fleet in sync with a source spool
//!
//! ```no_run
//! use ghsom_comms::SpoolPublisher;
//!
//! let nodes = vec!["10.0.0.1:7071".parse()?, "10.0.0.2:7071".parse()?];
//! let mut publisher = SpoolPublisher::new("/var/ghsom/source-spool", nodes);
//! for event in publisher.poll_once() {
//!     println!("{event:?}");
//! }
//! # Ok::<(), std::net::AddrParseError>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod frame;
pub mod node;
pub mod publish;

pub use error::{CommsError, NakCode};
pub use frame::{
    FrameHeader, FrameType, Request, Response, CHUNK_LEN, DEFAULT_MAX_FRAME_LEN, HEADER_LEN, MAGIC,
    MAX_TENANT_LEN, VERSION,
};
pub use node::{
    validate_tenant, EventFn, FleetNode, FleetNodeConfig, NodeEvent, StateFn,
    DEFAULT_FRAME_TIMEOUT, DEFAULT_MAX_BUNDLE_LEN,
};
pub use publish::{PublishEvent, ReplicateReport, Replicator, SpoolPublisher, DEFAULT_IO_TIMEOUT};
