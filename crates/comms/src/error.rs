//! Error type of the fleet control plane: GHSF frame codec, replication
//! and state-query failures.

use std::fmt;

/// Typed refusal codes a fleet node sends in a `Nak` frame.
///
/// Codes are part of the wire protocol (normative table in
/// `docs/FLEET.md`): publishers dispatch on the code, the detail string
/// is for operators. The numeric values are frozen — new codes append.
/// Every `Nak` closes the connection: the replication stream has lost
/// its state machine, so the transfer must restart (and **resumes** from
/// the bytes already durably staged — see [`crate::node::FleetNode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NakCode {
    /// The frame parsed but violated the replication state machine or a
    /// structural invariant (chunk without an offer, bad tenant name,
    /// commit checksum disagreeing with the offer, …).
    Malformed,
    /// The offered bundle (or one chunk) exceeds what the node accepts.
    TooLarge,
    /// A chunk's declared offset does not continue the staged prefix, or
    /// a commit arrived before every offered byte did.
    BadOffset,
    /// The committed bytes hash to something other than the offered
    /// checksum. The staged partial is discarded — it is provably
    /// corrupt — and the bundle never becomes visible to the watcher.
    ChecksumMismatch,
    /// The frame carried an unknown protocol version or frame type.
    Unsupported,
    /// The node failed server-side after accepting the frame (I/O on the
    /// staging file, rename into the spool, …).
    Internal,
}

impl NakCode {
    /// The frozen wire byte of this code.
    pub fn to_wire(self) -> u8 {
        match self {
            NakCode::Malformed => 1,
            NakCode::TooLarge => 2,
            NakCode::BadOffset => 3,
            NakCode::ChecksumMismatch => 4,
            NakCode::Unsupported => 5,
            NakCode::Internal => 6,
        }
    }

    /// Decodes a wire byte.
    ///
    /// # Errors
    ///
    /// [`CommsError::Malformed`] for unknown code bytes.
    pub fn from_wire(byte: u8) -> Result<Self, CommsError> {
        match byte {
            1 => Ok(NakCode::Malformed),
            2 => Ok(NakCode::TooLarge),
            3 => Ok(NakCode::BadOffset),
            4 => Ok(NakCode::ChecksumMismatch),
            5 => Ok(NakCode::Unsupported),
            6 => Ok(NakCode::Internal),
            _ => Err(CommsError::Malformed("unknown nak code byte")),
        }
    }

    /// Stable snake_case name, used as the metrics/log label.
    pub fn name(self) -> &'static str {
        match self {
            NakCode::Malformed => "malformed",
            NakCode::TooLarge => "too_large",
            NakCode::BadOffset => "bad_offset",
            NakCode::ChecksumMismatch => "checksum_mismatch",
            NakCode::Unsupported => "unsupported",
            NakCode::Internal => "internal",
        }
    }
}

impl fmt::Display for NakCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors produced by the GHSF frame codec, the fleet node and the
/// replicator client.
///
/// Hostile bytes never panic: every malformed input maps to one of the
/// typed variants below, and on the node side a protocol error costs
/// exactly the offending connection — never the process, never a staged
/// transfer belonging to another connection. The enum is
/// `#[non_exhaustive]`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CommsError {
    /// Socket or filesystem I/O failed.
    Io(String),
    /// The frame does not start with the `GHSF` magic.
    BadMagic,
    /// The frame was written by an unknown protocol version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u8,
        /// Newest version this build speaks.
        supported: u8,
    },
    /// The header names a frame type this build does not know.
    UnknownFrameType(u8),
    /// The header's reserved bytes were not zero.
    ReservedNonZero,
    /// The frame declares a payload longer than the configured cap —
    /// rejected before any payload byte is read, so a hostile declared
    /// length can never force an allocation.
    FrameTooLarge {
        /// Declared payload length.
        declared: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The payload ended before a declared structure was complete.
    Truncated {
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The peer disconnected mid-frame (clean EOF *between* frames is
    /// not an error).
    Disconnected,
    /// The peer started a frame but did not finish it within the frame
    /// deadline — the slow-loris defence. The connection is closed.
    TimedOut,
    /// The payload parses but violates a structural invariant.
    Malformed(&'static str),
    /// Publisher side: the node answered with a `Nak` frame.
    Nak {
        /// Typed refusal code.
        code: NakCode,
        /// Operator-facing detail string.
        detail: String,
    },
    /// The peer sent a frame type that does not answer the outstanding
    /// request.
    UnexpectedFrame {
        /// What the protocol state machine expected.
        expected: &'static str,
        /// Frame type byte actually received.
        found: u8,
    },
}

impl fmt::Display for CommsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommsError::Io(msg) => write!(f, "fleet I/O error: {msg}"),
            CommsError::BadMagic => write!(f, "not a GHSF frame (bad magic)"),
            CommsError::UnsupportedVersion { found, supported } => write!(
                f,
                "GHSF version {found} is not supported (this build speaks <= {supported})"
            ),
            CommsError::UnknownFrameType(t) => write!(f, "unknown GHSF frame type {t:#04x}"),
            CommsError::ReservedNonZero => {
                write!(f, "reserved header bytes must be zero")
            }
            CommsError::FrameTooLarge { declared, max } => write!(
                f,
                "frame declares a {declared}-byte payload, above the {max}-byte cap"
            ),
            CommsError::Truncated { needed, got } => {
                write!(f, "frame payload truncated: need {needed} bytes, got {got}")
            }
            CommsError::Disconnected => write!(f, "peer disconnected mid-frame"),
            CommsError::TimedOut => {
                write!(f, "frame not completed within the frame deadline")
            }
            CommsError::Malformed(reason) => write!(f, "malformed frame: {reason}"),
            CommsError::Nak { code, detail } => {
                write!(f, "node refused the request ({code}): {detail}")
            }
            CommsError::UnexpectedFrame { expected, found } => {
                write!(f, "expected {expected}, got frame type {found:#04x}")
            }
        }
    }
}

impl std::error::Error for CommsError {}

impl From<std::io::Error> for CommsError {
    fn from(e: std::io::Error) -> Self {
        CommsError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<CommsError>();
    }

    #[test]
    fn nak_codes_roundtrip() {
        for code in [
            NakCode::Malformed,
            NakCode::TooLarge,
            NakCode::BadOffset,
            NakCode::ChecksumMismatch,
            NakCode::Unsupported,
            NakCode::Internal,
        ] {
            assert_eq!(NakCode::from_wire(code.to_wire()).unwrap(), code);
        }
        assert!(NakCode::from_wire(0).is_err());
        assert!(NakCode::from_wire(77).is_err());
    }

    #[test]
    fn display_messages_are_actionable() {
        assert!(CommsError::BadMagic.to_string().contains("magic"));
        assert!(CommsError::FrameTooLarge {
            declared: 42,
            max: 7
        }
        .to_string()
        .contains("42"));
        assert!(CommsError::Nak {
            code: NakCode::ChecksumMismatch,
            detail: "fnv disagrees".into()
        }
        .to_string()
        .contains("checksum_mismatch"));
    }
}
