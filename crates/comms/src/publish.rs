//! The sending end of the fleet plane: a [`Replicator`] client that
//! pushes one bundle to one node, and a [`SpoolPublisher`] that watches
//! a source spool directory and keeps a whole fleet of nodes in sync
//! with it.
//!
//! The publisher is the fleet-wide generalisation of dropping a bundle
//! file into a local spool: `fleet-ctl` (the binary wrapper around
//! [`SpoolPublisher`]) watches the source directory by `(mtime, len)`
//! fingerprint, and whenever a bundle appears or changes it replicates
//! the bytes to every node that has not yet acknowledged that exact
//! content address. A node that is down simply stays one version
//! behind and is retried on every poll — convergence, not choreography.

use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, SystemTime};

use mathkit::bytes::fnv1a64;

use crate::error::CommsError;
use crate::frame::{
    decode_response, encode_request, FrameHeader, Request, Response, CHUNK_LEN,
    DEFAULT_MAX_FRAME_LEN, HEADER_LEN,
};

/// Default socket I/O timeout for publisher-side reads and writes.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// What one [`Replicator::replicate`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicateReport {
    /// FNV-1a 64 content address of the bundle.
    pub checksum: u64,
    /// Total bundle length in bytes.
    pub total_len: u64,
    /// Offset the node asked us to resume from (0 for a fresh send).
    pub resumed_from: u64,
    /// Bytes actually sent over the wire this call.
    pub bytes_sent: u64,
    /// `true` when the node already held this exact bundle and no
    /// payload bytes flowed.
    pub already_current: bool,
}

/// A GHSF client connection to one fleet node.
///
/// Lock-step except for chunk streaming: `replicate` sends
/// `Offer`, waits for the `OfferAck`, streams `Chunk` frames
/// unacknowledged, then sends `Commit` and waits for the single
/// `BundleAck`/`Nak` that answers for the whole transfer.
pub struct Replicator {
    stream: TcpStream,
    max_frame_len: usize,
}

impl Replicator {
    /// Connects to a node with the default I/O timeout.
    ///
    /// # Errors
    ///
    /// [`CommsError::Io`] when the connection fails.
    pub fn connect(addr: SocketAddr) -> Result<Self, CommsError> {
        Self::connect_with_timeout(addr, DEFAULT_IO_TIMEOUT)
    }

    /// Connects with an explicit I/O timeout (applied to connect, reads
    /// and writes).
    ///
    /// # Errors
    ///
    /// [`CommsError::Io`] when the connection fails.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> Result<Self, CommsError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Replicator {
            stream,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        })
    }

    fn send(&mut self, request: &Request) -> Result<(), CommsError> {
        let frame = encode_request(request)?;
        self.stream.write_all(&frame).map_err(map_io)
    }

    fn recv(&mut self) -> Result<Response, CommsError> {
        let mut header = [0u8; HEADER_LEN];
        read_exact(&mut self.stream, &mut header)?;
        let header = FrameHeader::decode(&header, self.max_frame_len)?;
        let mut payload = vec![0u8; header.payload_len];
        read_exact(&mut self.stream, &mut payload)?;
        match decode_response(header.frame_type, &payload)? {
            Response::Nak { code, detail } => Err(CommsError::Nak { code, detail }),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Any [`CommsError`] from the socket or a non-pong reply.
    pub fn ping(&mut self) -> Result<(), CommsError> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Replicates one bundle to the node: offer, resume-aware chunk
    /// stream, commit, verify. On success the bundle is visible in the
    /// node's spool (the node's watcher deploys it on its next poll).
    ///
    /// # Errors
    ///
    /// [`CommsError::Nak`] carrying the node's typed refusal, or any
    /// socket-level [`CommsError`]. After an error the connection must
    /// be discarded; a reconnect resumes from the bytes the node staged.
    pub fn replicate(&mut self, tenant: &str, bytes: &[u8]) -> Result<ReplicateReport, CommsError> {
        let checksum = fnv1a64(bytes);
        let total_len = bytes.len() as u64;
        self.send(&Request::Offer {
            tenant: tenant.to_string(),
            total_len,
            checksum,
        })?;
        let have = match self.recv()? {
            Response::OfferAck { have } => have,
            other => return Err(unexpected("offer ack", &other)),
        };
        if have > total_len {
            return Err(CommsError::Malformed("node claims more bytes than offered"));
        }
        let mut offset = have as usize;
        while offset < bytes.len() {
            let end = offset.saturating_add(CHUNK_LEN).min(bytes.len());
            let data = bytes.get(offset..end).unwrap_or_default().to_vec();
            self.send(&Request::Chunk {
                offset: offset as u64,
                data,
            })?;
            offset = end;
        }
        self.send(&Request::Commit { checksum })?;
        match self.recv()? {
            Response::BundleAck { checksum: echoed } if echoed == checksum => Ok(ReplicateReport {
                checksum,
                total_len,
                resumed_from: have,
                bytes_sent: total_len - have,
                already_current: have == total_len,
            }),
            Response::BundleAck { .. } => Err(CommsError::Malformed(
                "bundle ack echoed a foreign checksum",
            )),
            other => Err(unexpected("bundle ack", &other)),
        }
    }

    /// Asks the node for a tenant's exported streaming baseline.
    ///
    /// # Errors
    ///
    /// Any [`CommsError`] from the socket or a non-state reply.
    pub fn query_state(&mut self, tenant: &str) -> Result<Option<Vec<u8>>, CommsError> {
        self.send(&Request::StateQuery {
            tenant: tenant.to_string(),
        })?;
        match self.recv()? {
            Response::StateReply { state } => Ok(state),
            other => Err(unexpected("state reply", &other)),
        }
    }
}

fn unexpected(expected: &'static str, got: &Response) -> CommsError {
    let found = match got {
        Response::OfferAck { .. } => 0x81,
        Response::BundleAck { .. } => 0x82,
        Response::StateReply { .. } => 0x83,
        Response::Nak { .. } => 0x84,
        Response::Pong => 0x85,
    };
    CommsError::UnexpectedFrame { expected, found }
}

fn map_io(e: std::io::Error) -> CommsError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => CommsError::TimedOut,
        std::io::ErrorKind::UnexpectedEof => CommsError::Disconnected,
        _ => CommsError::Io(e.to_string()),
    }
}

fn read_exact(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), CommsError> {
    stream.read_exact(buf).map_err(map_io)
}

/// One observable outcome of a publisher poll.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum PublishEvent {
    /// A node acknowledged a bundle (it is now visible in that node's
    /// spool).
    NodeSynced {
        /// The node that acknowledged.
        node: SocketAddr,
        /// Tenant the bundle deploys.
        tenant: String,
        /// What the transfer did (resume offset, bytes sent, …).
        report: ReplicateReport,
    },
    /// A node could not be brought in sync this poll; it stays behind
    /// and is retried on the next poll.
    NodeFailed {
        /// The node that failed.
        node: SocketAddr,
        /// Tenant being replicated when the failure happened.
        tenant: String,
        /// Why.
        error: CommsError,
    },
}

/// Per-tenant cache entry: source fingerprint plus the bundle bytes and
/// their content address.
struct SourceBundle {
    fingerprint: (SystemTime, u64),
    checksum: u64,
    bytes: Vec<u8>,
}

/// Watches a source spool directory and keeps N fleet nodes' spools in
/// sync with it.
///
/// Deletions are deliberately **not** replicated: removing a bundle
/// from the source stops future syncs but never retires a deployed
/// engine on the nodes. Rollback is achieved by publishing the previous
/// bundle version into the source spool — it fingerprints as a change
/// and rolls the fleet back through the same verified path.
pub struct SpoolPublisher {
    source: PathBuf,
    nodes: Vec<SocketAddr>,
    io_timeout: Duration,
    cache: HashMap<String, SourceBundle>,
    /// checksum each node has acknowledged, per tenant.
    acked: HashMap<(SocketAddr, String), u64>,
}

impl SpoolPublisher {
    /// A publisher for `source` fanning out to `nodes`.
    pub fn new(source: impl Into<PathBuf>, nodes: Vec<SocketAddr>) -> Self {
        SpoolPublisher {
            source: source.into(),
            nodes,
            io_timeout: DEFAULT_IO_TIMEOUT,
            cache: HashMap::new(),
            acked: HashMap::new(),
        }
    }

    /// Overrides the per-node socket I/O timeout.
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// The fleet this publisher fans out to.
    pub fn nodes(&self) -> &[SocketAddr] {
        &self.nodes
    }

    /// Scans the source spool once and replicates every bundle each
    /// node has not yet acknowledged. Returns what happened, in
    /// deterministic (tenant, node) order.
    pub fn poll_once(&mut self) -> Vec<PublishEvent> {
        let mut events = Vec::new();
        self.refresh_cache();

        let mut tenants: Vec<String> = self.cache.keys().cloned().collect();
        tenants.sort();

        for node in self.nodes.clone() {
            // One connection per node per poll, reused across tenants;
            // a connect failure reports once per pending tenant so the
            // operator sees exactly what is out of sync.
            let mut conn: Option<Replicator> = None;
            for tenant in &tenants {
                let Some(bundle) = self.cache.get(tenant) else {
                    continue;
                };
                let key = (node, tenant.clone());
                if self.acked.get(&key) == Some(&bundle.checksum) {
                    continue;
                }
                if conn.is_none() {
                    match Replicator::connect_with_timeout(node, self.io_timeout) {
                        Ok(c) => conn = Some(c),
                        Err(error) => {
                            events.push(PublishEvent::NodeFailed {
                                node,
                                tenant: tenant.clone(),
                                error,
                            });
                            continue;
                        }
                    }
                }
                let Some(c) = conn.as_mut() else { continue };
                match c.replicate(tenant, &bundle.bytes) {
                    Ok(report) => {
                        self.acked.insert(key, bundle.checksum);
                        events.push(PublishEvent::NodeSynced {
                            node,
                            tenant: tenant.clone(),
                            report,
                        });
                    }
                    Err(error) => {
                        // The GHSF state machine is per-connection;
                        // after any error the connection is dead.
                        conn = None;
                        events.push(PublishEvent::NodeFailed {
                            node,
                            tenant: tenant.clone(),
                            error,
                        });
                    }
                }
            }
        }
        events
    }

    /// Polls until `stop` is set, sleeping `interval` between polls and
    /// reporting every event to `on_event`.
    pub fn run(
        &mut self,
        stop: &AtomicBool,
        interval: Duration,
        mut on_event: impl FnMut(&PublishEvent),
    ) {
        const TICK: Duration = Duration::from_millis(50);
        while !stop.load(Ordering::SeqCst) {
            for event in self.poll_once() {
                on_event(&event);
            }
            let mut slept = Duration::ZERO;
            while slept < interval && !stop.load(Ordering::SeqCst) {
                let step = TICK.min(interval - slept);
                std::thread::sleep(step);
                slept += step;
            }
        }
    }

    /// Re-reads source bundles whose `(mtime, len)` fingerprint changed
    /// and drops cache entries whose file disappeared.
    fn refresh_cache(&mut self) {
        let mut seen: Vec<String> = Vec::new();
        let Ok(entries) = fs::read_dir(&self.source) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("bundle") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if crate::node::validate_tenant(stem).is_err() {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let fingerprint = (
                meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                meta.len(),
            );
            seen.push(stem.to_string());
            let fresh = self
                .cache
                .get(stem)
                .map(|b| b.fingerprint != fingerprint)
                .unwrap_or(true);
            if fresh {
                if let Ok(bytes) = fs::read(&path) {
                    let checksum = fnv1a64(&bytes);
                    self.cache.insert(
                        stem.to_string(),
                        SourceBundle {
                            fingerprint,
                            checksum,
                            bytes,
                        },
                    );
                }
            }
        }
        self.cache.retain(|tenant, _| seen.contains(tenant));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{FleetNode, FleetNodeConfig, NodeEvent};
    use std::path::Path;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ghsf-pub-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quiet_node(spool: &Path) -> FleetNode {
        FleetNode::start(
            FleetNodeConfig::new("127.0.0.1:0".parse().unwrap(), spool),
            Arc::new(|_: &str| None),
            Arc::new(|_: &NodeEvent| {}),
        )
        .unwrap()
    }

    /// Writes a bundle into a source spool the way `publish_bundle`
    /// does: temp file + rename.
    fn drop_bundle(source: &Path, tenant: &str, bytes: &[u8]) {
        let tmp = source.join(format!(".{tenant}.tmp"));
        fs::write(&tmp, bytes).unwrap();
        fs::rename(&tmp, source.join(format!("{tenant}.bundle"))).unwrap();
    }

    #[test]
    fn publisher_converges_a_three_node_fleet() {
        let source = temp_dir("src");
        let spools: Vec<PathBuf> = (0..3).map(|i| temp_dir(&format!("n{i}"))).collect();
        let nodes: Vec<FleetNode> = spools.iter().map(|s| quiet_node(s)).collect();
        let addrs: Vec<SocketAddr> = nodes.iter().map(|n| n.local_addr()).collect();

        drop_bundle(&source, "edge", &vec![9u8; 70_000]);
        let mut publisher =
            SpoolPublisher::new(&source, addrs).with_io_timeout(Duration::from_secs(5));
        let events = publisher.poll_once();
        let synced = events
            .iter()
            .filter(|e| matches!(e, PublishEvent::NodeSynced { .. }))
            .count();
        assert_eq!(synced, 3, "events: {events:?}");
        for spool in &spools {
            assert_eq!(
                fs::read(spool.join("edge.bundle")).unwrap(),
                vec![9u8; 70_000]
            );
        }

        // A second poll is a no-op: every node has acked this address.
        assert!(publisher.poll_once().is_empty());

        // Touching the bundle with new content re-syncs everyone.
        drop_bundle(&source, "edge", &vec![5u8; 80_000]);
        let events = publisher.poll_once();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, PublishEvent::NodeSynced { .. }))
                .count(),
            3
        );
        for spool in &spools {
            assert_eq!(
                fs::read(spool.join("edge.bundle")).unwrap(),
                vec![5u8; 80_000]
            );
        }
    }

    #[test]
    fn dead_node_reports_failure_and_recovers_on_later_poll() {
        let source = temp_dir("src2");
        let live_spool = temp_dir("live");
        let live = quiet_node(&live_spool);

        // A port with nothing listening: grab and drop a listener.
        let dead_addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };

        drop_bundle(&source, "edge", &vec![1u8; 10_000]);
        let mut publisher = SpoolPublisher::new(&source, vec![live.local_addr(), dead_addr])
            .with_io_timeout(Duration::from_millis(500));
        let events = publisher.poll_once();
        assert!(events.iter().any(
            |e| matches!(e, PublishEvent::NodeSynced { node, .. } if *node == live.local_addr())
        ));
        assert!(events
            .iter()
            .any(|e| matches!(e, PublishEvent::NodeFailed { node, .. } if *node == dead_addr)));

        // The dead node comes up; the next poll converges it without
        // resending to the live one.
        let revived_spool = temp_dir("revived");
        let revived = FleetNode::start(
            FleetNodeConfig::new(dead_addr, &revived_spool),
            Arc::new(|_: &str| None),
            Arc::new(|_: &NodeEvent| {}),
        )
        .unwrap();
        let events = publisher.poll_once();
        assert_eq!(events.len(), 1, "{events:?}");
        assert!(matches!(
            &events[0],
            PublishEvent::NodeSynced { node, .. } if *node == dead_addr
        ));
        assert!(revived_spool.join("edge.bundle").exists());
        drop(revived);
    }

    #[test]
    fn replicator_reports_resume_and_already_current() {
        let spool = temp_dir("rep");
        let node = quiet_node(&spool);
        let bytes = vec![3u8; 50_000];
        let mut rep = Replicator::connect(node.local_addr()).unwrap();
        let first = rep.replicate("edge", &bytes).unwrap();
        assert_eq!(first.bytes_sent, 50_000);
        assert!(!first.already_current);
        let second = rep.replicate("edge", &bytes).unwrap();
        assert_eq!(second.bytes_sent, 0);
        assert!(second.already_current);
        assert_eq!(second.checksum, first.checksum);
        rep.ping().unwrap();
    }

    #[test]
    fn hostile_source_names_are_skipped() {
        let source = temp_dir("hostile-src");
        let spool = temp_dir("hostile-n");
        let node = quiet_node(&spool);
        fs::write(source.join(".sneaky.bundle"), b"x").unwrap();
        fs::write(source.join("ok.bundle"), b"y").unwrap();
        let mut publisher = SpoolPublisher::new(&source, vec![node.local_addr()]);
        let events = publisher.poll_once();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0],
            PublishEvent::NodeSynced { tenant, .. } if tenant == "ok"
        ));
    }
}
