//! `fleet-ctl` — replicate a source spool of engine bundles into a
//! fleet of scoring nodes.
//!
//! ```text
//! fleet-ctl --source DIR --node ADDR [--node ADDR ...] [--interval MS] [--once]
//! ```
//!
//! Watches `--source` for `*.bundle` files and keeps every `--node`'s
//! spool in sync with it over GHSF (see `docs/FLEET.md`). With
//! `--once` it performs a single convergence pass and exits non-zero
//! if any node could not be brought in sync — the mode CI and
//! deploy scripts use. Without it, it polls forever at `--interval`
//! (default 1000 ms), printing one line per sync or failure.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

use ghsom_comms::{PublishEvent, SpoolPublisher};

struct Args {
    source: PathBuf,
    nodes: Vec<SocketAddr>,
    interval: Duration,
    once: bool,
}

const USAGE: &str =
    "usage: fleet-ctl --source DIR --node ADDR [--node ADDR ...] [--interval MS] [--once]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut source: Option<PathBuf> = None;
    let mut nodes: Vec<SocketAddr> = Vec::new();
    let mut interval = Duration::from_millis(1000);
    let mut once = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--source" => {
                let value = it.next().ok_or("--source needs a directory")?;
                source = Some(PathBuf::from(value));
            }
            "--node" => {
                let value = it.next().ok_or("--node needs an ADDR:PORT")?;
                let addr: SocketAddr = value
                    .parse()
                    .map_err(|_| format!("invalid node address {value:?}"))?;
                nodes.push(addr);
            }
            "--interval" => {
                let value = it.next().ok_or("--interval needs milliseconds")?;
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid interval {value:?}"))?;
                interval = Duration::from_millis(ms);
            }
            "--once" => once = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    let source = source.ok_or(format!("--source is required\n{USAGE}"))?;
    if !source.is_dir() {
        return Err(format!("source {} is not a directory", source.display()));
    }
    if nodes.is_empty() {
        return Err(format!("at least one --node is required\n{USAGE}"));
    }
    Ok(Args {
        source,
        nodes,
        interval,
        once,
    })
}

fn describe(event: &PublishEvent) -> String {
    match event {
        PublishEvent::NodeSynced {
            node,
            tenant,
            report,
        } => {
            if report.already_current {
                format!(
                    "sync {node} {tenant}: already current ({:#018x})",
                    report.checksum
                )
            } else {
                format!(
                    "sync {node} {tenant}: {} bytes (resumed from {}, {:#018x})",
                    report.bytes_sent, report.resumed_from, report.checksum
                )
            }
        }
        PublishEvent::NodeFailed {
            node,
            tenant,
            error,
        } => format!("FAIL {node} {tenant}: {error}"),
        other => format!("event {other:?}"),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let mut publisher = SpoolPublisher::new(&args.source, args.nodes);
    if args.once {
        let events = publisher.poll_once();
        let mut failed = false;
        for event in &events {
            println!("{}", describe(event));
            failed |= matches!(event, PublishEvent::NodeFailed { .. });
        }
        return if failed {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        };
    }
    // Poll until the process is killed; the publisher is stateless
    // across restarts (acks are re-derived from node offer-acks).
    let run_forever = AtomicBool::new(false);
    publisher.run(&run_forever, args.interval, |event| {
        println!("{}", describe(event));
    });
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_command_line() {
        let dir = std::env::temp_dir();
        let argv = strings(&[
            "--source",
            dir.to_str().unwrap(),
            "--node",
            "127.0.0.1:7071",
            "--node",
            "127.0.0.1:7072",
            "--interval",
            "250",
            "--once",
        ]);
        let args = parse_args(&argv).unwrap();
        assert_eq!(args.nodes.len(), 2);
        assert_eq!(args.interval, Duration::from_millis(250));
        assert!(args.once);
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(parse_args(&strings(&[])).is_err());
        assert!(parse_args(&strings(&["--node", "127.0.0.1:1"])).is_err());
        assert!(parse_args(&strings(&["--source"])).is_err());
        assert!(parse_args(&strings(&[
            "--source",
            "/definitely/not/a/dir",
            "--node",
            "1.2.3.4:5"
        ]))
        .is_err());
        let dir = std::env::temp_dir();
        assert!(parse_args(&strings(&["--source", dir.to_str().unwrap()])).is_err());
        assert!(parse_args(&strings(&[
            "--source",
            dir.to_str().unwrap(),
            "--node",
            "not-an-addr"
        ]))
        .is_err());
    }
}
