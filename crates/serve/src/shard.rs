//! The sharded multi-core serving plane.
//!
//! One [`Engine`] already serves batches allocation-free, but on exactly
//! one thread of control per call: `score_records` walks the whole batch
//! on the calling thread (chunk-parallel *inside* the walk under the
//! `rayon` feature, but with one shared frontier). [`ShardedEngine`]
//! scales the other axis — it splits each incoming batch into contiguous
//! per-shard chunks and scores the chunks on independent OS threads, each
//! with its own thread-local `FeatureMatrix` scratch (the zero-alloc
//! transform path makes shard workers fully independent: no shared
//! mutable state anywhere on the stateless scoring path).
//!
//! # Exactness
//!
//! The sharded plane is **bit-identical** to the single-engine path, by
//! construction rather than by tolerance:
//!
//! * **Stateless scoring** (`score_records`): each record's verdict
//!   depends only on that record and the frozen artifact, so chunking is
//!   pure partitioning. Chunks are contiguous and results are merged in
//!   chunk-index order — the output vector equals the unsharded one
//!   verdict for verdict.
//! * **Streaming** (`observe_records`): the adaptive `mean + k·σ`
//!   threshold is a feedback loop — record *i*'s verdict depends on which
//!   earlier records fed the baseline — so the fold is inherently
//!   sequential. The sharded path therefore parallelizes exactly the
//!   stateless part (scoring), concatenates the per-chunk verdicts back
//!   into arrival order, and folds them through the **single** engine's
//!   streaming state (`Engine::observe_prescored`, one lock acquisition).
//!   Verdicts, `StreamStats` counters and the exported
//!   [`StreamState`] come out bit-identical
//!   to [`Engine::observe_records`] — any shard count, any chunk split.
//!
//! Per-shard *independent* baselines (K detectors each folding its own
//! sub-stream) are deliberately **not** what this module does: merging K
//! independently-thresholded Welford states cannot reproduce the
//! single-stream feedback loop bit-for-bit (the threshold each record saw
//! would differ). `detect`'s `StreamState::merge`/`merge_all` exist for
//! that *approximate* topology; the serving plane keeps the exact one.
//!
//! # Nested parallelism
//!
//! Shard workers run the inner engine call under
//! [`mathkit::parallel::with_thread_cap`]`(1, ..)`, so the per-chunk
//! arena walk stays sequential instead of every worker spawning its own
//! nested pool. The shard count is the only parallelism knob on this
//! path; `GHSOM_THREADS` keeps governing unsharded calls.
//!
//! # Hot reload
//!
//! A `ShardedEngine` is a thin view over an `Arc<Engine>`: tenants served
//! through [`EngineRegistry::sharded`](crate::EngineRegistry::sharded)
//! re-resolve the live engine per batch, so `swap`/`swap_carrying` (and
//! the `SpoolWatcher` on top) work unchanged — in-flight batches finish
//! on the engine they started with, the next batch serves from the new
//! one, and a carried baseline keeps updating through the same
//! `StreamingDetector` the swap transplanted it into.

use std::sync::Arc;

use detect::online::StreamState;
use detect::prelude::{HybridVerdict, StreamStats, StreamVerdict};
use mathkit::parallel::with_thread_cap;
use traffic::ConnectionRecord;

use crate::engine::Engine;
use crate::ServeError;

/// Records below this floor are scored inline regardless of the shard
/// count: at ~600k rec/s a chunk this size costs ~100µs of walk time,
/// comfortably above thread-spawn overhead, so tiny batches never pay
/// for workers they cannot amortize.
const MIN_SHARD_CHUNK: usize = 64;

/// A fixed-width multi-core serving view over one [`Engine`].
///
/// Construction is cheap (an `Arc` clone and an integer); the engine
/// itself is shared, not duplicated — per-thread scratch buffers are
/// thread-local inside the engine's fused transform→walk path, so shard
/// workers need no per-shard state of their own. See the [module
/// docs](self) for the exactness and hot-reload contracts.
///
/// # Example
///
/// ```
/// use ghsom_serve::{Engine, EngineConfig, ShardedEngine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (train, test) = traffic::synth::kdd_train_test(600, 100, 42)?;
/// let engine = Engine::fit(&EngineConfig::default(), &train)?;
/// let single = engine.score_records(test.records())?;
///
/// let sharded = ShardedEngine::new(engine, 4);
/// let parallel = sharded.score_records(test.records())?;
/// assert_eq!(single, parallel); // bit-identical, not "close"
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    engine: Arc<Engine>,
    shards: usize,
}

impl ShardedEngine {
    /// Wraps `engine` for service across `shards` worker threads
    /// (clamped to at least 1; `1` behaves exactly like the engine
    /// itself, with no threads spawned).
    pub fn new(engine: Engine, shards: usize) -> Self {
        Self::from_shared(Arc::new(engine), shards)
    }

    /// [`ShardedEngine::new`] over an engine that is already shared —
    /// the registry integration point, but also useful to serve one
    /// artifact at several widths without cloning it.
    pub fn from_shared(engine: Arc<Engine>, shards: usize) -> Self {
        Self {
            engine,
            shards: shards.max(1),
        }
    }

    /// The shared engine this view serves from.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The configured shard width (worker-thread budget per batch).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Splits `n` records into at most [`ShardedEngine::shards`]
    /// contiguous chunks of at least [`MIN_SHARD_CHUNK`] records,
    /// returning the per-chunk length (`0` ⇒ serve inline, no workers).
    fn chunk_len(&self, n: usize) -> usize {
        let max_workers = self.shards.min(n / MIN_SHARD_CHUNK);
        if max_workers <= 1 {
            return 0;
        }
        n.div_ceil(max_workers)
    }

    /// The scatter/merge core shared by both batched entry points: score
    /// contiguous chunks on scoped worker threads (each capped to one
    /// inner thread), then splice the results back in chunk order.
    ///
    /// Deterministic by construction: the chunk partition depends only on
    /// the record count and the shard width, results merge in chunk-index
    /// order, and when several chunks fail the error of the **earliest**
    /// chunk wins — the same error the unsharded call would have hit
    /// first.
    fn scatter_score(
        &self,
        records: &[ConnectionRecord],
    ) -> Result<Vec<HybridVerdict>, ServeError> {
        let chunk = self.chunk_len(records.len());
        if chunk == 0 {
            return self.engine.score_records(records);
        }
        let parts: Vec<Result<Vec<HybridVerdict>, ServeError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = records
                .chunks(chunk)
                .map(|part| {
                    let engine = &self.engine;
                    scope.spawn(move || with_thread_cap(1, || engine.score_records(part)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        let mut out = Vec::with_capacity(records.len());
        for part in parts {
            out.extend(part?);
        }
        Ok(out)
    }

    /// Stateless batch scoring across the shard workers — output is
    /// bit-identical to [`Engine::score_records`] on the same slice
    /// (same order, same scores, same flags, same categories).
    ///
    /// # Errors
    ///
    /// Pipeline and scoring errors propagate as typed [`ServeError`]s;
    /// with multiple failing chunks, the earliest chunk's error is
    /// reported (the one the unsharded call would have hit first).
    pub fn score_records(
        &self,
        records: &[ConnectionRecord],
    ) -> Result<Vec<HybridVerdict>, ServeError> {
        self.scatter_score(records)
    }

    /// Streams a burst through the adaptive threshold using the shard
    /// workers for the stateless scoring half, then folding the verdicts
    /// through the engine's **single** streaming state in arrival order —
    /// verdicts and stream state are bit-identical to
    /// [`Engine::observe_records`] (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// Pipeline and scoring errors propagate; the streaming state is not
    /// updated in that case (the fold only runs once every chunk has
    /// scored successfully).
    pub fn observe_records(
        &self,
        records: &[ConnectionRecord],
    ) -> Result<Vec<StreamVerdict>, ServeError> {
        let scored = self.scatter_score(records)?;
        Ok(self.engine.observe_prescored(&scored))
    }

    /// Single-record scoring — delegates to [`Engine::score_record`]
    /// (one record cannot amortize a worker thread).
    ///
    /// # Errors
    ///
    /// See [`Engine::score_record`].
    pub fn score_record(&self, record: &ConnectionRecord) -> Result<HybridVerdict, ServeError> {
        self.engine.score_record(record)
    }

    /// Single-record streaming — delegates to [`Engine::observe`].
    ///
    /// # Errors
    ///
    /// See [`Engine::observe`].
    pub fn observe(&self, record: &ConnectionRecord) -> Result<StreamVerdict, ServeError> {
        self.engine.observe(record)
    }

    /// Session counters of the shared engine — see
    /// [`Engine::stream_stats`].
    pub fn stream_stats(&self) -> StreamStats {
        self.engine.stream_stats()
    }

    /// Exports the shared engine's complete adaptive streaming state —
    /// see [`Engine::stream_state`]. Because sharded observation folds
    /// through that single state, the export is bit-compatible with the
    /// unsharded engine's (same counters, same Welford moments), and
    /// STREAM-section bundles / `swap_carrying` work unchanged.
    pub fn stream_state(&self) -> StreamState {
        self.engine.stream_state()
    }

    /// Restores an exported streaming state into the shared engine — see
    /// [`Engine::restore_stream`].
    ///
    /// # Errors
    ///
    /// See [`Engine::restore_stream`].
    pub fn restore_stream(&self, state: StreamState) -> Result<(), ServeError> {
        self.engine.restore_stream(state)
    }

    /// Resets the shared engine's adaptive streaming state.
    pub fn reset_stream(&self) {
        self.engine.reset_stream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn fitted() -> (Engine, Vec<ConnectionRecord>) {
        let (train, test) = traffic::synth::kdd_train_test(400, 600, 7).expect("synth dataset");
        let engine = Engine::fit(
            &EngineConfig {
                warmup: 32,
                ..EngineConfig::default()
            },
            &train,
        )
        .expect("fit engine");
        (engine, test.records().to_vec())
    }

    #[test]
    fn chunk_len_respects_floor_and_width() {
        let (engine, _) = fitted();
        let sharded = ShardedEngine::new(engine, 4);
        // Below the floor, or width 1: inline.
        assert_eq!(sharded.chunk_len(0), 0);
        assert_eq!(sharded.chunk_len(MIN_SHARD_CHUNK * 2 - 1), 0);
        // Enough records for two workers but not four.
        assert_eq!(sharded.chunk_len(MIN_SHARD_CHUNK * 2), MIN_SHARD_CHUNK);
        // Plenty of records: all four shards, balanced split.
        assert_eq!(sharded.chunk_len(1000), 250);
        let one = ShardedEngine::from_shared(sharded.engine().clone(), 1);
        assert_eq!(one.chunk_len(1_000_000), 0);
        // Shard width clamps to at least 1.
        assert_eq!(
            ShardedEngine::from_shared(one.engine().clone(), 0).shards(),
            1
        );
    }

    #[test]
    fn sharded_scoring_is_bit_identical_across_widths() {
        let (engine, records) = fitted();
        let baseline = engine.score_records(&records).expect("unsharded");
        let shared = Arc::new(engine);
        for shards in [1, 2, 3, 4, 8] {
            let sharded = ShardedEngine::from_shared(shared.clone(), shards);
            let got = sharded.score_records(&records).expect("sharded");
            assert_eq!(got.len(), baseline.len());
            for (g, b) in got.iter().zip(&baseline) {
                assert_eq!(g.score.to_bits(), b.score.to_bits());
                assert_eq!(g.anomalous, b.anomalous);
                assert_eq!(g.category, b.category);
            }
        }
    }

    #[test]
    fn sharded_observe_matches_single_engine_verdicts_and_state() {
        let (reference, records) = fitted();
        let expected = reference.observe_records(&records).expect("unsharded");

        let (engine, _) = fitted();
        let sharded = ShardedEngine::new(engine, 4);
        let got = sharded.observe_records(&records).expect("sharded");

        // Bitwise, not PartialEq: warmup verdicts carry a NaN threshold,
        // and NaN != NaN would fail an equality that is in fact exact.
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.score.to_bits(), e.score.to_bits());
            assert_eq!(g.anomalous, e.anomalous);
            assert_eq!(g.threshold.to_bits(), e.threshold.to_bits());
        }
        let a = reference.stream_state();
        let b = sharded.stream_state();
        assert_eq!(a, b, "merged stream state must be bit-compatible");
    }

    #[test]
    fn tiny_batches_and_empty_input_serve_inline() {
        let (engine, records) = fitted();
        let sharded = ShardedEngine::new(engine, 8);
        assert!(sharded.score_records(&[]).expect("empty").is_empty());
        let few = &records[..3];
        let got = sharded.score_records(few).expect("tiny");
        assert_eq!(got.len(), 3);
        let single = sharded.score_record(&records[0]).expect("one");
        assert_eq!(single, got[0]);
    }
}
