//! The one-artifact serving facade: raw record in, verdict out.
//!
//! Before this module, deploying the paper's detector meant hand-wiring
//! five pieces (`traffic` records → [`KddPipeline`] → `GhsomModel` →
//! `HybridGhsomDetector` → `StreamingDetector`) and shipping only the
//! compiled arena — the fitted feature pipeline and the detector
//! thresholds were stranded in the training process. An [`Engine`] owns
//! the full record→vector→arena-walk→verdict path and persists as **one
//! bundle artifact** that a serving process can load with no access to
//! the training-time objects.
//!
//! # API shape
//!
//! * [`Engine::fit`] — everything from a labelled [`Dataset`] in one call
//!   (fit pipeline, train GHSOM, fit + calibrate the hybrid detector,
//!   compile the arena).
//! * [`Engine::builder`] — assemble from separately fitted pieces:
//!   `Engine::builder().pipeline(p).model(&m).detector(&d).build()`.
//! * [`Engine::score_record`] / [`Engine::score_records`] — stateless
//!   verdicts ([`HybridVerdict`]: score + flag + category from one
//!   hierarchy traversal), single record or batched.
//! * [`Engine::observe`] / [`Engine::observe_records`] — the streaming
//!   path with the adaptive `mean + k·σ` threshold and
//!   [`StreamStats`] session counters.
//! * [`Engine::save`] / [`Engine::load`] / [`Engine::to_bytes`] /
//!   [`Engine::from_bytes`] — the bundle snapshot.
//!
//! # The fused transform→walk serving path
//!
//! Scoring allocates nothing per record steady-state. Batched entry
//! points transform the record slice into a reused **thread-local**
//! [`featurize::FeatureMatrix`] ([`KddPipeline::transform_batch`] — the
//! batched columnar plane, no per-record `Vec`), then hand the buffer to
//! the compiled arena walk as a borrowed `mathkit::MatrixView`
//! (`verdicts_all_view` / `observe_batch_view`) — no intermediate owned
//! matrix. The single-record paths reuse a thread-local scratch row the
//! same way ([`KddPipeline::transform_into`]). See
//! `docs/ARCHITECTURE.md` for the full data-flow picture and
//! `BENCH_4.json` for the measured end-to-end effect.
//!
//! # Bundle layout (snapshot version 2)
//!
//! A bundle is a regular snapshot (same magic, header, checksum, aligned
//! section table — see the [crate-level docs](crate)) at format version
//! [`crate::snapshot::BUNDLE_VERSION`], carrying the 15 arena sections
//! (ids 1–15) **plus** two required sections:
//!
//! ```text
//! id 16  PIPELINE  UTF-8 JSON of the fitted featurize::KddPipeline
//!                  (config, fitted column scaler, output schema)
//! id 17  DETECTOR  UTF-8 JSON: { "detector": HybridState (leaf labels,
//!                  confidences, dead-unit policy, QE threshold),
//!                  "k_sigma": f64, "warmup": u64 } — the fitted detector
//!                  state plus the streaming-threshold configuration
//! id 18  STREAM    optional UTF-8 JSON of detect's StreamState — the
//!                  live adaptive baseline, written only by
//!                  to_bytes_with_stream (absent ⇒ cold start)
//! ```
//!
//! JSON is used for the two fitted-state sections because they are small,
//! schema-rich and human-inspectable; the arena — the megabytes — stays
//! binary and zero-copy mappable. The shim serializer prints floats in
//! shortest-roundtrip form, so a save → load cycle reproduces every
//! fitted parameter **bit-exactly**: a reloaded engine's verdicts are
//! bit-identical to the engine that wrote the bundle. The whole file is
//! covered by the header checksum, and decoding validates structure
//! before anything is served — hostile bytes yield typed [`ServeError`]s,
//! never panics.
//!
//! **Version gating.** Model-only snapshots stay at version 1 and still
//! load everywhere ([`CompiledGhsom::from_bytes`] accepts both versions);
//! [`Engine::from_bytes`] reports [`ServeError::NotABundle`] for them
//! instead of guessing at a missing pipeline. Version-1 readers from
//! before the bundle format reject version-2 files with a typed
//! unsupported-version error rather than silently serving a model without
//! its input transform.
//!
//! # Example
//!
//! ```
//! use ghsom_serve::{Engine, EngineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (train, test) = traffic::synth::kdd_train_test(600, 100, 42)?;
//! let engine = Engine::fit(&EngineConfig::default(), &train)?;
//! let verdict = engine.score_record(&test.records()[0])?;
//! # let _ = verdict.anomalous;
//!
//! // One artifact carries pipeline + arena + detector state:
//! let bundle = engine.to_bytes();
//! let reloaded = Engine::from_bytes(&bundle)?;
//! assert_eq!(
//!     engine.score_record(&test.records()[0])?,
//!     reloaded.score_record(&test.records()[0])?,
//! );
//! # Ok(())
//! # }
//! ```

use std::cell::RefCell;
use std::path::Path;

use detect::prelude::*;
use featurize::{FeatureMatrix, KddPipeline, PipelineConfig};
use ghsom_core::{GhsomConfig, GhsomModel, Scorer};
use mathkit::MatrixView;
use serde::{Deserialize, Serialize};
use traffic::{AttackCategory, ConnectionRecord, Dataset};

use crate::compiled::{Compile, CompiledGhsom};
use crate::snapshot::{self, SnapshotView, SEC_DETECTOR, SEC_PIPELINE, SEC_STREAM};
use crate::ServeError;

/// Default deviation multiplier of the adaptive streaming threshold.
pub const DEFAULT_K_SIGMA: f64 = 4.0;

/// Default number of observations before the streaming threshold adapts.
pub const DEFAULT_WARMUP: u64 = 1_000;

/// End-to-end configuration of [`Engine::fit`].
///
/// `#[non_exhaustive]`: start from [`EngineConfig::default`] and apply the
/// chainable `with_*` setters (fields stay `pub` for direct assignment
/// through a `mut` binding).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Feature-pipeline configuration.
    pub pipeline: PipelineConfig,
    /// GHSOM training configuration.
    pub ghsom: GhsomConfig,
    /// QE-threshold calibration percentile over normal training scores.
    pub percentile: f64,
    /// Deviation multiplier of the adaptive streaming threshold.
    pub k_sigma: f64,
    /// Observations before the streaming threshold adapts.
    pub warmup: u64,
}

impl Default for EngineConfig {
    /// Default pipeline and GHSOM settings, threshold at the 99th
    /// percentile, streaming threshold `mean + 4σ` after 1 000 records.
    fn default() -> Self {
        EngineConfig {
            pipeline: PipelineConfig::default(),
            ghsom: GhsomConfig::default(),
            percentile: 0.99,
            k_sigma: DEFAULT_K_SIGMA,
            warmup: DEFAULT_WARMUP,
        }
    }
}

impl EngineConfig {
    /// Returns the config with the pipeline configuration replaced.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Returns the config with the GHSOM configuration replaced.
    #[must_use]
    pub fn with_ghsom(mut self, ghsom: GhsomConfig) -> Self {
        self.ghsom = ghsom;
        self
    }

    /// Returns the config with the calibration percentile replaced.
    #[must_use]
    pub fn with_percentile(mut self, percentile: f64) -> Self {
        self.percentile = percentile;
        self
    }

    /// Returns the config with the streaming-threshold parameters
    /// replaced.
    #[must_use]
    pub fn with_stream(mut self, k_sigma: f64, warmup: u64) -> Self {
        self.k_sigma = k_sigma;
        self.warmup = warmup;
        self
    }
}

thread_local! {
    /// Reused batch-transform buffer of the fused serving path: one per
    /// ingest thread, so steady-state `score_records`/`observe_records`
    /// calls allocate nothing for the feature matrix once the buffer has
    /// grown to the largest batch seen.
    static BATCH_SCRATCH: RefCell<FeatureMatrix> = RefCell::new(FeatureMatrix::new());
    /// Reused single-record row of `score_record`/`observe`.
    static ROW_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Retained-capacity bound of [`struct@BATCH_SCRATCH`], in `f64` elements
/// (32 MiB). One oversized backfill batch must not pin its peak memory on
/// a long-lived ingest thread forever; past this, the scratch is shrunk
/// back after the call.
const BATCH_SCRATCH_MAX_ELEMS: usize = 1 << 22;

/// The serving paths refuse to walk non-finite feature vectors: a NaN
/// score would silently flag nothing and, on the streaming path, poison
/// the adaptive `mean + k·σ` baseline for every later record. (Records
/// from this workspace's generators and validated CSV ingest are always
/// finite; this guards hand-built records at the `pub`-field trust
/// boundary, preserving the typed-error behavior the pre-fusion owned
/// `Matrix` path enforced.)
fn ensure_finite(features: &[f64]) -> Result<(), ServeError> {
    if mathkit::vector::all_finite(features) {
        Ok(())
    } else {
        Err(ServeError::Malformed(
            "pipeline produced non-finite features (invalid input record)",
        ))
    }
}

/// The `DETECTOR` bundle section: fitted detector state + streaming
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DetectorSection {
    detector: HybridState,
    k_sigma: f64,
    warmup: u64,
}

/// A deployable detector: fitted feature pipeline + compiled arena +
/// fitted hybrid detector + adaptive streaming wrapper, behind one facade.
///
/// Construct with [`Engine::fit`] (from raw data), [`Engine::builder`]
/// (from separately fitted pieces) or [`Engine::load`] /
/// [`Engine::from_bytes`] (from a bundle artifact). The engine is `Sync`:
/// scoring is read-only over the arena and the streaming state sits
/// behind its own lock, so one engine instance can serve multiple ingest
/// threads (and the [`crate::EngineRegistry`] hands out `Arc<Engine>`s).
#[derive(Debug)]
pub struct Engine {
    pipeline: KddPipeline,
    stream: StreamingDetector<HybridGhsomDetector<CompiledGhsom>>,
}

impl Engine {
    /// Fits the whole serving stack on a labelled training dataset: fit
    /// the feature pipeline, train the GHSOM, fit the leaf labels,
    /// calibrate the QE threshold, compile the arena and wrap the
    /// streaming layer.
    ///
    /// # Errors
    ///
    /// [`ServeError::Pipeline`] / [`ServeError::Train`] /
    /// [`ServeError::Detector`] wrap the stage-specific errors
    /// (empty/invalid data, invalid configuration); compilation errors
    /// propagate unchanged.
    pub fn fit(config: &EngineConfig, train: &Dataset) -> Result<Self, ServeError> {
        let pipeline = KddPipeline::fit(&config.pipeline, train)?;
        let x_train = pipeline.transform_dataset(train)?;
        let labels: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
        let model = GhsomModel::train(&config.ghsom, &x_train)?;
        let fitted = HybridGhsomDetector::fit(model, &x_train, &labels, config.percentile)?;
        Engine::builder()
            .pipeline(pipeline)
            .model(fitted.labeled().model())
            .detector(&fitted)
            .stream(config.k_sigma, config.warmup)
            .build()
    }

    /// A fresh [`EngineBuilder`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The fitted record → vector transform.
    pub fn pipeline(&self) -> &KddPipeline {
        &self.pipeline
    }

    /// The fitted hybrid detector serving from the compiled arena.
    pub fn detector(&self) -> &HybridGhsomDetector<CompiledGhsom> {
        self.stream.inner()
    }

    /// The compiled hierarchy the engine serves from.
    pub fn compiled(&self) -> &CompiledGhsom {
        self.detector().labeled().model()
    }

    /// Feature-space dimensionality (pipeline output = arena input).
    pub fn dim(&self) -> usize {
        self.compiled().dim()
    }

    /// The calibrated QE threshold.
    pub fn threshold(&self) -> f64 {
        self.detector().threshold()
    }

    /// Scores one raw traffic record: transform through the fitted
    /// pipeline into a **thread-local scratch row**
    /// ([`KddPipeline::transform_into`] — no allocation steady-state),
    /// walk the arena once, apply the label + QE layers.
    ///
    /// # Errors
    ///
    /// Pipeline and scoring errors propagate as typed [`ServeError`]s;
    /// [`ServeError::Malformed`] for records whose transform is
    /// non-finite (hand-built records violating
    /// [`ConnectionRecord`]`::validate`).
    pub fn score_record(&self, record: &ConnectionRecord) -> Result<HybridVerdict, ServeError> {
        ROW_SCRATCH.with_borrow_mut(|x| {
            self.pipeline.transform_into(record, x)?;
            ensure_finite(x)?;
            Ok(self.detector().verdict(x)?)
        })
    }

    /// Batched [`Engine::score_record`] on the fused serving path: the
    /// whole slice is transformed into a reused thread-local
    /// [`FeatureMatrix`] ([`KddPipeline::transform_batch`] — no per-record
    /// allocation), which the arena's grouped hierarchy traversal then
    /// walks directly as a borrowed view (chunk-parallel under the
    /// `rayon` feature; no intermediate owned matrix).
    ///
    /// Returns an empty vector for an empty slice.
    ///
    /// # Errors
    ///
    /// Pipeline and scoring errors propagate as typed [`ServeError`]s;
    /// [`ServeError::Malformed`] when any record's transform is
    /// non-finite.
    pub fn score_records(
        &self,
        records: &[ConnectionRecord],
    ) -> Result<Vec<HybridVerdict>, ServeError> {
        self.with_transformed_batch(records, |view| {
            Ok(self.detector().verdicts_all_view(view)?)
        })
    }

    /// Streams one record through the adaptive threshold: the detector's
    /// verdict is combined with a `mean + k·σ` bound over the recent
    /// score distribution (see [`StreamingDetector::observe`]). Uses the
    /// same thread-local scratch row as [`Engine::score_record`].
    ///
    /// # Errors
    ///
    /// Pipeline and scoring errors propagate; streaming state is not
    /// updated in that case.
    pub fn observe(&self, record: &ConnectionRecord) -> Result<StreamVerdict, ServeError> {
        ROW_SCRATCH.with_borrow_mut(|x| {
            self.pipeline.transform_into(record, x)?;
            ensure_finite(x)?;
            Ok(self.stream.observe(x)?)
        })
    }

    /// Streams a burst of records in arrival order through one batched
    /// traversal — verdicts are identical to calling [`Engine::observe`]
    /// record by record. Runs on the same fused transform→walk path as
    /// [`Engine::score_records`] (reused thread-local buffer, borrowed
    /// view into the arena walk).
    ///
    /// # Errors
    ///
    /// Pipeline and scoring errors propagate; streaming state is not
    /// updated in that case.
    pub fn observe_records(
        &self,
        records: &[ConnectionRecord],
    ) -> Result<Vec<StreamVerdict>, ServeError> {
        self.with_transformed_batch(records, |view| Ok(self.stream.observe_batch_view(view)?))
    }

    /// The shared scaffold of the fused batched serving paths: transform
    /// `records` into the thread-local scratch buffer, guard finiteness,
    /// hand the borrowed view to `score`, and bound the retained scratch
    /// capacity afterwards — on success **and** on error, so a failing
    /// oversized batch cannot pin its peak memory on the thread.
    fn with_transformed_batch<T>(
        &self,
        records: &[ConnectionRecord],
        score: impl FnOnce(MatrixView<'_>) -> Result<Vec<T>, ServeError>,
    ) -> Result<Vec<T>, ServeError> {
        if records.is_empty() {
            return Ok(Vec::new());
        }
        BATCH_SCRATCH.with_borrow_mut(|buf| {
            let result = (|| {
                self.pipeline.transform_batch(records, buf)?;
                ensure_finite(buf.as_slice())?;
                score(buf.as_view())
            })();
            buf.shrink_if_over(BATCH_SCRATCH_MAX_ELEMS);
            result
        })
    }

    /// A consistent snapshot of the streaming session (records seen /
    /// flagged, adaptive score baseline) — see [`StreamStats`].
    pub fn stream_stats(&self) -> StreamStats {
        self.stream.stats()
    }

    /// Exports the **complete** adaptive streaming state (counters plus
    /// the raw Welford accumulator — see [`StreamState`]), taken under
    /// one lock acquisition. Unlike the derived [`Engine::stream_stats`]
    /// report, this restores bit-identically through
    /// [`Engine::restore_stream`]: the baseline-transplant half of a
    /// zero-downtime model swap, and the payload of the optional
    /// `STREAM` bundle section.
    pub fn stream_state(&self) -> StreamState {
        self.stream.export_state()
    }

    /// Replaces the adaptive streaming state with an exported one (the
    /// fitted detector is untouched). After the restore, the `mean + k·σ`
    /// threshold, warmup progress and session counters continue exactly
    /// where the exported engine left off — a freshly retrained engine
    /// restored from the old engine's state serves with a **warm**
    /// threshold instead of re-entering warmup.
    ///
    /// # Errors
    ///
    /// [`ServeError::StreamState`] when the state is inconsistent or
    /// non-finite (it may come from a snapshot file — a trust boundary);
    /// the current state is left untouched in that case.
    pub fn restore_stream(&self, state: StreamState) -> Result<(), ServeError> {
        self.stream
            .import_state(state)
            .map_err(ServeError::StreamState)
    }

    /// Resets the adaptive streaming state (the fitted detector is
    /// untouched).
    pub fn reset_stream(&self) {
        self.stream.reset()
    }

    /// Folds verdicts that were already scored out of band through the
    /// adaptive streaming threshold, in slice order, under one lock
    /// acquisition — the exact-merge tail of the sharded observe path
    /// (see [`crate::shard::ShardedEngine`]).
    ///
    /// A [`HybridVerdict`]'s `(score, anomalous)` pair is exactly what
    /// the wrapped detector's `score_and_flag` path produces for the same
    /// record, so folding [`Engine::score_records`] output here yields
    /// stream verdicts and exported state **bit-identical** to
    /// [`Engine::observe_records`] over the same records in the same
    /// order.
    pub(crate) fn observe_prescored(&self, verdicts: &[HybridVerdict]) -> Vec<StreamVerdict> {
        self.stream
            .observe_prescored(verdicts.iter().map(|v| (v.score, v.anomalous)))
    }

    // --- bundle persistence -------------------------------------------------

    /// Serializes the engine into a version-
    /// [`BUNDLE_VERSION`](crate::snapshot::BUNDLE_VERSION) bundle: the
    /// arena sections plus the `PIPELINE` and `DETECTOR` sections (see
    /// the [module docs](self) for the layout). The live streaming
    /// baseline is **not** included — a loaded engine cold-starts its
    /// adaptive threshold; use [`Engine::to_bytes_with_stream`] to carry
    /// it.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode_bundle(false)
    }

    /// [`Engine::to_bytes`] plus the **optional `STREAM` section**
    /// (id 18): the live adaptive baseline ([`Engine::stream_state`]) at
    /// the moment of the call. A daemon that snapshots its engines with
    /// this on shutdown resumes after a restart with warm `mean + k·σ`
    /// thresholds instead of re-entering warmup —
    /// [`Engine::from_bytes`] restores the section automatically when
    /// present. The section is optional, so the format version does not
    /// change and readers without stream support simply ignore it.
    pub fn to_bytes_with_stream(&self) -> Vec<u8> {
        self.encode_bundle(true)
    }

    // LINT-ALLOW(no-panic): the shim serde_json encoder is total over these derive-serialized structs — string-keyed, no fallible Serialize impls
    fn encode_bundle(&self, with_stream: bool) -> Vec<u8> {
        let mut sections = self.compiled().arena_sections();
        let pipeline_json =
            serde_json::to_string(&self.pipeline).expect("shim JSON encoding is total");
        sections.push((SEC_PIPELINE, pipeline_json.into_bytes()));
        let detector_json = serde_json::to_string(&DetectorSection {
            detector: self.detector().state(),
            k_sigma: self.stream.k_sigma(),
            warmup: self.stream.warmup(),
        })
        .expect("shim JSON encoding is total");
        sections.push((SEC_DETECTOR, detector_json.into_bytes()));
        if with_stream {
            let stream_json =
                serde_json::to_string(&self.stream_state()).expect("shim JSON encoding is total");
            sections.push((SEC_STREAM, stream_json.into_bytes()));
        }
        snapshot::seal(snapshot::BUNDLE_VERSION, &sections)
    }

    /// Decodes a bundle into a serving-ready engine. The streaming state
    /// starts fresh unless the bundle carries the optional `STREAM`
    /// section ([`Engine::to_bytes_with_stream`]), which is restored so
    /// the adaptive threshold resumes where the writer left off.
    ///
    /// # Errors
    ///
    /// Every decoding error of [`CompiledGhsom::from_bytes`], plus
    /// [`ServeError::NotABundle`] for valid *model-only* snapshots,
    /// [`ServeError::Malformed`] when the bundle sections are not valid
    /// JSON of the expected shape or disagree with the arena, and
    /// [`ServeError::StreamState`] when a present `STREAM` section
    /// parses but carries an inconsistent or non-finite baseline.
    pub fn from_bytes(raw: &[u8]) -> Result<Self, ServeError> {
        let sections = snapshot::parse_preamble(raw)?;
        if sections.version < snapshot::BUNDLE_VERSION {
            return Err(ServeError::NotABundle {
                version: sections.version,
            });
        }
        let arena = CompiledGhsom::decode_arena(raw, &sections)?;
        Self::assemble(arena, raw, &sections)
    }

    /// Decodes a bundle out of an **already-validated**
    /// [`SnapshotView`] — the hot-reload fast path. The view's
    /// construction ran the checksum and structural validation once;
    /// this reuses that work (no re-hash, no second structural pass) and
    /// only copies the arena tables out of the mapped bytes into the
    /// owned engine. A watcher that zero-copy-validates an artifact and
    /// then deploys it therefore reads the file exactly once.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotABundle`] when the view is a model-only
    /// snapshot; otherwise the bundle-section errors of
    /// [`Engine::from_bytes`] (the container itself is already known
    /// good).
    pub fn from_view(view: &SnapshotView<'_>) -> Result<Self, ServeError> {
        if !view.is_bundle() {
            return Err(ServeError::NotABundle {
                version: view.version(),
            });
        }
        let (raw, sections) = view.parts();
        Self::assemble(view.to_owned(), raw, sections)
    }

    /// The shared tail of the bundle decoders: arena already decoded (and
    /// validated — by `decode_arena` or at view construction), bundle
    /// sections still to parse.
    fn assemble(
        arena: CompiledGhsom,
        raw: &[u8],
        sections: &snapshot::Sections,
    ) -> Result<Self, ServeError> {
        let pipeline: KddPipeline = decode_json(sections.payload(raw, SEC_PIPELINE)?)?;
        let det: DetectorSection = decode_json(sections.payload(raw, SEC_DETECTOR)?)?;
        if pipeline.output_dim() != arena.dim() {
            return Err(ServeError::DimensionMismatch {
                expected: arena.dim(),
                found: pipeline.output_dim(),
            });
        }
        if !det.detector.threshold.is_finite() || !det.k_sigma.is_finite() {
            return Err(ServeError::Malformed("detector thresholds must be finite"));
        }
        let detector = HybridGhsomDetector::from_state(arena, det.detector);
        let engine = Engine {
            pipeline,
            stream: StreamingDetector::new(detector, det.k_sigma, det.warmup),
        };
        if let Some(payload) = sections.payload_opt(raw, SEC_STREAM) {
            let state: StreamState = decode_json(payload)?;
            engine.restore_stream(state)?;
        }
        Ok(engine)
    }

    /// Writes the bundle to a file (without the live streaming baseline
    /// — see [`Engine::save_with_stream`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on filesystem failures.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), ServeError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Writes the bundle **including the live streaming baseline**
    /// ([`Engine::to_bytes_with_stream`]) to a file — the daemon
    /// shutdown path: a process that reloads this file resumes scoring
    /// with the adaptive threshold it shut down with.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on filesystem failures.
    pub fn save_with_stream<P: AsRef<Path>>(&self, path: P) -> Result<(), ServeError> {
        std::fs::write(path, self.to_bytes_with_stream())?;
        Ok(())
    }

    /// Reads a bundle written by [`Engine::save`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on filesystem failures; decoding errors as in
    /// [`Engine::from_bytes`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, ServeError> {
        let raw = std::fs::read(path)?;
        Self::from_bytes(&raw)
    }
}

/// Decodes one UTF-8 JSON bundle section with typed errors.
fn decode_json<T: Deserialize>(payload: &[u8]) -> Result<T, ServeError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ServeError::Malformed("bundle section is not valid UTF-8"))?;
    serde_json::from_str(text).map_err(|_| {
        ServeError::Malformed("bundle section is not valid JSON of the expected shape")
    })
}

/// Assembles an [`Engine`] from separately fitted pieces.
///
/// ```
/// use ghsom_serve::Engine;
/// # use featurize::{KddPipeline, PipelineConfig};
/// # use ghsom_core::{GhsomConfig, GhsomModel};
/// # use detect::prelude::*;
/// # use traffic::AttackCategory;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let (train, _) = traffic::synth::kdd_train_test(400, 10, 3)?;
/// # let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train)?;
/// # let x = pipeline.transform_dataset(&train)?;
/// # let labels: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
/// # let model = GhsomModel::train(&GhsomConfig::default(), &x)?;
/// # let detector = HybridGhsomDetector::fit(model, &x, &labels, 0.99)?;
/// let engine = Engine::builder()
///     .pipeline(pipeline)
///     .model(detector.labeled().model())
///     .detector(&detector)
///     .build()?;
/// # let _ = engine.dim();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct EngineBuilder {
    pipeline: Option<KddPipeline>,
    model: Option<Result<CompiledGhsom, ServeError>>,
    detector: Option<HybridState>,
    stream: Option<(f64, u64)>,
}

impl EngineBuilder {
    /// Sets the fitted feature pipeline.
    #[must_use]
    pub fn pipeline(mut self, pipeline: KddPipeline) -> Self {
        self.pipeline = Some(pipeline);
        self
    }

    /// Sets the hierarchy by compiling a trained tree model (compilation
    /// errors surface at [`EngineBuilder::build`]).
    #[must_use]
    pub fn model(mut self, model: &GhsomModel) -> Self {
        self.model = Some(model.compile());
        self
    }

    /// Sets an already-compiled hierarchy (e.g. from a model-only
    /// snapshot).
    #[must_use]
    pub fn compiled(mut self, arena: CompiledGhsom) -> Self {
        self.model = Some(Ok(arena));
        self
    }

    /// Sets the fitted detector; its labels and threshold are extracted
    /// and rebound to the engine's compiled hierarchy, so a detector
    /// fitted against the training tree works unchanged.
    #[must_use]
    pub fn detector<M: Scorer>(mut self, detector: &HybridGhsomDetector<M>) -> Self {
        self.detector = Some(detector.state());
        self
    }

    /// Sets the streaming-threshold parameters (defaults:
    /// [`DEFAULT_K_SIGMA`], [`DEFAULT_WARMUP`]).
    #[must_use]
    pub fn stream(mut self, k_sigma: f64, warmup: u64) -> Self {
        self.stream = Some((k_sigma, warmup));
        self
    }

    /// Assembles the engine.
    ///
    /// # Errors
    ///
    /// [`ServeError::MissingComponent`] when the pipeline, hierarchy or
    /// detector was never provided; deferred compilation errors from
    /// [`EngineBuilder::model`]; [`ServeError::DimensionMismatch`] when
    /// the pipeline's output width disagrees with the hierarchy.
    pub fn build(self) -> Result<Engine, ServeError> {
        let pipeline = self
            .pipeline
            .ok_or(ServeError::MissingComponent("pipeline"))?;
        let arena = self.model.ok_or(ServeError::MissingComponent("model"))??;
        let state = self
            .detector
            .ok_or(ServeError::MissingComponent("detector"))?;
        if pipeline.output_dim() != arena.dim() {
            return Err(ServeError::DimensionMismatch {
                expected: arena.dim(),
                found: pipeline.output_dim(),
            });
        }
        let (k_sigma, warmup) = self.stream.unwrap_or((DEFAULT_K_SIGMA, DEFAULT_WARMUP));
        let detector = HybridGhsomDetector::from_state(arena, state);
        Ok(Engine {
            pipeline,
            stream: StreamingDetector::new(detector, k_sigma, warmup),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghsom_core::GhsomConfig;

    fn fit_parts(seed: u64) -> (KddPipeline, HybridGhsomDetector, Dataset, Dataset) {
        let (train, test) = traffic::synth::kdd_train_test(400, 120, seed).unwrap();
        let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
        let x = pipeline.transform_dataset(&train).unwrap();
        let labels: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
        let model = GhsomModel::train(
            &GhsomConfig::default().with_epochs(2, 1).with_seed(seed),
            &x,
        )
        .unwrap();
        let detector = HybridGhsomDetector::fit(model, &x, &labels, 0.99).unwrap();
        (pipeline, detector, train, test)
    }

    fn engine(seed: u64) -> (Engine, Dataset) {
        let (train, test) = traffic::synth::kdd_train_test(400, 120, seed).unwrap();
        let config = EngineConfig::default()
            .with_ghsom(GhsomConfig::default().with_epochs(2, 1).with_seed(seed));
        (Engine::fit(&config, &train).unwrap(), test)
    }

    #[test]
    fn fit_builds_a_consistent_stack() {
        let (engine, test) = engine(11);
        assert_eq!(engine.dim(), engine.pipeline().output_dim());
        assert_eq!(engine.dim(), engine.compiled().dim());
        assert!(engine.threshold().is_finite());
        // Facade verdicts agree with the hand-wired path.
        for rec in test.iter().take(30) {
            let x = engine.pipeline().transform(rec).unwrap();
            let direct = engine.detector().verdict(&x).unwrap();
            assert_eq!(engine.score_record(rec).unwrap(), direct);
        }
    }

    #[test]
    fn batched_scoring_matches_single_records() {
        let (engine, test) = engine(12);
        let batch = engine.score_records(test.records()).unwrap();
        assert_eq!(batch.len(), test.len());
        for (rec, v) in test.iter().zip(&batch) {
            assert_eq!(engine.score_record(rec).unwrap(), *v);
        }
        assert!(engine.score_records(&[]).unwrap().is_empty());
    }

    #[test]
    fn observe_tracks_stream_state() {
        let (engine, test) = engine(13);
        assert_eq!(engine.stream_stats().seen, 0);
        let batch = engine.observe_records(test.records()).unwrap();
        assert_eq!(batch.len(), test.len());
        let stats = engine.stream_stats();
        assert_eq!(stats.seen, test.len() as u64);
        assert_eq!(stats.seen, stats.tracked + stats.flagged);
        engine.reset_stream();
        assert_eq!(engine.stream_stats().seen, 0);
        engine.observe(&test.records()[0]).unwrap();
        assert_eq!(engine.stream_stats().seen, 1);
        assert!(engine.observe_records(&[]).unwrap().is_empty());
    }

    #[test]
    fn builder_assembles_from_fitted_parts() {
        let (pipeline, detector, _, test) = fit_parts(21);
        let engine = Engine::builder()
            .pipeline(pipeline)
            .model(detector.labeled().model())
            .detector(&detector)
            .stream(3.0, 50)
            .build()
            .unwrap();
        assert_eq!(engine.stream.k_sigma(), 3.0);
        assert_eq!(engine.stream.warmup(), 50);
        // Verdicts agree with the tree-backed detector bit-for-bit.
        for rec in test.iter().take(30) {
            let x = engine.pipeline().transform(rec).unwrap();
            let tree = detector.verdict(&x).unwrap();
            let served = engine.score_record(rec).unwrap();
            assert_eq!(tree.anomalous, served.anomalous);
            assert_eq!(tree.category, served.category);
            assert_eq!(tree.score.to_bits(), served.score.to_bits());
        }
    }

    #[test]
    fn builder_reports_missing_components() {
        assert_eq!(
            Engine::builder().build().unwrap_err(),
            ServeError::MissingComponent("pipeline")
        );
        let (pipeline, detector, _, _) = fit_parts(22);
        assert_eq!(
            Engine::builder()
                .pipeline(pipeline.clone())
                .build()
                .unwrap_err(),
            ServeError::MissingComponent("model")
        );
        assert_eq!(
            Engine::builder()
                .pipeline(pipeline)
                .model(detector.labeled().model())
                .build()
                .unwrap_err(),
            ServeError::MissingComponent("detector")
        );
    }

    #[test]
    fn builder_rejects_mismatched_pipeline_and_model() {
        let (_, detector, train, _) = fit_parts(23);
        // A continuous-only pipeline has a different output width than
        // the model trained on the full feature space.
        let narrow =
            KddPipeline::fit(&PipelineConfig::default().with_categoricals(false), &train).unwrap();
        assert!(matches!(
            Engine::builder()
                .pipeline(narrow)
                .model(detector.labeled().model())
                .detector(&detector)
                .build()
                .unwrap_err(),
            ServeError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn bundle_roundtrip_is_bit_identical() {
        let (engine, test) = engine(31);
        let bundle = engine.to_bytes();
        let reloaded = Engine::from_bytes(&bundle).unwrap();
        // Re-serialization is byte-identical (stable encoders end to end).
        assert_eq!(reloaded.to_bytes(), bundle);
        // And verdicts agree bit-for-bit with no training objects around.
        for rec in test.iter() {
            let a = engine.score_record(rec).unwrap();
            let b = reloaded.score_record(rec).unwrap();
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            assert_eq!(a.anomalous, b.anomalous);
            assert_eq!(a.category, b.category);
        }
        assert_eq!(reloaded.stream.k_sigma(), engine.stream.k_sigma());
        assert_eq!(reloaded.stream.warmup(), engine.stream.warmup());
    }

    #[test]
    fn bundle_persists_through_the_filesystem() {
        let (engine, test) = engine(32);
        let path = std::env::temp_dir().join("ghsom_engine_bundle_test.bundle");
        engine.save(&path).unwrap();
        let reloaded = Engine::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for rec in test.iter().take(40) {
            assert_eq!(
                engine.score_record(rec).unwrap(),
                reloaded.score_record(rec).unwrap()
            );
        }
    }

    #[test]
    fn model_only_snapshots_are_version_gated() {
        let (engine, _) = engine(33);
        // A model-only snapshot (version 1) is not a bundle.
        let model_only = engine.compiled().to_bytes();
        assert_eq!(
            Engine::from_bytes(&model_only).unwrap_err(),
            ServeError::NotABundle { version: 1 }
        );
        // …but the arena decoder accepts BOTH versions, including the
        // bundle with its extra sections.
        let bundle = engine.to_bytes();
        let arena = CompiledGhsom::from_bytes(&bundle).unwrap();
        assert_eq!(&arena, engine.compiled());
        assert_eq!(CompiledGhsom::from_bytes(&model_only).unwrap(), arena);
    }

    #[test]
    fn hostile_bundles_are_typed_errors() {
        let (engine, _) = engine(34);
        let bundle = engine.to_bytes();
        // Truncation at assorted lengths.
        for cut in [0, 8, 31, bundle.len() / 2, bundle.len() - 1] {
            assert!(matches!(
                Engine::from_bytes(&bundle[..cut]).unwrap_err(),
                ServeError::Truncated { .. }
            ));
        }
        // A payload bit flip trips the checksum.
        let mut corrupt = bundle.clone();
        let at = corrupt.len() - 5;
        corrupt[at] ^= 0x10;
        assert!(matches!(
            Engine::from_bytes(&corrupt).unwrap_err(),
            ServeError::ChecksumMismatch { .. }
        ));
        // Unknown versions are rejected with the newest supported one.
        let mut future = bundle.clone();
        future[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            Engine::from_bytes(&future).unwrap_err(),
            ServeError::UnsupportedVersion {
                found: 9,
                supported: snapshot::BUNDLE_VERSION
            }
        );
    }

    #[test]
    fn garbage_json_sections_are_typed_errors() {
        let (engine, _) = engine(35);
        // Re-seal a bundle whose DETECTOR section is not JSON: the
        // checksum passes, the section decode must fail typed.
        let mut sections = engine.compiled().arena_sections();
        let pipeline_json = serde_json::to_string(engine.pipeline()).unwrap();
        sections.push((SEC_PIPELINE, pipeline_json.into_bytes()));
        sections.push((SEC_DETECTOR, b"not json at all".to_vec()));
        let evil = snapshot::seal(snapshot::BUNDLE_VERSION, &sections);
        assert!(matches!(
            Engine::from_bytes(&evil).unwrap_err(),
            ServeError::Malformed(_)
        ));
        // A bundle version without the bundle sections is malformed.
        let bare = snapshot::seal(
            snapshot::BUNDLE_VERSION,
            &engine.compiled().arena_sections(),
        );
        assert!(matches!(
            Engine::from_bytes(&bare).unwrap_err(),
            ServeError::Malformed(_)
        ));
    }

    #[test]
    fn non_finite_records_are_typed_errors_on_every_serving_path() {
        // The default pipeline's log1p+min-max clamps NaN away, so fit
        // with z-score scaling, where a NaN field survives the transform.
        let (train, test) = traffic::synth::kdd_train_test(400, 10, 41).unwrap();
        let config = EngineConfig::default()
            .with_pipeline(PipelineConfig::default().with_scaling(featurize::ScalingKind::ZScore))
            .with_ghsom(GhsomConfig::default().with_epochs(2, 1).with_seed(41));
        let engine = Engine::fit(&config, &train).unwrap();
        let mut evil = test.records()[0].clone();
        evil.duration = f64::NAN;
        assert!(matches!(
            engine.score_record(&evil).unwrap_err(),
            ServeError::Malformed(_)
        ));
        assert!(matches!(
            engine.score_records(&[test.records()[0].clone(), evil.clone()]),
            Err(ServeError::Malformed(_))
        ));
        assert!(matches!(
            engine.observe(&evil).unwrap_err(),
            ServeError::Malformed(_)
        ));
        assert!(matches!(
            engine.observe_records(std::slice::from_ref(&evil)),
            Err(ServeError::Malformed(_))
        ));
        // The streaming baseline was never touched by the rejected record.
        assert_eq!(engine.stream_stats().seen, 0);
        // …and the paths still serve clean records afterwards.
        engine.score_record(&test.records()[0]).unwrap();
    }

    #[test]
    fn stream_section_roundtrips_the_live_baseline() {
        let (engine, test) = engine(51);
        engine.observe_records(test.records()).unwrap();
        let state = engine.stream_state();
        assert!(state.seen > 0);

        // Plain bundles stay stream-free (and therefore byte-stable
        // across sessions)…
        let plain = Engine::from_bytes(&engine.to_bytes()).unwrap();
        assert_eq!(plain.stream_state(), StreamState::default());

        // …while the with-stream artifact resumes bit-identically, and
        // re-serializes byte-identically.
        let bundle = engine.to_bytes_with_stream();
        let resumed = Engine::from_bytes(&bundle).unwrap();
        assert_eq!(resumed.stream_state(), state);
        assert_eq!(resumed.to_bytes_with_stream(), bundle);

        // Filesystem path (before the engine's live state moves on).
        let path = std::env::temp_dir().join("ghsom_engine_stream_state.bundle");
        engine.save_with_stream(&path).unwrap();
        let reloaded = Engine::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(reloaded.stream_state(), state);

        // Future streaming verdicts continue bit-identically too.
        for rec in test.iter().take(20) {
            let a = engine.observe(rec).unwrap();
            let b = resumed.observe(rec).unwrap();
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            assert_eq!(a.threshold.to_bits(), b.threshold.to_bits());
            assert_eq!(a.anomalous, b.anomalous);
        }
    }

    /// Re-seals bundles with hostile STREAM sections (the checksum is
    /// recomputed, so only the section decode can reject them): every
    /// variant must be a typed error, and none may leave a partially
    /// initialized engine behind.
    #[test]
    fn hostile_stream_sections_are_typed_errors() {
        let (engine, _) = engine(52);
        let reseal = |stream_payload: &[u8]| -> Vec<u8> {
            let mut sections = engine.compiled().arena_sections();
            let pipeline_json = serde_json::to_string(engine.pipeline()).unwrap();
            sections.push((SEC_PIPELINE, pipeline_json.into_bytes()));
            let detector_json = serde_json::to_string(&DetectorSection {
                detector: engine.detector().state(),
                k_sigma: engine.stream.k_sigma(),
                warmup: engine.stream.warmup(),
            })
            .unwrap();
            sections.push((SEC_DETECTOR, detector_json.into_bytes()));
            sections.push((SEC_STREAM, stream_payload.to_vec()));
            snapshot::seal(snapshot::BUNDLE_VERSION, &sections)
        };

        let good = serde_json::to_string(&engine.stream_state()).unwrap();
        assert!(Engine::from_bytes(&reseal(good.as_bytes())).is_ok());

        // Truncated JSON.
        assert!(matches!(
            Engine::from_bytes(&reseal(&good.as_bytes()[..good.len() / 2])).unwrap_err(),
            ServeError::Malformed(_)
        ));
        // Not UTF-8.
        assert!(matches!(
            Engine::from_bytes(&reseal(&[0xff, 0xfe, 0x00])).unwrap_err(),
            ServeError::Malformed(_)
        ));
        // Non-finite mean (JSON has no NaN literal; an overflowing
        // exponent parses to infinity and must be caught downstream).
        let inf_mean = br#"{"seen":3,"flagged":0,"tracked":3,"mean":1e999,"m2":0.0}"#;
        assert!(matches!(
            Engine::from_bytes(&reseal(inf_mean)).unwrap_err(),
            ServeError::StreamState(_) | ServeError::Malformed(_)
        ));
        // Negative count: fails the u64 decode, typed Malformed.
        let neg_count = br#"{"seen":3,"flagged":0,"tracked":-3,"mean":0.5,"m2":0.1}"#;
        assert!(matches!(
            Engine::from_bytes(&reseal(neg_count)).unwrap_err(),
            ServeError::Malformed(_)
        ));
        // Negative variance accumulator.
        let neg_m2 = br#"{"seen":3,"flagged":0,"tracked":3,"mean":0.5,"m2":-1.0}"#;
        assert!(matches!(
            Engine::from_bytes(&reseal(neg_m2)).unwrap_err(),
            ServeError::StreamState(_)
        ));
        // Inconsistent counters (tracked + flagged != seen).
        let torn = br#"{"seen":10,"flagged":1,"tracked":3,"mean":0.5,"m2":0.1}"#;
        assert!(matches!(
            Engine::from_bytes(&reseal(torn)).unwrap_err(),
            ServeError::StreamState(_)
        ));
    }

    #[test]
    fn from_view_matches_from_bytes_without_revalidating() {
        let (engine, test) = engine(53);
        engine.observe_records(&test.records()[..64]).unwrap();
        let bundle = engine.to_bytes_with_stream();
        // 8-byte-aligned copy (see snapshot::tests for the technique).
        let mut buf = vec![0u8; bundle.len() + 8];
        let off = buf.as_ptr().align_offset(8);
        buf[off..off + bundle.len()].copy_from_slice(&bundle);
        let view = SnapshotView::parse(&buf[off..off + bundle.len()]).unwrap();
        assert!(view.is_bundle());
        let via_view = Engine::from_view(&view).unwrap();
        let via_bytes = Engine::from_bytes(&bundle).unwrap();
        assert_eq!(via_view.stream_state(), via_bytes.stream_state());
        for rec in test.iter().take(30) {
            assert_eq!(
                via_view.score_record(rec).unwrap(),
                via_bytes.score_record(rec).unwrap()
            );
        }
        // A model-only view is version-gated like the byte path.
        let model_only = engine.compiled().to_bytes();
        let mut buf = vec![0u8; model_only.len() + 8];
        let off = buf.as_ptr().align_offset(8);
        buf[off..off + model_only.len()].copy_from_slice(&model_only);
        let view = SnapshotView::parse(&buf[off..off + model_only.len()]).unwrap();
        assert!(!view.is_bundle());
        assert_eq!(view.version(), snapshot::VERSION);
        assert_eq!(
            Engine::from_view(&view).unwrap_err(),
            ServeError::NotABundle { version: 1 }
        );
    }

    #[test]
    fn config_setters_chain() {
        let config = EngineConfig::default()
            .with_percentile(0.95)
            .with_stream(2.5, 64)
            .with_pipeline(PipelineConfig::default().with_categoricals(false))
            .with_ghsom(GhsomConfig::default().with_seed(5));
        assert_eq!(config.percentile, 0.95);
        assert_eq!(config.k_sigma, 2.5);
        assert_eq!(config.warmup, 64);
        assert!(!config.pipeline.include_categoricals);
        assert_eq!(config.ghsom.seed, 5);
    }
}
