//! The compiled inference arena: a flattened, immutable GHSOM.
//!
//! See the [crate-level docs](crate) for the full layout description. In
//! short: every map's codebook is packed into **one** contiguous
//! group-tiled transposed arena (`wt`, the exact [`mathkit::batch::pack_codebook`]
//! layout, concatenated map after map), the proxy half-norms
//! `‖w‖²/2` are baked in at compile time (`wn_half`), and all tree
//! metadata — shapes, depths, parent/child links, per-unit training stats —
//! lives in flat index tables addressed by `(node, unit)` through two
//! prefix-sum offset tables. Projection is a pure arena walk: no node
//! structs, no pointer chasing, no lazy norm-cache checks.

use std::borrow::Cow;
use std::collections::BTreeMap;

use ghsom_core::{GhsomError, GhsomModel, PathStep, Projection, Scorer};
use mathkit::{batch, parallel, Matrix, MatrixView, Metric};

use crate::ServeError;

/// Sentinel for "no link" in the `u32` parent/child tables.
pub(crate) const NO_LINK: u32 = u32::MAX;

/// Samples per parallel work chunk in the batched walk — matches the tree
/// engine's chunking so thread counts never change results (they cannot
/// anyway: per-sample results are independent).
const WALK_CHUNK: usize = 512;

/// A trained GHSOM compiled for serving: immutable, flat, contiguous.
///
/// Construct with [`CompiledGhsom::from_model`] (or [`Compile::compile`]),
/// persist with the binary snapshot API in [`crate::snapshot`].
/// Projections are **bit-identical** to the training-time
/// [`GhsomModel`] the arena was compiled from — leaf keys and quantization
/// errors computed on either representation are interchangeable.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledGhsom {
    pub(crate) dim: usize,
    pub(crate) mqe0: f64,
    pub(crate) mean: Vec<f64>,
    /// Grid rows per map.
    pub(crate) rows: Vec<u32>,
    /// Grid columns per map.
    pub(crate) cols: Vec<u32>,
    /// Hierarchy depth per map (root = 1).
    pub(crate) depth: Vec<u32>,
    /// Parent node per map ([`NO_LINK`] for the root).
    pub(crate) parent_node: Vec<u32>,
    /// Parent unit per map ([`NO_LINK`] for the root).
    pub(crate) parent_unit: Vec<u32>,
    /// Global-unit prefix sums: map `m` owns global units
    /// `unit_off[m]..unit_off[m + 1]`.
    pub(crate) unit_off: Vec<u64>,
    /// Arena prefix sums (in `f64` elements): map `m`'s packed codebook is
    /// `wt[wt_off[m]..wt_off[m + 1]]`.
    pub(crate) wt_off: Vec<u64>,
    /// Child node per global unit ([`NO_LINK`] for leaf units).
    pub(crate) children: Vec<u32>,
    /// Training hits per global unit.
    pub(crate) unit_hits: Vec<u64>,
    /// Training mean quantization error per global unit.
    pub(crate) unit_mqe: Vec<f64>,
    /// Precomputed `‖w‖²/2` per global unit, **ascending within each
    /// map** (the arena stores codebooks norm-sorted for pruned search).
    pub(crate) wn_half: Vec<f64>,
    /// Packed position → original unit index within its map.
    pub(crate) perm: Vec<u32>,
    /// All codebooks, group-tiled transposed, concatenated in node order —
    /// each map's units reordered ascending by norm (see `perm`).
    pub(crate) wt: Vec<f64>,
    /// Lazily-gathered row-major weights (original unit order) for cold
    /// consumers that scan prototypes (nearest-labelled fallbacks,
    /// explanations). Not part of the snapshot; rebuilt on first use.
    pub(crate) row_cache: RowWeightsCache,
}

/// Interior-mutable holder for the row-major weights gather.
///
/// Invisible to value semantics: compares equal to everything (so derived
/// `PartialEq` on [`CompiledGhsom`] ignores it) and is skipped by the
/// snapshot encoder — a reloaded arena rebuilds it on first use.
#[derive(Debug, Default)]
pub(crate) struct RowWeightsCache(std::sync::OnceLock<Vec<f64>>);

impl Clone for RowWeightsCache {
    fn clone(&self) -> Self {
        match self.0.get() {
            Some(data) => {
                let lock = std::sync::OnceLock::new();
                let _ = lock.set(data.clone());
                RowWeightsCache(lock)
            }
            None => RowWeightsCache::default(),
        }
    }
}

impl PartialEq for RowWeightsCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// Borrowed view of the arena tables — the walk code is written once
/// against this, shared by [`CompiledGhsom`] (owned vectors) and
/// [`crate::snapshot::SnapshotView`] (zero-copy mapped bytes).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArenaRef<'a> {
    pub dim: usize,
    pub mqe0: f64,
    pub mean: &'a [f64],
    pub rows: &'a [u32],
    pub cols: &'a [u32],
    pub depth: &'a [u32],
    pub parent_node: &'a [u32],
    pub parent_unit: &'a [u32],
    pub unit_off: &'a [u64],
    pub wt_off: &'a [u64],
    pub children: &'a [u32],
    pub unit_hits: &'a [u64],
    pub unit_mqe: &'a [f64],
    pub wn_half: &'a [f64],
    pub perm: &'a [u32],
    pub wt: &'a [f64],
}

impl<'a> ArenaRef<'a> {
    pub fn map_count(&self) -> usize {
        self.rows.len()
    }

    pub fn total_units(&self) -> usize {
        self.children.len()
    }

    /// Number of units in map `node`.
    pub fn units(&self, node: usize) -> usize {
        (self.unit_off[node + 1] - self.unit_off[node]) as usize
    }

    /// Proxy half-norms of map `node` (packed = norm-ascending order).
    fn wn_half_of(&self, node: usize) -> &'a [f64] {
        &self.wn_half[self.unit_off[node] as usize..self.unit_off[node + 1] as usize]
    }

    /// Packed-position → original-unit permutation of map `node`.
    fn perm_of(&self, node: usize) -> &'a [u32] {
        &self.perm[self.unit_off[node] as usize..self.unit_off[node + 1] as usize]
    }

    /// Packed codebook slab of map `node`.
    fn wt_of(&self, node: usize) -> &'a [f64] {
        &self.wt[self.wt_off[node] as usize..self.wt_off[node + 1] as usize]
    }

    pub fn child_of(&self, node: usize, unit: usize) -> Option<usize> {
        assert!(unit < self.units(node), "unit index out of bounds");
        match self.children[self.unit_off[node] as usize + unit] {
            NO_LINK => None,
            c => Some(c as usize),
        }
    }

    /// Gathers the row-major weight vector of `(node, unit)` back out of
    /// the norm-sorted group-tiled layout (`unit` is the original index;
    /// its packed position comes from the permutation table).
    pub fn prototype(&self, node: usize, unit: usize) -> Vec<f64> {
        assert!(unit < self.units(node), "unit index out of bounds");
        let packed = self
            .perm_of(node)
            .iter()
            .position(|&u| u as usize == unit)
            .expect("validated permutations are total");
        let slab = self.wt_of(node);
        let (g, k) = (packed / batch::GROUP, packed % batch::GROUP);
        (0..self.dim)
            .map(|j| slab[g * (self.dim * batch::GROUP) + j * batch::GROUP + k])
            .collect()
    }

    /// Gathers a whole map's codebook back to row-major **original** unit
    /// order in one pass — the bulk form of [`ArenaRef::prototype`].
    pub fn map_weights(&self, node: usize) -> Vec<f64> {
        let units = self.units(node);
        let dim = self.dim;
        let slab = self.wt_of(node);
        let perm = self.perm_of(node);
        let mut out = vec![0.0; units * dim];
        for (packed, &orig) in perm.iter().enumerate() {
            let (g, k) = (packed / batch::GROUP, packed % batch::GROUP);
            let row = &mut out[orig as usize * dim..(orig as usize + 1) * dim];
            for (j, v) in row.iter_mut().enumerate() {
                *v = slab[g * (dim * batch::GROUP) + j * batch::GROUP + k];
            }
        }
        out
    }

    fn check_dim(&self, found: usize) -> Result<(), ServeError> {
        if found != self.dim {
            return Err(ServeError::DimensionMismatch {
                expected: self.dim,
                found,
            });
        }
        Ok(())
    }

    /// Projects one sample root→leaf through the norm-pruned search.
    /// Winners, tie-breaking and distance bits are identical to the tree
    /// walker's exhaustive scan (see [`batch::gram_nearest_block_pruned`]).
    pub fn project_one(&self, x: &[f64]) -> Result<Projection, ServeError> {
        self.check_dim(x.len())?;
        let mut steps = Vec::new();
        let mut node = 0usize;
        let mut nearest = Vec::with_capacity(1);
        loop {
            nearest.clear();
            batch::gram_nearest_block_pruned(
                x,
                self.dim,
                self.wt_of(node),
                self.wn_half_of(node),
                self.perm_of(node),
                &mut nearest,
            );
            let n = nearest[0];
            steps.push(PathStep {
                node,
                unit: n.unit,
                // `Metric::Euclidean.finalize` on an already-clamped d².
                distance: n.d2.max(0.0).sqrt(),
            });
            match self.children[self.unit_off[node] as usize + n.unit] {
                NO_LINK => break,
                c => node = c as usize,
            }
        }
        Ok(Projection::from_steps(steps))
    }

    /// Level-by-level batched walk: groups of samples sharing a map go
    /// through one norm-pruned BMU pass
    /// ([`batch::gram_nearest_block_pruned`], chunk-parallel under the
    /// `rayon` feature), then split among that map's children. `visit`
    /// sees every `(sample, step)` hop, root first per sample.
    ///
    /// Unlike the tree walker there is no per-map `Matrix` materialization:
    /// the root level runs directly on the input's flat buffer and deeper
    /// levels gather rows into one reused scratch vector. The input is a
    /// **borrowed** [`MatrixView`], so callers that already hold samples
    /// contiguously (the reused feature-transform buffer of the fused
    /// serving path) never copy them into an owned matrix.
    fn walk<F: FnMut(usize, PathStep)>(
        &self,
        data: MatrixView<'_>,
        mut visit: F,
    ) -> Result<(), ServeError> {
        if data.rows() == 0 {
            return Ok(());
        }
        self.check_dim(data.cols())?;
        let dim = self.dim;
        let n = data.rows();
        let mut frontier: Vec<(usize, Vec<usize>)> = vec![(0, (0..n).collect())];
        let mut gather: Vec<f64> = Vec::new();
        while !frontier.is_empty() {
            let mut next: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for (node, samples) in &frontier {
                let node = *node;
                let rows: &[f64] = if samples.len() == n {
                    // The root level covers every row in order — serve it
                    // straight from the input buffer.
                    data.as_slice()
                } else {
                    gather.clear();
                    gather.reserve(samples.len() * dim);
                    for &s in samples {
                        gather.extend_from_slice(data.row(s));
                    }
                    &gather
                };
                let wt = self.wt_of(node);
                let wnh = self.wn_half_of(node);
                let perm = self.perm_of(node);
                let ns = samples.len();
                let chunks = parallel::par_map_chunks(ns, WALK_CHUNK, |r| {
                    let mut out = Vec::with_capacity(r.len());
                    batch::gram_nearest_block_pruned(
                        &rows[r.start * dim..r.end * dim],
                        dim,
                        wt,
                        wnh,
                        perm,
                        &mut out,
                    );
                    out
                });
                let base = self.unit_off[node] as usize;
                for (&sample, m) in samples.iter().zip(chunks.iter().flatten()) {
                    visit(
                        sample,
                        PathStep {
                            node,
                            unit: m.unit,
                            distance: m.d2.max(0.0).sqrt(),
                        },
                    );
                    match self.children[base + m.unit] {
                        NO_LINK => {}
                        c => next.entry(c as usize).or_default().push(sample),
                    }
                }
            }
            frontier = next.into_iter().collect();
        }
        Ok(())
    }

    pub fn project_batch(&self, data: MatrixView<'_>) -> Result<Vec<Projection>, ServeError> {
        if data.rows() == 0 {
            return Ok(Vec::new());
        }
        let mut steps: Vec<Vec<PathStep>> = vec![Vec::new(); data.rows()];
        self.walk(data, |sample, step| steps[sample].push(step))?;
        Ok(steps.into_iter().map(Projection::from_steps).collect())
    }

    /// Leaf quantization error per row without materializing projections —
    /// the detectors' hot bulk-scoring path.
    pub fn score_all(&self, data: MatrixView<'_>) -> Result<Vec<f64>, ServeError> {
        let mut qe = vec![0.0; data.rows()];
        // Per sample the walk visits hops root→leaf, so the last write is
        // the leaf QE.
        self.walk(data, |sample, step| qe[sample] = step.distance)?;
        Ok(qe)
    }

    /// Structural invariants every arena must satisfy before it is walked —
    /// enforced on compile *and* on snapshot decode, so corrupt or hostile
    /// bytes can never drive the walker out of bounds or into a cycle.
    pub fn validate(&self) -> Result<(), ServeError> {
        let n = self.map_count();
        if n == 0 {
            return Err(ServeError::Malformed("empty hierarchy"));
        }
        if self.dim == 0 || self.mean.len() != self.dim {
            return Err(ServeError::Malformed("mean length disagrees with dim"));
        }
        if !(self.mqe0.is_finite() && self.mqe0 >= 0.0) {
            return Err(ServeError::Malformed("mqe0 must be finite and >= 0"));
        }
        let same_len = self.cols.len() == n
            && self.depth.len() == n
            && self.parent_node.len() == n
            && self.parent_unit.len() == n
            && self.unit_off.len() == n + 1
            && self.wt_off.len() == n + 1;
        if !same_len {
            return Err(ServeError::Malformed("per-map tables disagree on length"));
        }
        let total = self.total_units();
        if self.unit_hits.len() != total
            || self.unit_mqe.len() != total
            || self.wn_half.len() != total
            || self.perm.len() != total
        {
            return Err(ServeError::Malformed("per-unit tables disagree on length"));
        }
        if self.unit_off[0] != 0 || self.wt_off[0] != 0 {
            return Err(ServeError::Malformed("offset tables must start at 0"));
        }
        if self.unit_off[n] as usize != total {
            return Err(ServeError::Malformed(
                "unit offsets disagree with the unit-table length",
            ));
        }
        if self.wt_off[n] as usize != self.wt.len() {
            return Err(ServeError::Malformed(
                "arena offsets disagree with the arena length",
            ));
        }
        if self.parent_node[0] != NO_LINK || self.depth[0] != 1 {
            return Err(ServeError::Malformed("node 0 must be the depth-1 root"));
        }
        for m in 0..n {
            if self.unit_off[m] > self.unit_off[m + 1] || self.wt_off[m] > self.wt_off[m + 1] {
                return Err(ServeError::Malformed("offset tables must be monotone"));
            }
            let units = self.units(m);
            if units == 0 {
                return Err(ServeError::Malformed("maps cannot be empty"));
            }
            if (self.rows[m] as u64).checked_mul(self.cols[m] as u64) != Some(units as u64) {
                return Err(ServeError::Malformed(
                    "grid shape disagrees with unit count",
                ));
            }
            let expect = batch::packed_len(units, self.dim) as u64;
            if self.wt_off[m + 1] - self.wt_off[m] != expect {
                return Err(ServeError::Malformed(
                    "packed slab length disagrees with unit count",
                ));
            }
            // The pruned search relies on ascending half-norms and a total
            // packed→original permutation per map; a snapshot violating
            // either would silently misroute records, so reject it here.
            let base = self.unit_off[m] as usize;
            let wnh = &self.wn_half[base..base + units];
            // NaN half-norms are caught by the finiteness check below.
            if wnh.windows(2).any(|w| w[0] > w[1]) {
                return Err(ServeError::Malformed(
                    "half-norms must ascend within each map",
                ));
            }
            let mut seen = vec![false; units];
            for &p in &self.perm[base..base + units] {
                if (p as usize) >= units || seen[p as usize] {
                    return Err(ServeError::Malformed(
                        "perm must be a permutation of the map's units",
                    ));
                }
                seen[p as usize] = true;
            }
            if m > 0 {
                let (p, pu) = (self.parent_node[m], self.parent_unit[m]);
                let parent_ok = (p as usize) < m
                    && (pu as usize) < self.units(p as usize)
                    && self.children[self.unit_off[p as usize] as usize + pu as usize] == m as u32
                    && self.depth[m] == self.depth[p as usize] + 1;
                if !parent_ok {
                    return Err(ServeError::Malformed(
                        "parent link must be mirrored by the parent at depth + 1",
                    ));
                }
            }
            for u in 0..units {
                let c = self.children[self.unit_off[m] as usize + u];
                if c == NO_LINK {
                    continue;
                }
                // Child links must point strictly forward — this is what
                // guarantees every walk terminates.
                let ok = (c as usize) > m
                    && (c as usize) < n
                    && self.parent_node[c as usize] == m as u32
                    && self.parent_unit[c as usize] == u as u32;
                if !ok {
                    return Err(ServeError::Malformed(
                        "child links must point forward to nodes that link back",
                    ));
                }
            }
        }
        for v in self.wt.iter().chain(self.wn_half).chain(self.unit_mqe) {
            if !v.is_finite() {
                return Err(ServeError::Malformed("arena values must be finite"));
            }
        }
        Ok(())
    }
}

impl CompiledGhsom {
    /// The borrowed-table view the walk code runs on.
    pub(crate) fn arena(&self) -> ArenaRef<'_> {
        ArenaRef {
            dim: self.dim,
            mqe0: self.mqe0,
            mean: &self.mean,
            rows: &self.rows,
            cols: &self.cols,
            depth: &self.depth,
            parent_node: &self.parent_node,
            parent_unit: &self.parent_unit,
            unit_off: &self.unit_off,
            wt_off: &self.wt_off,
            children: &self.children,
            unit_hits: &self.unit_hits,
            unit_mqe: &self.unit_mqe,
            wn_half: &self.wn_half,
            perm: &self.perm,
            wt: &self.wt,
        }
    }

    /// Compiles a trained tree model into the flat serving arena.
    ///
    /// The node numbering (breadth-first creation order, root = 0) and all
    /// `(node, unit)` keys are preserved, and projections are bit-identical
    /// to the source model's — detectors fitted against the tree serve
    /// unchanged on the arena.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnsupportedMetric`] when any map's BMU metric is not
    /// Euclidean (the arena bakes in Gram-trick half-norms);
    /// [`ServeError::Malformed`] when the hierarchy exceeds the snapshot
    /// index width (`u32` nodes/units).
    pub fn from_model(model: &GhsomModel) -> Result<Self, ServeError> {
        let n = model.map_count();
        if n >= NO_LINK as usize {
            return Err(ServeError::Malformed("too many maps for u32 node indices"));
        }
        let dim = model.dim();
        let mut out = CompiledGhsom {
            dim,
            mqe0: model.mqe0(),
            mean: model.layer0_mean().to_vec(),
            rows: Vec::with_capacity(n),
            cols: Vec::with_capacity(n),
            depth: Vec::with_capacity(n),
            parent_node: Vec::with_capacity(n),
            parent_unit: Vec::with_capacity(n),
            unit_off: Vec::with_capacity(n + 1),
            wt_off: Vec::with_capacity(n + 1),
            children: Vec::new(),
            unit_hits: Vec::new(),
            unit_mqe: Vec::new(),
            wn_half: Vec::new(),
            perm: Vec::new(),
            wt: Vec::new(),
            row_cache: RowWeightsCache::default(),
        };
        out.unit_off.push(0);
        out.wt_off.push(0);
        for node in model.nodes() {
            let som = node.som();
            if som.metric() != Metric::Euclidean {
                return Err(ServeError::UnsupportedMetric {
                    metric: som.metric().to_string(),
                });
            }
            let t = som.topology();
            out.rows.push(t.rows() as u32);
            out.cols.push(t.cols() as u32);
            out.depth.push(node.depth() as u32);
            let (pn, pu) = node
                .parent()
                .map_or((NO_LINK, NO_LINK), |(a, b)| (a as u32, b as u32));
            out.parent_node.push(pn);
            out.parent_unit.push(pu);
            for unit in 0..som.len() {
                out.children
                    .push(node.child_of_unit(unit).map_or(NO_LINK, |c| c as u32));
            }
            out.unit_hits
                .extend(node.unit_hits().iter().map(|&h| h as u64));
            out.unit_mqe.extend_from_slice(node.unit_mqe());
            // Non-finite weights would poison the norm sort and every
            // distance downstream; surface the typed error the arena
            // validator would raise rather than panicking mid-sort.
            if !som.weights().as_slice().iter().all(|v| v.is_finite()) {
                return Err(ServeError::Malformed("codebook weights must be finite"));
            }
            // Norm-sort the map's units for the pruned search (stable on
            // the original index so duplicate-weight ties stay ordered)
            // and pack the codebook in that order.
            let wn = batch::half_row_norms_sq(som.weights());
            let mut order: Vec<usize> = (0..som.len()).collect();
            order.sort_by(|&a, &b| {
                wn[a]
                    .partial_cmp(&wn[b])
                    .expect("finite norms checked above")
                    .then(a.cmp(&b))
            });
            let sorted =
                Matrix::from_rows(order.iter().map(|&u| som.unit_weight(u).to_vec()).collect())
                    .expect("rows of a finite codebook are valid");
            out.wn_half.extend(order.iter().map(|&u| wn[u]));
            out.perm.extend(order.iter().map(|&u| u as u32));
            out.wt.extend(batch::pack_codebook(&sorted));
            out.unit_off.push(out.children.len() as u64);
            out.wt_off.push(out.wt.len() as u64);
        }
        if out.children.len() >= NO_LINK as usize {
            return Err(ServeError::Malformed("too many units for u32 indices"));
        }
        out.arena().validate()?;
        Ok(out)
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of maps in the hierarchy.
    pub fn map_count(&self) -> usize {
        self.rows.len()
    }

    /// Total units across all maps.
    pub fn total_units(&self) -> usize {
        self.children.len()
    }

    /// The layer-0 virtual unit (training-data mean).
    pub fn layer0_mean(&self) -> &[f64] {
        &self.mean
    }

    /// The layer-0 mean quantization error mqe₀.
    pub fn mqe0(&self) -> f64 {
        self.mqe0
    }

    /// `(rows, cols)` grid shape of map `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn map_shape(&self, node: usize) -> (usize, usize) {
        (self.rows[node] as usize, self.cols[node] as usize)
    }

    /// Hierarchy depth of map `node` (root = 1).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn map_depth(&self, node: usize) -> usize {
        self.depth[node] as usize
    }

    /// `(parent node, parent unit)` of map `node`, `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn map_parent(&self, node: usize) -> Option<(usize, usize)> {
        if self.parent_node[node] == NO_LINK {
            None
        } else {
            Some((
                self.parent_node[node] as usize,
                self.parent_unit[node] as usize,
            ))
        }
    }

    /// Training hits of map `node`'s units.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn unit_hits(&self, node: usize) -> &[u64] {
        &self.unit_hits[self.unit_off[node] as usize..self.unit_off[node + 1] as usize]
    }

    /// Training mean quantization errors of map `node`'s units.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn unit_mqe(&self, node: usize) -> &[f64] {
        &self.unit_mqe[self.unit_off[node] as usize..self.unit_off[node + 1] as usize]
    }

    /// Projects one sample root→leaf (bit-identical to the source tree).
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on a sample of the wrong width.
    pub fn project(&self, x: &[f64]) -> Result<Projection, ServeError> {
        self.arena().project_one(x)
    }

    /// Projects every row of a matrix root→leaf — the bulk path, chunked
    /// and data-parallel under the `rayon` feature.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on samples of the wrong width.
    pub fn project_batch(&self, data: &Matrix) -> Result<Vec<Projection>, ServeError> {
        self.arena().project_batch(data.view())
    }

    /// [`CompiledGhsom::project_batch`] over a **borrowed** matrix view —
    /// the fused serving path's entry point: the walk runs directly on
    /// the caller's flat buffer (e.g. a reused
    /// `featurize::FeatureMatrix`), no owned copy.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on samples of the wrong width.
    pub fn project_batch_view(&self, data: MatrixView<'_>) -> Result<Vec<Projection>, ServeError> {
        self.arena().project_batch(data)
    }

    /// Leaf quantization error of every row without materializing
    /// projections — the hot detector scoring path.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on samples of the wrong width.
    pub fn score_all(&self, data: &Matrix) -> Result<Vec<f64>, ServeError> {
        self.arena().score_all(data.view())
    }

    /// [`CompiledGhsom::score_all`] over a borrowed matrix view (see
    /// [`CompiledGhsom::project_batch_view`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on samples of the wrong width.
    pub fn score_all_view(&self, data: MatrixView<'_>) -> Result<Vec<f64>, ServeError> {
        self.arena().score_all(data)
    }
}

impl Scorer for CompiledGhsom {
    fn dim(&self) -> usize {
        self.dim
    }

    fn map_count(&self) -> usize {
        CompiledGhsom::map_count(self)
    }

    fn map_units(&self, node: usize) -> usize {
        self.arena().units(node)
    }

    fn child_of(&self, node: usize, unit: usize) -> Option<usize> {
        self.arena().child_of(node, unit)
    }

    fn unit_prototype(&self, node: usize, unit: usize) -> Cow<'_, [f64]> {
        Cow::Owned(self.arena().prototype(node, unit))
    }

    fn map_weights(&self, node: usize) -> Cow<'_, [f64]> {
        // Gather the whole arena back to row-major once, then serve
        // borrowed slices — prototype scans (dead-unit fallbacks) are as
        // cheap as on the tree after the first touch.
        let rows = self.row_cache.0.get_or_init(|| {
            let mut out = vec![0.0; self.total_units() * self.dim];
            for m in 0..CompiledGhsom::map_count(self) {
                let base = self.unit_off[m] as usize * self.dim;
                let gathered = self.arena().map_weights(m);
                out[base..base + gathered.len()].copy_from_slice(&gathered);
            }
            out
        });
        let lo = self.unit_off[node] as usize * self.dim;
        let hi = self.unit_off[node + 1] as usize * self.dim;
        Cow::Borrowed(&rows[lo..hi])
    }

    fn project(&self, x: &[f64]) -> Result<Projection, GhsomError> {
        Ok(CompiledGhsom::project(self, x)?)
    }

    fn project_batch(&self, data: &Matrix) -> Result<Vec<Projection>, GhsomError> {
        Ok(CompiledGhsom::project_batch(self, data)?)
    }

    /// Zero-copy override: the arena walk runs on the borrowed buffer
    /// directly (the trait default would copy into an owned matrix).
    fn project_batch_view(&self, data: MatrixView<'_>) -> Result<Vec<Projection>, GhsomError> {
        Ok(CompiledGhsom::project_batch_view(self, data)?)
    }

    fn score_matrix(&self, data: &Matrix) -> Result<Vec<f64>, GhsomError> {
        Ok(CompiledGhsom::score_all(self, data)?)
    }

    fn score_matrix_view(&self, data: MatrixView<'_>) -> Result<Vec<f64>, GhsomError> {
        Ok(CompiledGhsom::score_all_view(self, data)?)
    }
}

/// Compilation bridge: `model.compile()` with this trait in scope (it is
/// in the umbrella crate's prelude).
pub trait Compile {
    /// Compiles this trained model into a [`CompiledGhsom`] serving arena.
    ///
    /// # Errors
    ///
    /// See [`CompiledGhsom::from_model`].
    fn compile(&self) -> Result<CompiledGhsom, ServeError>;
}

impl Compile for GhsomModel {
    fn compile(&self) -> Result<CompiledGhsom, ServeError> {
        CompiledGhsom::from_model(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghsom_core::GhsomConfig;

    fn hierarchical_data() -> Matrix {
        // Two macro-clusters each with micro-structure, deterministic.
        let rows: Vec<Vec<f64>> = (0..400)
            .map(|i| {
                let macro_c = if i % 2 == 0 { 0.0 } else { 10.0 };
                let micro = (i % 3) as f64 * 1.5;
                vec![
                    macro_c + micro + (i % 17) as f64 * 0.01,
                    macro_c + (i % 13) as f64 * 0.01,
                ]
            })
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    fn model() -> GhsomModel {
        GhsomModel::train(
            &GhsomConfig::default()
                .with_tau1(0.4)
                .with_tau2(0.05)
                .with_seed(3),
            &hierarchical_data(),
        )
        .unwrap()
    }

    #[test]
    fn compile_preserves_shape_metadata() {
        let m = model();
        let c = m.compile().unwrap();
        assert_eq!(c.dim(), m.dim());
        assert_eq!(c.map_count(), m.map_count());
        assert_eq!(c.total_units(), m.total_units());
        assert_eq!(c.mqe0(), m.mqe0());
        assert_eq!(c.layer0_mean(), m.layer0_mean());
        for (i, node) in m.nodes().iter().enumerate() {
            let t = node.som().topology();
            assert_eq!(c.map_shape(i), (t.rows(), t.cols()));
            assert_eq!(c.map_depth(i), node.depth());
            assert_eq!(c.map_parent(i), node.parent());
            assert_eq!(c.unit_mqe(i), node.unit_mqe());
            let hits: Vec<u64> = node.unit_hits().iter().map(|&h| h as u64).collect();
            assert_eq!(c.unit_hits(i), hits);
            for u in 0..node.som().len() {
                assert_eq!(
                    Scorer::child_of(&c, i, u),
                    node.child_of_unit(u),
                    "child link ({i}, {u})"
                );
                assert_eq!(
                    Scorer::unit_prototype(&c, i, u).as_ref(),
                    node.som().unit_weight(u),
                    "prototype ({i}, {u})"
                );
            }
        }
    }

    #[test]
    fn projections_are_bit_identical_to_the_tree() {
        let m = model();
        let c = m.compile().unwrap();
        let data = hierarchical_data();
        let tree = m.project_batch(&data).unwrap();
        let flat = c.project_batch(&data).unwrap();
        assert_eq!(tree.len(), flat.len());
        for (i, (t, f)) in tree.iter().zip(&flat).enumerate() {
            assert_eq!(t.steps().len(), f.steps().len(), "sample {i} path depth");
            for (a, b) in t.steps().iter().zip(f.steps()) {
                assert_eq!(a.node, b.node);
                assert_eq!(a.unit, b.unit);
                assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
        }
        // Single-sample path agrees with the batch path.
        for x in data.iter_rows().take(25) {
            let single = c.project(x).unwrap();
            let tree_single = m.project(x).unwrap();
            assert_eq!(single.leaf_key(), tree_single.leaf_key());
            assert_eq!(single.leaf_qe().to_bits(), tree_single.leaf_qe().to_bits());
        }
    }

    #[test]
    fn score_all_matches_score_matrix_bitwise() {
        let m = model();
        let c = m.compile().unwrap();
        let data = hierarchical_data();
        let tree = m.score_matrix(&data).unwrap();
        let flat = c.score_all(&data).unwrap();
        for (a, b) in tree.iter().zip(&flat) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dimension_mismatch_is_typed() {
        let c = model().compile().unwrap();
        assert_eq!(
            c.project(&[1.0]).unwrap_err(),
            ServeError::DimensionMismatch {
                expected: 2,
                found: 1
            }
        );
        let wide = Matrix::zeros(2, 5);
        assert!(matches!(
            c.score_all(&wide).unwrap_err(),
            ServeError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn non_euclidean_models_are_rejected() {
        let data = hierarchical_data();
        let m = GhsomModel::train(&GhsomConfig::default(), &data).unwrap();
        // Rebuild the root map with a Manhattan metric.
        let root = &m.nodes()[0];
        let manhattan = som::map::Som::from_parts(
            *root.som().topology(),
            root.som().weights().clone(),
            Metric::Manhattan,
        )
        .unwrap();
        let node = ghsom_core::MapNode::new(
            manhattan,
            1,
            None,
            vec![None; root.som().len()],
            root.unit_hits().to_vec(),
            root.unit_mqe().to_vec(),
        )
        .unwrap();
        let rebuilt = GhsomModel::from_parts(
            m.config().clone(),
            m.layer0_mean().to_vec(),
            m.mqe0(),
            vec![node],
        )
        .unwrap();
        assert!(matches!(
            rebuilt.compile().unwrap_err(),
            ServeError::UnsupportedMetric { .. }
        ));
    }

    #[test]
    fn non_finite_weights_are_a_typed_error_not_a_panic() {
        // Matrix::from_flat does not validate finiteness, so a NaN can
        // reach a codebook; compile must refuse with a typed error.
        let m = model();
        let root = &m.nodes()[0];
        let units = root.som().len();
        let mut flat = root.som().weights().as_slice().to_vec();
        flat[3] = f64::NAN;
        let poisoned = som::map::Som::from_parts(
            *root.som().topology(),
            Matrix::from_flat(units, 2, flat).unwrap(),
            Metric::Euclidean,
        )
        .unwrap();
        let node = ghsom_core::MapNode::new(
            poisoned,
            1,
            None,
            vec![None; units],
            root.unit_hits().to_vec(),
            root.unit_mqe().to_vec(),
        )
        .unwrap();
        let rebuilt = GhsomModel::from_parts(
            m.config().clone(),
            m.layer0_mean().to_vec(),
            m.mqe0(),
            vec![node],
        )
        .unwrap();
        assert_eq!(
            rebuilt.compile().unwrap_err(),
            ServeError::Malformed("codebook weights must be finite")
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let c = model().compile().unwrap();
        let empty = Matrix::zeros(0, 2);
        assert!(c.project_batch(&empty).unwrap().is_empty());
        assert!(c.score_all(&empty).unwrap().is_empty());
    }

    #[test]
    fn scorer_trait_serves_the_arena() {
        let m = model();
        let c = m.compile().unwrap();
        let scorer: &dyn Scorer = &c;
        let data = hierarchical_data();
        let scores = scorer.score_matrix(&data).unwrap();
        let tree_scores = m.score_matrix(&data).unwrap();
        for (a, b) in scores.iter().zip(&tree_scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
