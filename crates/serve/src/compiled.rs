//! The compiled inference arena: a flattened, immutable GHSOM.
//!
//! See the [crate-level docs](crate) for the full layout description. In
//! short: every map's codebook is packed into **one** contiguous
//! group-tiled transposed arena (`wt`, the exact [`mathkit::batch::pack_codebook`]
//! layout, concatenated map after map), the proxy half-norms
//! `‖w‖²/2` are baked in at compile time (`wn_half`), and all tree
//! metadata — shapes, depths, parent/child links, per-unit training stats —
//! lives in flat index tables addressed by `(node, unit)` through two
//! prefix-sum offset tables. Projection is a pure arena walk: no node
//! structs, no pointer chasing, no lazy norm-cache checks.

use std::borrow::Cow;
use std::collections::BTreeMap;

use ghsom_core::{GhsomError, GhsomModel, PathStep, Projection, Scorer};
use mathkit::{batch, parallel, Matrix, MatrixView, Metric};

use crate::ServeError;

/// Sentinel for "no link" in the `u32` parent/child tables.
pub(crate) const NO_LINK: u32 = u32::MAX;

/// Samples per parallel work chunk in the batched walk — matches the tree
/// engine's chunking so thread counts never change results (they cannot
/// anyway: per-sample results are independent).
const WALK_CHUNK: usize = 512;

/// One hop of the batched walk as the kernels report it: the clamped
/// **squared** distance, before [`PathStep`]'s `sqrt` finalization. The
/// walk hands these to its visitor so bulk scoring can defer the root to
/// one per sample instead of paying it on every interior hop.
#[derive(Clone, Copy)]
struct RawHop {
    node: usize,
    unit: usize,
    d2: f64,
}

/// Maps up to this many packed unit groups are eligible for the fused
/// frontier slabs. Norm pruning needs ≥ 3 groups before it can skip
/// anything, and below ~8 groups (64 units) an exhaustive scan of the
/// slot costs about what the pruned walk's bookkeeping does — so fusing
/// trades nothing per map and wins back all the per-map dispatch.
const FUSE_MAX_GROUPS: usize = 8;

/// A depth level is only fused when at least this many maps qualify:
/// fusing a single map would duplicate its slab for no batching gain.
const FUSE_MIN_SLOTS: usize = 2;

/// A trained GHSOM compiled for serving: immutable, flat, contiguous.
///
/// Construct with [`CompiledGhsom::from_model`] (or [`Compile::compile`]),
/// persist with the binary snapshot API in [`crate::snapshot`].
/// Projections are **bit-identical** to the training-time
/// [`GhsomModel`] the arena was compiled from — leaf keys and quantization
/// errors computed on either representation are interchangeable.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledGhsom {
    pub(crate) dim: usize,
    pub(crate) mqe0: f64,
    pub(crate) mean: Vec<f64>,
    /// Grid rows per map.
    pub(crate) rows: Vec<u32>,
    /// Grid columns per map.
    pub(crate) cols: Vec<u32>,
    /// Hierarchy depth per map (root = 1).
    pub(crate) depth: Vec<u32>,
    /// Parent node per map ([`NO_LINK`] for the root).
    pub(crate) parent_node: Vec<u32>,
    /// Parent unit per map ([`NO_LINK`] for the root).
    pub(crate) parent_unit: Vec<u32>,
    /// Global-unit prefix sums: map `m` owns global units
    /// `unit_off[m]..unit_off[m + 1]`.
    pub(crate) unit_off: Vec<u64>,
    /// Arena prefix sums (in `f64` elements): map `m`'s packed codebook is
    /// `wt[wt_off[m]..wt_off[m + 1]]`.
    pub(crate) wt_off: Vec<u64>,
    /// Child node per global unit ([`NO_LINK`] for leaf units).
    pub(crate) children: Vec<u32>,
    /// Training hits per global unit.
    pub(crate) unit_hits: Vec<u64>,
    /// Training mean quantization error per global unit.
    pub(crate) unit_mqe: Vec<f64>,
    /// Precomputed `‖w‖²/2` per global unit, **ascending within each
    /// map** (the arena stores codebooks norm-sorted for pruned search).
    pub(crate) wn_half: Vec<f64>,
    /// Packed position → original unit index within its map.
    pub(crate) perm: Vec<u32>,
    /// All codebooks, group-tiled transposed, concatenated in node order —
    /// each map's units reordered ascending by norm (see `perm`).
    pub(crate) wt: Vec<f64>,
    /// Lazily-gathered row-major weights (original unit order) for cold
    /// consumers that scan prototypes (nearest-labelled fallbacks,
    /// explanations). Not part of the snapshot; rebuilt on first use.
    pub(crate) row_cache: RowWeightsCache,
    /// Lazily-built fused frontier slabs for the deep-hierarchy walk
    /// (see [`FusedPlan`]). Derived from the tables above, so — like
    /// `row_cache` — it is invisible to equality and never serialized.
    pub(crate) fused: FusedCache,
}

/// Interior-mutable holder for the row-major weights gather.
///
/// Invisible to value semantics: compares equal to everything (so derived
/// `PartialEq` on [`CompiledGhsom`] ignores it) and is skipped by the
/// snapshot encoder — a reloaded arena rebuilds it on first use.
#[derive(Debug, Default)]
pub(crate) struct RowWeightsCache(std::sync::OnceLock<Vec<f64>>);

impl Clone for RowWeightsCache {
    fn clone(&self) -> Self {
        match self.0.get() {
            Some(data) => {
                let lock = std::sync::OnceLock::new();
                let _ = lock.set(data.clone());
                RowWeightsCache(lock)
            }
            None => RowWeightsCache::default(),
        }
    }
}

impl PartialEq for RowWeightsCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// One depth level's fused frontier arena: every *small* map at that
/// hierarchy depth (≤ [`FUSE_MAX_GROUPS`] packed unit groups) padded to a
/// common `stride` and laid out slot-major in one contiguous slab.
///
/// Each slot is a self-contained [`mathkit::batch::pack_codebook`] layout
/// of `stride` unit capacity: the map's real packed tiles copied verbatim
/// (so per-unit dot products are the very same tile reads as the unfused
/// walk), padding lanes zero-weighted with `+∞` half-norms and `u32::MAX`
/// permutation entries — dead by construction in the lexicographic
/// `(proxy, original index)` winner update (see
/// [`mathkit::batch::gram_nearest_exhaustive`]).
#[derive(Debug, Clone)]
pub(crate) struct FusedLevel {
    /// Padded units per slot (a multiple of [`batch::GROUP`]).
    stride: usize,
    /// Slot-major packed codebooks, `slots × stride × dim` doubles.
    wt: Vec<f64>,
    /// Slot-major half-norms, `+∞` on padding lanes.
    wn_half: Vec<f64>,
    /// Slot-major packed→original permutations, `u32::MAX` on padding.
    perm: Vec<u32>,
}

/// Subtree-fused walk plan: for each hierarchy depth ≥ 2 with enough
/// small maps, one [`FusedLevel`] slab plus node → (level, slot) lookup
/// tables extending the arena's prefix-sum addressing.
///
/// The deep-hierarchy problem this solves: below the root, frontier
/// fragments are a handful of samples spread over dozens of tiny sibling
/// maps, so the per-map batched kernel call (gather copy, chunk setup,
/// band precompute) costs more than its distance math, and norm pruning
/// cannot win on 2–4 unit groups. The level-by-level walk is uniform in
/// depth — every active sample at step *k* sits on a depth-`k+1` map —
/// so all of a level's fused maps can be served by **one** pass over one
/// strided slab: samples group by destination slot with plain index
/// arithmetic (no per-map kernel setup or band precompute), and each
/// slot run flows through the register-blocked exhaustive kernel
/// ([`mathkit::batch::gram_nearest_exhaustive_block`]) that amortizes
/// every weight-tile load across eight samples. Results are
/// bit-identical to the unfused walk because slots preserve the packed
/// tiles and the exhaustive slot scan is exactly the pruned search's
/// documented result semantics.
#[derive(Debug, Clone, Default)]
pub(crate) struct FusedPlan {
    /// Map → slot within its level slab, [`NO_LINK`] when not fused.
    slot_of_node: Vec<u32>,
    /// Map → index into `levels`; only meaningful where `slot_of_node`
    /// is not [`NO_LINK`].
    level_of_node: Vec<u32>,
    levels: Vec<FusedLevel>,
}

impl FusedPlan {
    /// Derives the fused slabs from a validated arena.
    pub(crate) fn build(a: &ArenaRef<'_>) -> FusedPlan {
        let n = a.map_count();
        let dim = a.dim;
        let mut plan = FusedPlan {
            slot_of_node: vec![NO_LINK; n],
            level_of_node: vec![NO_LINK; n],
            levels: Vec::new(),
        };
        let mut by_depth: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for m in 1..n {
            if a.units(m).div_ceil(batch::GROUP) <= FUSE_MAX_GROUPS {
                by_depth.entry(a.depth[m]).or_default().push(m);
            }
        }
        for nodes in by_depth.into_values() {
            if nodes.len() < FUSE_MIN_SLOTS {
                continue;
            }
            let stride = nodes
                .iter()
                .map(|&m| a.units(m).div_ceil(batch::GROUP))
                .max()
                .expect("level has nodes") // LINT-ALLOW(no-panic): empty levels are skipped by the continue above
                * batch::GROUP;
            let li = plan.levels.len() as u32;
            let mut lv = FusedLevel {
                stride,
                wt: vec![0.0; nodes.len() * stride * dim],
                wn_half: vec![f64::INFINITY; nodes.len() * stride],
                perm: vec![u32::MAX; nodes.len() * stride],
            };
            for (slot, &m) in nodes.iter().enumerate() {
                let units = a.units(m);
                let src = a.wt_of(m);
                let w0 = slot * stride * dim;
                lv.wt[w0..w0 + src.len()].copy_from_slice(src);
                let u0 = slot * stride;
                lv.wn_half[u0..u0 + units].copy_from_slice(a.wn_half_of(m));
                lv.perm[u0..u0 + units].copy_from_slice(a.perm_of(m));
                plan.slot_of_node[m] = slot as u32;
                plan.level_of_node[m] = li;
            }
            plan.levels.push(lv);
        }
        plan
    }

    /// `true` when no level qualified for fusing (shallow or all-large
    /// hierarchies) — the walk then skips the fused pass entirely.
    pub(crate) fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The `(slab tables, slot range)` serving map `node`, if fused.
    #[inline]
    fn slot(&self, node: usize) -> Option<(&FusedLevel, usize)> {
        match self.slot_of_node[node] {
            NO_LINK => None,
            s => Some((&self.levels[self.level_of_node[node] as usize], s as usize)),
        }
    }
}

/// Interior-mutable holder for the lazily-derived [`FusedPlan`] —
/// same value-semantics contract as [`RowWeightsCache`]: compares equal
/// to everything, skipped by the snapshot encoder, rebuilt on first use.
#[derive(Debug, Default)]
pub(crate) struct FusedCache(std::sync::OnceLock<FusedPlan>);

impl Clone for FusedCache {
    fn clone(&self) -> Self {
        match self.0.get() {
            Some(plan) => {
                let lock = std::sync::OnceLock::new();
                let _ = lock.set(plan.clone());
                FusedCache(lock)
            }
            None => FusedCache::default(),
        }
    }
}

impl PartialEq for FusedCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// Borrowed view of the arena tables — the walk code is written once
/// against this, shared by [`CompiledGhsom`] (owned vectors) and
/// [`crate::snapshot::SnapshotView`] (zero-copy mapped bytes).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArenaRef<'a> {
    pub dim: usize,
    pub mqe0: f64,
    pub mean: &'a [f64],
    pub rows: &'a [u32],
    pub cols: &'a [u32],
    pub depth: &'a [u32],
    pub parent_node: &'a [u32],
    pub parent_unit: &'a [u32],
    pub unit_off: &'a [u64],
    pub wt_off: &'a [u64],
    pub children: &'a [u32],
    pub unit_hits: &'a [u64],
    pub unit_mqe: &'a [f64],
    pub wn_half: &'a [f64],
    pub perm: &'a [u32],
    pub wt: &'a [f64],
}

impl<'a> ArenaRef<'a> {
    pub fn map_count(&self) -> usize {
        self.rows.len()
    }

    pub fn total_units(&self) -> usize {
        self.children.len()
    }

    /// Number of units in map `node`.
    pub fn units(&self, node: usize) -> usize {
        (self.unit_off[node + 1] - self.unit_off[node]) as usize
    }

    /// Proxy half-norms of map `node` (packed = norm-ascending order).
    fn wn_half_of(&self, node: usize) -> &'a [f64] {
        &self.wn_half[self.unit_off[node] as usize..self.unit_off[node + 1] as usize]
    }

    /// Packed-position → original-unit permutation of map `node`.
    fn perm_of(&self, node: usize) -> &'a [u32] {
        &self.perm[self.unit_off[node] as usize..self.unit_off[node + 1] as usize]
    }

    /// Packed codebook slab of map `node`.
    fn wt_of(&self, node: usize) -> &'a [f64] {
        &self.wt[self.wt_off[node] as usize..self.wt_off[node + 1] as usize]
    }

    pub fn child_of(&self, node: usize, unit: usize) -> Option<usize> {
        assert!(unit < self.units(node), "unit index out of bounds");
        match self.children[self.unit_off[node] as usize + unit] {
            NO_LINK => None,
            c => Some(c as usize),
        }
    }

    /// Gathers the row-major weight vector of `(node, unit)` back out of
    /// the norm-sorted group-tiled layout (`unit` is the original index;
    /// its packed position comes from the permutation table).
    pub fn prototype(&self, node: usize, unit: usize) -> Vec<f64> {
        assert!(unit < self.units(node), "unit index out of bounds");
        let packed = self
            .perm_of(node)
            .iter()
            .position(|&u| u as usize == unit)
            .expect("validated permutations are total"); // LINT-ALLOW(no-panic): perm_of is a validated permutation of 0..units(node) and unit is asserted in range above
        let slab = self.wt_of(node);
        let (g, k) = (packed / batch::GROUP, packed % batch::GROUP);
        (0..self.dim)
            .map(|j| slab[g * (self.dim * batch::GROUP) + j * batch::GROUP + k])
            .collect()
    }

    /// Gathers a whole map's codebook back to row-major **original** unit
    /// order in one pass — the bulk form of [`ArenaRef::prototype`].
    pub fn map_weights(&self, node: usize) -> Vec<f64> {
        let units = self.units(node);
        let dim = self.dim;
        let slab = self.wt_of(node);
        let perm = self.perm_of(node);
        let mut out = vec![0.0; units * dim];
        for (packed, &orig) in perm.iter().enumerate() {
            let (g, k) = (packed / batch::GROUP, packed % batch::GROUP);
            let row = &mut out[orig as usize * dim..(orig as usize + 1) * dim];
            for (j, v) in row.iter_mut().enumerate() {
                *v = slab[g * (dim * batch::GROUP) + j * batch::GROUP + k];
            }
        }
        out
    }

    fn check_dim(&self, found: usize) -> Result<(), ServeError> {
        if found != self.dim {
            return Err(ServeError::DimensionMismatch {
                expected: self.dim,
                found,
            });
        }
        Ok(())
    }

    /// Projects one sample root→leaf through the norm-pruned search.
    /// Winners, tie-breaking and distance bits are identical to the tree
    /// walker's exhaustive scan (see [`batch::gram_nearest_block_pruned`]).
    pub fn project_one(&self, x: &[f64]) -> Result<Projection, ServeError> {
        self.check_dim(x.len())?;
        let mut steps = Vec::new();
        let mut node = 0usize;
        let mut nearest = Vec::with_capacity(1);
        loop {
            nearest.clear();
            batch::gram_nearest_block_pruned(
                x,
                self.dim,
                self.wt_of(node),
                self.wn_half_of(node),
                self.perm_of(node),
                &mut nearest,
            );
            let n = nearest[0];
            steps.push(PathStep {
                node,
                unit: n.unit,
                // `Metric::Euclidean.finalize` on an already-clamped d².
                distance: n.d2.max(0.0).sqrt(),
            });
            match self.children[self.unit_off[node] as usize + n.unit] {
                NO_LINK => break,
                c => node = c as usize,
            }
        }
        Ok(Projection::from_steps(steps))
    }

    /// Level-by-level batched walk: per level, samples on **fused** maps
    /// (see [`FusedPlan`]) resolve in slot-grouped exhaustive blocks over
    /// the level's strided slab, while samples on large unfused maps go
    /// through the per-map norm-pruned pass
    /// ([`batch::gram_nearest_block_pruned`]); both are chunk-parallel
    /// under the `rayon` feature. `visit` sees every `(sample, hop)`
    /// pair, root first per sample, with the kernel's clamped **squared**
    /// distance — callers finalize the `sqrt` themselves, which lets the
    /// bulk-scoring path pay it once per sample instead of once per hop.
    ///
    /// With `fused: None` every map takes the per-map pruned pass — the
    /// reference path the fused walk is property-tested bit-identical
    /// against (and the only path available to the zero-copy
    /// [`crate::snapshot::SnapshotView`], which owns no derived tables).
    ///
    /// Unlike the tree walker there is no per-map `Matrix` materialization:
    /// the root level runs directly on the input's flat buffer, and deeper
    /// levels gather only their active rows into reused scratch vectors.
    /// The input is a **borrowed**
    /// [`MatrixView`], so callers that already hold samples contiguously
    /// (the reused feature-transform buffer of the fused serving path)
    /// never copy them into an owned matrix.
    fn walk<F: FnMut(usize, RawHop)>(
        &self,
        data: MatrixView<'_>,
        fused: Option<&FusedPlan>,
        mut visit: F,
    ) -> Result<(), ServeError> {
        if data.rows() == 0 {
            return Ok(());
        }
        self.check_dim(data.cols())?;
        let dim = self.dim;
        let n = data.rows();

        // Root level: every row in order, straight off the input buffer.
        let (wt, wnh, perm) = (self.wt_of(0), self.wn_half_of(0), self.perm_of(0));
        let root = parallel::par_map_chunks(n, WALK_CHUNK, |r| {
            let mut out = Vec::with_capacity(r.len());
            batch::gram_nearest_block_pruned(
                &data.as_slice()[r.start * dim..r.end * dim],
                dim,
                wt,
                wnh,
                perm,
                &mut out,
            );
            out
        });
        // Active samples and the node each descends into — parallel
        // arrays, always in ascending sample order.
        let mut active: Vec<u32> = Vec::new();
        let mut nodes: Vec<u32> = Vec::new();
        let root_base = self.unit_off[0] as usize;
        for (s, m) in root.iter().flatten().enumerate() {
            visit(
                s,
                RawHop {
                    node: 0,
                    unit: m.unit,
                    d2: m.d2,
                },
            );
            match self.children[root_base + m.unit] {
                NO_LINK => {}
                c => {
                    active.push(s as u32);
                    nodes.push(c);
                }
            }
        }

        // Deeper levels. Every map's depth is its parent's + 1 (validated),
        // so all nodes in `nodes` share a depth at every iteration — which
        // is what lets one fused level slab serve the whole frontier.
        let mut gather: Vec<f64> = Vec::new();
        while !active.is_empty() {
            let mut results: Vec<batch::Nearest> = vec![
                batch::Nearest {
                    unit: 0,
                    d2: f64::INFINITY,
                };
                active.len()
            ];
            // Split the frontier: fused maps resolve sample-major below;
            // the rest (rare large deep maps) group by node as before.
            let mut plain: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            let mut fused_idx: Vec<u32> = Vec::new();
            for (i, &node) in nodes.iter().enumerate() {
                match fused {
                    Some(plan) if plan.slot_of_node[node as usize] != NO_LINK => {
                        fused_idx.push(i as u32);
                    }
                    _ => plain.entry(node as usize).or_default().push(i),
                }
            }
            if !fused_idx.is_empty() {
                let plan = fused.expect("fused_idx only fills under a plan"); // LINT-ALLOW(no-panic): fused_idx is pushed only in the match arm where the plan is Some
                let found = parallel::par_map_chunks(fused_idx.len(), WALK_CHUNK, |r| {
                    let idxs = &fused_idx[r];
                    // Group the chunk's samples by destination map: each
                    // run sharing a slot becomes one contiguous exhaustive
                    // block over that slot's tiles, so the 8-sample
                    // register-blocked kernel amortizes every weight-group
                    // load across the run (the dense-frontier case). A
                    // fragmented frontier degenerates to one-sample runs
                    // served by the blocked kernel's scalar tail — the
                    // same per-sample candidate sequence either way, so
                    // the route never changes a bit of the result.
                    let mut order: Vec<u32> = (0..idxs.len() as u32).collect();
                    order.sort_unstable_by_key(|&p| (nodes[idxs[p as usize] as usize], p));
                    let mut out = vec![
                        batch::Nearest {
                            unit: 0,
                            d2: f64::INFINITY,
                        };
                        idxs.len()
                    ];
                    let mut gathered: Vec<f64> = Vec::new();
                    let mut run_out: Vec<batch::Nearest> = Vec::new();
                    let mut run0 = 0usize;
                    while run0 < order.len() {
                        let node = nodes[idxs[order[run0] as usize] as usize];
                        let mut run1 = run0 + 1;
                        while run1 < order.len()
                            && nodes[idxs[order[run1] as usize] as usize] == node
                        {
                            run1 += 1;
                        }
                        let (lv, slot) = plan.slot(node as usize).expect("partitioned as fused"); // LINT-ALLOW(no-panic): every node in fused_idx was partitioned under slot_of_node != NO_LINK
                        let u0 = slot * lv.stride;
                        let u1 = u0 + lv.stride;
                        let run = &order[run0..run1];
                        gathered.clear();
                        gathered.reserve(run.len() * dim);
                        for &p in run {
                            gathered.extend_from_slice(
                                data.row(active[idxs[p as usize] as usize] as usize),
                            );
                        }
                        run_out.clear();
                        batch::gram_nearest_exhaustive_block(
                            &gathered,
                            dim,
                            &lv.wt[u0 * dim..u1 * dim],
                            &lv.wn_half[u0..u1],
                            &lv.perm[u0..u1],
                            &mut run_out,
                        );
                        for (&p, m) in run.iter().zip(&run_out) {
                            out[p as usize] = *m;
                        }
                        run0 = run1;
                    }
                    out
                });
                for (&i, m) in fused_idx.iter().zip(found.iter().flatten()) {
                    results[i as usize] = *m;
                }
            }
            for (&node, idxs) in &plain {
                let rows: &[f64] = if idxs.len() == n {
                    // Every sample went to one child map: `active[i] == i`,
                    // serve straight from the input buffer again.
                    data.as_slice()
                } else {
                    gather.clear();
                    gather.reserve(idxs.len() * dim);
                    for &i in idxs {
                        gather.extend_from_slice(data.row(active[i] as usize));
                    }
                    &gather
                };
                let (wt, wnh, perm) = (self.wt_of(node), self.wn_half_of(node), self.perm_of(node));
                let chunks = parallel::par_map_chunks(idxs.len(), WALK_CHUNK, |r| {
                    let mut out = Vec::with_capacity(r.len());
                    batch::gram_nearest_block_pruned(
                        &rows[r.start * dim..r.end * dim],
                        dim,
                        wt,
                        wnh,
                        perm,
                        &mut out,
                    );
                    out
                });
                for (&i, m) in idxs.iter().zip(chunks.iter().flatten()) {
                    results[i] = *m;
                }
            }
            // Emit this level's hops and advance the frontier in place.
            let mut next_len = 0usize;
            for (i, m) in results.iter().enumerate() {
                let node = nodes[i] as usize;
                let s = active[i] as usize;
                visit(
                    s,
                    RawHop {
                        node,
                        unit: m.unit,
                        d2: m.d2,
                    },
                );
                match self.children[self.unit_off[node] as usize + m.unit] {
                    NO_LINK => {}
                    c => {
                        active[next_len] = s as u32;
                        nodes[next_len] = c;
                        next_len += 1;
                    }
                }
            }
            active.truncate(next_len);
            nodes.truncate(next_len);
        }
        Ok(())
    }

    pub fn project_batch(
        &self,
        data: MatrixView<'_>,
        fused: Option<&FusedPlan>,
    ) -> Result<Vec<Projection>, ServeError> {
        if data.rows() == 0 {
            return Ok(Vec::new());
        }
        let mut steps: Vec<Vec<PathStep>> = vec![Vec::new(); data.rows()];
        self.walk(data, fused, |sample, hop| {
            steps[sample].push(PathStep {
                node: hop.node,
                unit: hop.unit,
                // `Metric::Euclidean.finalize` on an already-clamped d².
                distance: hop.d2.max(0.0).sqrt(),
            })
        })?;
        Ok(steps.into_iter().map(Projection::from_steps).collect())
    }

    /// Leaf quantization error per row without materializing projections —
    /// the detectors' hot bulk-scoring path.
    pub fn score_all(
        &self,
        data: MatrixView<'_>,
        fused: Option<&FusedPlan>,
    ) -> Result<Vec<f64>, ServeError> {
        let mut qe = vec![0.0; data.rows()];
        // Per sample the walk visits hops root→leaf, so the last write is
        // the leaf d²; finalize the square root once per sample rather
        // than per hop (the interior hops' roots would be thrown away).
        self.walk(data, fused, |sample, hop| qe[sample] = hop.d2)?;
        for v in &mut qe {
            *v = v.max(0.0).sqrt();
        }
        Ok(qe)
    }

    /// Structural invariants every arena must satisfy before it is walked —
    /// enforced on compile *and* on snapshot decode, so corrupt or hostile
    /// bytes can never drive the walker out of bounds or into a cycle.
    pub fn validate(&self) -> Result<(), ServeError> {
        let n = self.map_count();
        if n == 0 {
            return Err(ServeError::Malformed("empty hierarchy"));
        }
        if self.dim == 0 || self.mean.len() != self.dim {
            return Err(ServeError::Malformed("mean length disagrees with dim"));
        }
        if !(self.mqe0.is_finite() && self.mqe0 >= 0.0) {
            return Err(ServeError::Malformed("mqe0 must be finite and >= 0"));
        }
        let same_len = self.cols.len() == n
            && self.depth.len() == n
            && self.parent_node.len() == n
            && self.parent_unit.len() == n
            && self.unit_off.len() == n + 1
            && self.wt_off.len() == n + 1;
        if !same_len {
            return Err(ServeError::Malformed("per-map tables disagree on length"));
        }
        let total = self.total_units();
        if self.unit_hits.len() != total
            || self.unit_mqe.len() != total
            || self.wn_half.len() != total
            || self.perm.len() != total
        {
            return Err(ServeError::Malformed("per-unit tables disagree on length"));
        }
        if self.unit_off[0] != 0 || self.wt_off[0] != 0 {
            return Err(ServeError::Malformed("offset tables must start at 0"));
        }
        if self.unit_off[n] as usize != total {
            return Err(ServeError::Malformed(
                "unit offsets disagree with the unit-table length",
            ));
        }
        if self.wt_off[n] as usize != self.wt.len() {
            return Err(ServeError::Malformed(
                "arena offsets disagree with the arena length",
            ));
        }
        if self.parent_node[0] != NO_LINK || self.depth[0] != 1 {
            return Err(ServeError::Malformed("node 0 must be the depth-1 root"));
        }
        for m in 0..n {
            if self.unit_off[m] > self.unit_off[m + 1] || self.wt_off[m] > self.wt_off[m + 1] {
                return Err(ServeError::Malformed("offset tables must be monotone"));
            }
            let units = self.units(m);
            if units == 0 {
                return Err(ServeError::Malformed("maps cannot be empty"));
            }
            if (self.rows[m] as u64).checked_mul(self.cols[m] as u64) != Some(units as u64) {
                return Err(ServeError::Malformed(
                    "grid shape disagrees with unit count",
                ));
            }
            let expect = batch::packed_len(units, self.dim) as u64;
            if self.wt_off[m + 1] - self.wt_off[m] != expect {
                return Err(ServeError::Malformed(
                    "packed slab length disagrees with unit count",
                ));
            }
            // The pruned search relies on ascending half-norms and a total
            // packed→original permutation per map; a snapshot violating
            // either would silently misroute records, so reject it here.
            let base = self.unit_off[m] as usize;
            let wnh = &self.wn_half[base..base + units];
            // NaN half-norms are caught by the finiteness check below.
            if wnh.windows(2).any(|w| w[0] > w[1]) {
                return Err(ServeError::Malformed(
                    "half-norms must ascend within each map",
                ));
            }
            let mut seen = vec![false; units];
            for &p in &self.perm[base..base + units] {
                if (p as usize) >= units || seen[p as usize] {
                    return Err(ServeError::Malformed(
                        "perm must be a permutation of the map's units",
                    ));
                }
                seen[p as usize] = true;
            }
            if m > 0 {
                let (p, pu) = (self.parent_node[m], self.parent_unit[m]);
                let parent_ok = (p as usize) < m
                    && (pu as usize) < self.units(p as usize)
                    && self.children[self.unit_off[p as usize] as usize + pu as usize] == m as u32
                    && self.depth[m] == self.depth[p as usize] + 1;
                if !parent_ok {
                    return Err(ServeError::Malformed(
                        "parent link must be mirrored by the parent at depth + 1",
                    ));
                }
            }
            for u in 0..units {
                let c = self.children[self.unit_off[m] as usize + u];
                if c == NO_LINK {
                    continue;
                }
                // Child links must point strictly forward — this is what
                // guarantees every walk terminates.
                let ok = (c as usize) > m
                    && (c as usize) < n
                    && self.parent_node[c as usize] == m as u32
                    && self.parent_unit[c as usize] == u as u32;
                if !ok {
                    return Err(ServeError::Malformed(
                        "child links must point forward to nodes that link back",
                    ));
                }
            }
        }
        for v in self.wt.iter().chain(self.wn_half).chain(self.unit_mqe) {
            if !v.is_finite() {
                return Err(ServeError::Malformed("arena values must be finite"));
            }
        }
        Ok(())
    }
}

impl CompiledGhsom {
    /// The borrowed-table view the walk code runs on.
    pub(crate) fn arena(&self) -> ArenaRef<'_> {
        ArenaRef {
            dim: self.dim,
            mqe0: self.mqe0,
            mean: &self.mean,
            rows: &self.rows,
            cols: &self.cols,
            depth: &self.depth,
            parent_node: &self.parent_node,
            parent_unit: &self.parent_unit,
            unit_off: &self.unit_off,
            wt_off: &self.wt_off,
            children: &self.children,
            unit_hits: &self.unit_hits,
            unit_mqe: &self.unit_mqe,
            wn_half: &self.wn_half,
            perm: &self.perm,
            wt: &self.wt,
        }
    }

    /// Compiles a trained tree model into the flat serving arena.
    ///
    /// The node numbering (breadth-first creation order, root = 0) and all
    /// `(node, unit)` keys are preserved, and projections are bit-identical
    /// to the source model's — detectors fitted against the tree serve
    /// unchanged on the arena.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnsupportedMetric`] when any map's BMU metric is not
    /// Euclidean (the arena bakes in Gram-trick half-norms);
    /// [`ServeError::Malformed`] when the hierarchy exceeds the snapshot
    /// index width (`u32` nodes/units).
    pub fn from_model(model: &GhsomModel) -> Result<Self, ServeError> {
        let n = model.map_count();
        if n >= NO_LINK as usize {
            return Err(ServeError::Malformed("too many maps for u32 node indices"));
        }
        let dim = model.dim();
        let mut out = CompiledGhsom {
            dim,
            mqe0: model.mqe0(),
            mean: model.layer0_mean().to_vec(),
            rows: Vec::with_capacity(n),
            cols: Vec::with_capacity(n),
            depth: Vec::with_capacity(n),
            parent_node: Vec::with_capacity(n),
            parent_unit: Vec::with_capacity(n),
            unit_off: Vec::with_capacity(n + 1),
            wt_off: Vec::with_capacity(n + 1),
            children: Vec::new(),
            unit_hits: Vec::new(),
            unit_mqe: Vec::new(),
            wn_half: Vec::new(),
            perm: Vec::new(),
            wt: Vec::new(),
            row_cache: RowWeightsCache::default(),
            fused: FusedCache::default(),
        };
        out.unit_off.push(0);
        out.wt_off.push(0);
        for node in model.nodes() {
            let som = node.som();
            if som.metric() != Metric::Euclidean {
                return Err(ServeError::UnsupportedMetric {
                    metric: som.metric().to_string(),
                });
            }
            let t = som.topology();
            out.rows.push(t.rows() as u32);
            out.cols.push(t.cols() as u32);
            out.depth.push(node.depth() as u32);
            let (pn, pu) = node
                .parent()
                .map_or((NO_LINK, NO_LINK), |(a, b)| (a as u32, b as u32));
            out.parent_node.push(pn);
            out.parent_unit.push(pu);
            for unit in 0..som.len() {
                out.children
                    .push(node.child_of_unit(unit).map_or(NO_LINK, |c| c as u32));
            }
            out.unit_hits
                .extend(node.unit_hits().iter().map(|&h| h as u64));
            out.unit_mqe.extend_from_slice(node.unit_mqe());
            // Non-finite weights would poison the norm sort and every
            // distance downstream; surface the typed error the arena
            // validator would raise rather than panicking mid-sort.
            if !som.weights().as_slice().iter().all(|v| v.is_finite()) {
                return Err(ServeError::Malformed("codebook weights must be finite"));
            }
            // Norm-sort the map's units for the pruned search (stable on
            // the original index so duplicate-weight ties stay ordered)
            // and pack the codebook in that order.
            let wn = batch::half_row_norms_sq(som.weights());
            let mut order: Vec<usize> = (0..som.len()).collect();
            // Norms are validated finite above, so total_cmp orders them
            // exactly like partial_cmp — without an unwrap in the path.
            order.sort_by(|&a, &b| wn[a].total_cmp(&wn[b]).then(a.cmp(&b)));
            let sorted =
                Matrix::from_rows(order.iter().map(|&u| som.unit_weight(u).to_vec()).collect())
                    .expect("rows of a finite codebook are valid"); // LINT-ALLOW(no-panic): rows are unit_weight slices of one SOM, all dim-wide by construction
            out.wn_half.extend(order.iter().map(|&u| wn[u]));
            out.perm.extend(order.iter().map(|&u| u as u32));
            out.wt.extend(batch::pack_codebook(&sorted));
            out.unit_off.push(out.children.len() as u64);
            out.wt_off.push(out.wt.len() as u64);
        }
        if out.children.len() >= NO_LINK as usize {
            return Err(ServeError::Malformed("too many units for u32 indices"));
        }
        out.arena().validate()?;
        Ok(out)
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of maps in the hierarchy.
    pub fn map_count(&self) -> usize {
        self.rows.len()
    }

    /// Total units across all maps.
    pub fn total_units(&self) -> usize {
        self.children.len()
    }

    /// The layer-0 virtual unit (training-data mean).
    pub fn layer0_mean(&self) -> &[f64] {
        &self.mean
    }

    /// The layer-0 mean quantization error mqe₀.
    pub fn mqe0(&self) -> f64 {
        self.mqe0
    }

    /// `(rows, cols)` grid shape of map `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn map_shape(&self, node: usize) -> (usize, usize) {
        (self.rows[node] as usize, self.cols[node] as usize)
    }

    /// Hierarchy depth of map `node` (root = 1).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn map_depth(&self, node: usize) -> usize {
        self.depth[node] as usize
    }

    /// `(parent node, parent unit)` of map `node`, `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn map_parent(&self, node: usize) -> Option<(usize, usize)> {
        if self.parent_node[node] == NO_LINK {
            None
        } else {
            Some((
                self.parent_node[node] as usize,
                self.parent_unit[node] as usize,
            ))
        }
    }

    /// Training hits of map `node`'s units.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn unit_hits(&self, node: usize) -> &[u64] {
        &self.unit_hits[self.unit_off[node] as usize..self.unit_off[node + 1] as usize]
    }

    /// Training mean quantization errors of map `node`'s units.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn unit_mqe(&self, node: usize) -> &[f64] {
        &self.unit_mqe[self.unit_off[node] as usize..self.unit_off[node + 1] as usize]
    }

    /// The lazily-built fused walk plan, or `None` when the hierarchy has
    /// no level worth fusing (the walk then skips the fused pass without
    /// probing empty tables).
    fn fused_plan(&self) -> Option<&FusedPlan> {
        let plan = self.fused.0.get_or_init(|| FusedPlan::build(&self.arena()));
        (!plan.is_empty()).then_some(plan)
    }

    /// Projects one sample root→leaf (bit-identical to the source tree).
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on a sample of the wrong width.
    pub fn project(&self, x: &[f64]) -> Result<Projection, ServeError> {
        self.arena().project_one(x)
    }

    /// Projects every row of a matrix root→leaf — the bulk path, chunked
    /// and data-parallel under the `rayon` feature.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on samples of the wrong width.
    pub fn project_batch(&self, data: &Matrix) -> Result<Vec<Projection>, ServeError> {
        self.arena().project_batch(data.view(), self.fused_plan())
    }

    /// [`CompiledGhsom::project_batch`] over a **borrowed** matrix view —
    /// the fused serving path's entry point: the walk runs directly on
    /// the caller's flat buffer (e.g. a reused
    /// `featurize::FeatureMatrix`), no owned copy.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on samples of the wrong width.
    pub fn project_batch_view(&self, data: MatrixView<'_>) -> Result<Vec<Projection>, ServeError> {
        self.arena().project_batch(data, self.fused_plan())
    }

    /// Leaf quantization error of every row without materializing
    /// projections — the hot detector scoring path.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on samples of the wrong width.
    pub fn score_all(&self, data: &Matrix) -> Result<Vec<f64>, ServeError> {
        self.arena().score_all(data.view(), self.fused_plan())
    }

    /// [`CompiledGhsom::score_all`] over a borrowed matrix view (see
    /// [`CompiledGhsom::project_batch_view`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on samples of the wrong width.
    pub fn score_all_view(&self, data: MatrixView<'_>) -> Result<Vec<f64>, ServeError> {
        self.arena().score_all(data, self.fused_plan())
    }

    /// [`CompiledGhsom::project_batch_view`] forced through the per-map
    /// pruned walk, bypassing the fused frontier slabs — the reference
    /// path for differential tests and the fused-vs-unfused benchmark.
    /// Results are bit-identical to the fused walk by construction.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on samples of the wrong width.
    pub fn project_batch_view_unfused(
        &self,
        data: MatrixView<'_>,
    ) -> Result<Vec<Projection>, ServeError> {
        self.arena().project_batch(data, None)
    }

    /// [`CompiledGhsom::score_all_view`] forced through the per-map
    /// pruned walk (see [`CompiledGhsom::project_batch_view_unfused`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on samples of the wrong width.
    pub fn score_all_view_unfused(&self, data: MatrixView<'_>) -> Result<Vec<f64>, ServeError> {
        self.arena().score_all(data, None)
    }
}

impl Scorer for CompiledGhsom {
    fn dim(&self) -> usize {
        self.dim
    }

    fn map_count(&self) -> usize {
        CompiledGhsom::map_count(self)
    }

    fn map_units(&self, node: usize) -> usize {
        self.arena().units(node)
    }

    fn child_of(&self, node: usize, unit: usize) -> Option<usize> {
        self.arena().child_of(node, unit)
    }

    fn unit_prototype(&self, node: usize, unit: usize) -> Cow<'_, [f64]> {
        Cow::Owned(self.arena().prototype(node, unit))
    }

    fn map_weights(&self, node: usize) -> Cow<'_, [f64]> {
        // Gather the whole arena back to row-major once, then serve
        // borrowed slices — prototype scans (dead-unit fallbacks) are as
        // cheap as on the tree after the first touch.
        let rows = self.row_cache.0.get_or_init(|| {
            let mut out = vec![0.0; self.total_units() * self.dim];
            for m in 0..CompiledGhsom::map_count(self) {
                let base = self.unit_off[m] as usize * self.dim;
                let gathered = self.arena().map_weights(m);
                out[base..base + gathered.len()].copy_from_slice(&gathered);
            }
            out
        });
        let lo = self.unit_off[node] as usize * self.dim;
        let hi = self.unit_off[node + 1] as usize * self.dim;
        Cow::Borrowed(&rows[lo..hi])
    }

    fn project(&self, x: &[f64]) -> Result<Projection, GhsomError> {
        Ok(CompiledGhsom::project(self, x)?)
    }

    fn project_batch(&self, data: &Matrix) -> Result<Vec<Projection>, GhsomError> {
        Ok(CompiledGhsom::project_batch(self, data)?)
    }

    /// Zero-copy override: the arena walk runs on the borrowed buffer
    /// directly (the trait default would copy into an owned matrix).
    fn project_batch_view(&self, data: MatrixView<'_>) -> Result<Vec<Projection>, GhsomError> {
        Ok(CompiledGhsom::project_batch_view(self, data)?)
    }

    fn score_matrix(&self, data: &Matrix) -> Result<Vec<f64>, GhsomError> {
        Ok(CompiledGhsom::score_all(self, data)?)
    }

    fn score_matrix_view(&self, data: MatrixView<'_>) -> Result<Vec<f64>, GhsomError> {
        Ok(CompiledGhsom::score_all_view(self, data)?)
    }
}

/// Compilation bridge: `model.compile()` with this trait in scope (it is
/// in the umbrella crate's prelude).
pub trait Compile {
    /// Compiles this trained model into a [`CompiledGhsom`] serving arena.
    ///
    /// # Errors
    ///
    /// See [`CompiledGhsom::from_model`].
    fn compile(&self) -> Result<CompiledGhsom, ServeError>;
}

impl Compile for GhsomModel {
    fn compile(&self) -> Result<CompiledGhsom, ServeError> {
        CompiledGhsom::from_model(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghsom_core::GhsomConfig;

    fn hierarchical_data() -> Matrix {
        // Two macro-clusters each with micro-structure, deterministic.
        let rows: Vec<Vec<f64>> = (0..400)
            .map(|i| {
                let macro_c = if i % 2 == 0 { 0.0 } else { 10.0 };
                let micro = (i % 3) as f64 * 1.5;
                vec![
                    macro_c + micro + (i % 17) as f64 * 0.01,
                    macro_c + (i % 13) as f64 * 0.01,
                ]
            })
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    fn model() -> GhsomModel {
        GhsomModel::train(
            &GhsomConfig::default()
                .with_tau1(0.4)
                .with_tau2(0.05)
                .with_seed(3),
            &hierarchical_data(),
        )
        .unwrap()
    }

    #[test]
    fn compile_preserves_shape_metadata() {
        let m = model();
        let c = m.compile().unwrap();
        assert_eq!(c.dim(), m.dim());
        assert_eq!(c.map_count(), m.map_count());
        assert_eq!(c.total_units(), m.total_units());
        assert_eq!(c.mqe0(), m.mqe0());
        assert_eq!(c.layer0_mean(), m.layer0_mean());
        for (i, node) in m.nodes().iter().enumerate() {
            let t = node.som().topology();
            assert_eq!(c.map_shape(i), (t.rows(), t.cols()));
            assert_eq!(c.map_depth(i), node.depth());
            assert_eq!(c.map_parent(i), node.parent());
            assert_eq!(c.unit_mqe(i), node.unit_mqe());
            let hits: Vec<u64> = node.unit_hits().iter().map(|&h| h as u64).collect();
            assert_eq!(c.unit_hits(i), hits);
            for u in 0..node.som().len() {
                assert_eq!(
                    Scorer::child_of(&c, i, u),
                    node.child_of_unit(u),
                    "child link ({i}, {u})"
                );
                assert_eq!(
                    Scorer::unit_prototype(&c, i, u).as_ref(),
                    node.som().unit_weight(u),
                    "prototype ({i}, {u})"
                );
            }
        }
    }

    #[test]
    fn projections_are_bit_identical_to_the_tree() {
        let m = model();
        let c = m.compile().unwrap();
        let data = hierarchical_data();
        let tree = m.project_batch(&data).unwrap();
        let flat = c.project_batch(&data).unwrap();
        assert_eq!(tree.len(), flat.len());
        for (i, (t, f)) in tree.iter().zip(&flat).enumerate() {
            assert_eq!(t.steps().len(), f.steps().len(), "sample {i} path depth");
            for (a, b) in t.steps().iter().zip(f.steps()) {
                assert_eq!(a.node, b.node);
                assert_eq!(a.unit, b.unit);
                assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
        }
        // Single-sample path agrees with the batch path.
        for x in data.iter_rows().take(25) {
            let single = c.project(x).unwrap();
            let tree_single = m.project(x).unwrap();
            assert_eq!(single.leaf_key(), tree_single.leaf_key());
            assert_eq!(single.leaf_qe().to_bits(), tree_single.leaf_qe().to_bits());
        }
    }

    #[test]
    fn score_all_matches_score_matrix_bitwise() {
        let m = model();
        let c = m.compile().unwrap();
        let data = hierarchical_data();
        let tree = m.score_matrix(&data).unwrap();
        let flat = c.score_all(&data).unwrap();
        for (a, b) in tree.iter().zip(&flat) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dimension_mismatch_is_typed() {
        let c = model().compile().unwrap();
        assert_eq!(
            c.project(&[1.0]).unwrap_err(),
            ServeError::DimensionMismatch {
                expected: 2,
                found: 1
            }
        );
        let wide = Matrix::zeros(2, 5);
        assert!(matches!(
            c.score_all(&wide).unwrap_err(),
            ServeError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn non_euclidean_models_are_rejected() {
        let data = hierarchical_data();
        let m = GhsomModel::train(&GhsomConfig::default(), &data).unwrap();
        // Rebuild the root map with a Manhattan metric.
        let root = &m.nodes()[0];
        let manhattan = som::map::Som::from_parts(
            *root.som().topology(),
            root.som().weights().clone(),
            Metric::Manhattan,
        )
        .unwrap();
        let node = ghsom_core::MapNode::new(
            manhattan,
            1,
            None,
            vec![None; root.som().len()],
            root.unit_hits().to_vec(),
            root.unit_mqe().to_vec(),
        )
        .unwrap();
        let rebuilt = GhsomModel::from_parts(
            m.config().clone(),
            m.layer0_mean().to_vec(),
            m.mqe0(),
            vec![node],
        )
        .unwrap();
        assert!(matches!(
            rebuilt.compile().unwrap_err(),
            ServeError::UnsupportedMetric { .. }
        ));
    }

    #[test]
    fn non_finite_weights_are_a_typed_error_not_a_panic() {
        // Matrix::from_flat does not validate finiteness, so a NaN can
        // reach a codebook; compile must refuse with a typed error.
        let m = model();
        let root = &m.nodes()[0];
        let units = root.som().len();
        let mut flat = root.som().weights().as_slice().to_vec();
        flat[3] = f64::NAN;
        let poisoned = som::map::Som::from_parts(
            *root.som().topology(),
            Matrix::from_flat(units, 2, flat).unwrap(),
            Metric::Euclidean,
        )
        .unwrap();
        let node = ghsom_core::MapNode::new(
            poisoned,
            1,
            None,
            vec![None; units],
            root.unit_hits().to_vec(),
            root.unit_mqe().to_vec(),
        )
        .unwrap();
        let rebuilt = GhsomModel::from_parts(
            m.config().clone(),
            m.layer0_mean().to_vec(),
            m.mqe0(),
            vec![node],
        )
        .unwrap();
        assert_eq!(
            rebuilt.compile().unwrap_err(),
            ServeError::Malformed("codebook weights must be finite")
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let c = model().compile().unwrap();
        let empty = Matrix::zeros(0, 2);
        assert!(c.project_batch(&empty).unwrap().is_empty());
        assert!(c.score_all(&empty).unwrap().is_empty());
    }

    #[test]
    fn scorer_trait_serves_the_arena() {
        let m = model();
        let c = m.compile().unwrap();
        let scorer: &dyn Scorer = &c;
        let data = hierarchical_data();
        let scores = scorer.score_matrix(&data).unwrap();
        let tree_scores = m.score_matrix(&data).unwrap();
        for (a, b) in scores.iter().zip(&tree_scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
