//! Hot-reload: a spool-watching deployment loop over the registry.
//!
//! The deployment story so far required an operator (or bespoke daemon
//! code) to notice a new artifact, validate it, and call
//! [`EngineRegistry::deploy`]/[`EngineRegistry::swap`] by hand.
//! [`SpoolWatcher`] closes that loop: point it at a **spool directory**
//! of bundle files and it keeps the registry in sync with the directory
//! contents —
//!
//! ```text
//!  spool dir          SpoolWatcher::poll_once              EngineRegistry
//!  ─────────          ─────────────────────────            ──────────────
//!  a.bundle   new  →  mmap → validate once → decode   →    deploy "a"
//!  b.bundle  changed→  mmap → validate once → decode   →   swap "b"
//!                      └ StreamState transplanted:          (warm k·σ)
//!  c.bundle  removed→                                       retire "c"
//!  d.bundle  corrupt→  typed ServeError, NO deploy:         "d" keeps
//!                      Rejected event                       serving
//! ```
//!
//! * **Poll-based, std-only.** A scan stats every `*.bundle` file and
//!   compares an `(mtime, len)` fingerprint — portable across unix
//!   filesystems with no inotify/kqueue dependency, and cheap enough to
//!   run sub-second ([`SpoolWatcher::run`] sleeps between scans).
//!   Writers should publish atomically (write to a temp name, then
//!   `rename(2)` into the spool); a half-written file that does get
//!   scanned fails checksum validation, is reported as
//!   [`SpoolEvent::Rejected`], and is rescanned when its fingerprint
//!   changes again.
//! * **A bad bundle never evicts a serving engine.** Validation
//!   (checksum + structural, run **once** via [`SnapshotView::parse`])
//!   and decode ([`Engine::from_view`]) happen entirely before the
//!   registry is touched; any typed [`ServeError`] becomes a
//!   [`SpoolEvent::Rejected`] and the tenant's current engine keeps
//!   serving untouched.
//! * **Baselines survive swaps.** A changed bundle is swapped in with
//!   [`EngineRegistry::swap_carrying`]: the old engine's adaptive
//!   [`StreamState`] is transplanted onto
//!   the new engine before it becomes visible, so the `mean + k·σ`
//!   threshold stays warm across a model refresh
//!   ([`SpoolWatcher::with_carry_baseline`] opts out).
//! * **Mappings are dropped promptly.** Each poll maps an artifact only
//!   for the validate+decode window; the engine deployed into the
//!   registry owns its tables, so neither the watcher nor the registry
//!   pins the mmap (or the file) afterwards — an artifact can be
//!   replaced or deleted the moment its poll completes, and
//!   [`EngineRegistry::retire`] frees the engine as soon as in-flight
//!   work drains.
//!
//! Tenant names are the file stems: `edge-eu.bundle` serves tenant
//! `edge-eu`. See `examples/serve_daemon.rs` for the full daemon shape
//! (spool → watch → swap mid-stream with a warm threshold).

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use detect::prelude::StreamState;

use crate::engine::Engine;
use crate::mmap::MappedFile;
use crate::registry::EngineRegistry;
use crate::snapshot::SnapshotView;
use crate::ServeError;

/// Default spool file extension the watcher reacts to.
pub const DEFAULT_EXTENSION: &str = "bundle";

/// Default sleep between [`SpoolWatcher::run`] scans.
pub const DEFAULT_POLL_INTERVAL: Duration = Duration::from_millis(250);

/// How many consecutive polls a **transient** per-file failure (I/O
/// error, tenant retired mid-apply) is retried before the file's
/// fingerprint is pinned like a content failure. Bounds the event spam
/// and syscall churn of a persistently unreadable file to a handful of
/// rejections, while still riding out scan races and brief blips;
/// touching the file (fingerprint change) always retries again.
pub const MAX_TRANSIENT_RETRIES: u32 = 3;

/// Change-detection fingerprint of a spool file. mtime alone misses
/// same-second rewrites on coarse-granularity filesystems; the length
/// catches most of those, and an atomic-rename publishing workflow
/// (recommended) always changes the inode's mtime anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    len: u64,
    mtime: Option<SystemTime>,
}

impl Fingerprint {
    fn of(meta: &std::fs::Metadata) -> Self {
        Fingerprint {
            len: meta.len(),
            mtime: meta.modified().ok(),
        }
    }
}

/// One registry-affecting outcome of a spool scan.
#[derive(Debug)]
#[non_exhaustive]
pub enum SpoolEvent {
    /// A new bundle file was validated and deployed as a new tenant.
    Deployed {
        /// Tenant name (the file stem).
        tenant: String,
        /// The bundle file.
        path: PathBuf,
    },
    /// A changed bundle file was validated and swapped in for an
    /// existing tenant.
    Swapped {
        /// Tenant name (the file stem).
        tenant: String,
        /// The bundle file.
        path: PathBuf,
        /// The **exact** adaptive baseline the swap transplanted onto
        /// the new engine (the state exported from the old engine and
        /// accepted by the new one — see
        /// [`EngineRegistry::swap_carrying`]). With
        /// [`SpoolWatcher::with_carry_baseline`] off, this is the old
        /// engine's final state at swap time, reported for logging only.
        carried: StreamState,
    },
    /// A bundle file disappeared and its tenant was retired.
    Retired {
        /// Tenant name (the file stem).
        tenant: String,
        /// The path the tenant was deployed from.
        path: PathBuf,
    },
    /// A new or changed bundle failed validation or decode. The
    /// tenant's **current engine keeps serving** — a bad artifact never
    /// evicts a good one. Content-determined failures (bad magic,
    /// checksum, malformed structure, not-a-bundle) are not retried
    /// until the file's fingerprint changes; **transient** failures
    /// (I/O errors such as an open racing a replacement, a tenant
    /// retired mid-apply) are retried on the next polls, up to
    /// [`MAX_TRANSIENT_RETRIES`] times per fingerprint.
    Rejected {
        /// The offending file.
        path: PathBuf,
        /// Why it was rejected.
        error: ServeError,
    },
    /// A whole scan failed (e.g. the spool directory vanished). The
    /// registry is untouched; [`SpoolWatcher::run`] keeps polling.
    ScanFailed {
        /// The scan error.
        error: ServeError,
    },
}

impl SpoolEvent {
    /// Stable machine-readable name of the event kind — the label an
    /// operator surface (structured log line, per-event metrics counter)
    /// tags watcher activity with. One of `"deployed"`, `"swapped"`,
    /// `"retired"`, `"rejected"`, `"scan_failed"`; future variants get
    /// their own snake_case names.
    pub fn kind(&self) -> &'static str {
        match self {
            SpoolEvent::Deployed { .. } => "deployed",
            SpoolEvent::Swapped { .. } => "swapped",
            SpoolEvent::Retired { .. } => "retired",
            SpoolEvent::Rejected { .. } => "rejected",
            SpoolEvent::ScanFailed { .. } => "scan_failed",
        }
    }

    /// The tenant the event concerns, when one can be named:
    /// deploy/swap/retire carry the tenant directly, and a rejected
    /// bundle is attributed to the tenant its file stem names (it never
    /// reached the registry, but the operator wants the rejection
    /// counted against that tenant). `None` for scan-level events.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            SpoolEvent::Deployed { tenant, .. }
            | SpoolEvent::Swapped { tenant, .. }
            | SpoolEvent::Retired { tenant, .. } => Some(tenant),
            SpoolEvent::Rejected { path, .. } => path.file_stem().and_then(|s| s.to_str()),
            SpoolEvent::ScanFailed { .. } => None,
        }
    }
}

/// Watches a spool directory of bundle files and keeps an
/// [`EngineRegistry`] in sync with it — see the [module docs](self).
#[derive(Debug)]
pub struct SpoolWatcher {
    registry: Arc<EngineRegistry>,
    dir: PathBuf,
    extension: String,
    interval: Duration,
    carry_baseline: bool,
    retire_missing: bool,
    known: HashMap<PathBuf, Fingerprint>,
    /// Transient-failure retry counts, each valid for the fingerprint it
    /// was recorded against (see [`MAX_TRANSIENT_RETRIES`]).
    retrying: HashMap<PathBuf, (Fingerprint, u32)>,
}

impl SpoolWatcher {
    /// A watcher over `dir`, deploying into `registry`, with the default
    /// `.bundle` extension, baseline carry **on**, retire-on-removal
    /// **on** and the default poll interval.
    pub fn new<P: Into<PathBuf>>(registry: Arc<EngineRegistry>, dir: P) -> Self {
        SpoolWatcher {
            registry,
            dir: dir.into(),
            extension: DEFAULT_EXTENSION.to_string(),
            interval: DEFAULT_POLL_INTERVAL,
            carry_baseline: true,
            retire_missing: true,
            known: HashMap::new(),
            retrying: HashMap::new(),
        }
    }

    /// Replaces the spool file extension (without the dot).
    #[must_use]
    pub fn with_extension(mut self, extension: &str) -> Self {
        self.extension = extension.trim_start_matches('.').to_string();
        self
    }

    /// Replaces the sleep between [`SpoolWatcher::run`] scans.
    #[must_use]
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Whether a swap transplants the old engine's adaptive baseline
    /// onto the new engine (default `true`; `false` cold-starts the
    /// `mean + k·σ` threshold on every refresh).
    #[must_use]
    pub fn with_carry_baseline(mut self, carry: bool) -> Self {
        self.carry_baseline = carry;
        self
    }

    /// Whether removing a bundle file retires its tenant (default
    /// `true`; `false` leaves the last deployed engine serving).
    #[must_use]
    pub fn with_retire_missing(mut self, retire: bool) -> Self {
        self.retire_missing = retire;
        self
    }

    /// The registry this watcher deploys into.
    pub fn registry(&self) -> &Arc<EngineRegistry> {
        &self.registry
    }

    /// The sleep between [`SpoolWatcher::run`] scans.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// One synchronous scan of the spool directory: discover new,
    /// changed and removed bundle files and apply them to the registry.
    /// Returns the events in the order they were applied (scan order is
    /// directory order; removals come last). An empty vector means the
    /// spool matched the registry already — the steady-state cost is one
    /// `readdir` plus one `stat` per file, no I/O on the payloads.
    ///
    /// If the directory listing fails **mid-iteration** (after registry
    /// changes may already have been applied), those changes' events are
    /// **not** lost: the scan stops, a [`SpoolEvent::ScanFailed`] is
    /// appended to the events applied so far, and — because the listing
    /// is incomplete — the removal pass is skipped for this poll (a live
    /// tenant whose file simply was not listed must not be retired).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be opened at all (no
    /// registry change has happened, so no event can be lost). Per-file
    /// failures are **not** errors of the scan: they surface as
    /// [`SpoolEvent::Rejected`] events and never touch the registry.
    pub fn poll_once(&mut self) -> Result<Vec<SpoolEvent>, ServeError> {
        let mut events = Vec::new();
        let mut present: HashSet<PathBuf> = HashSet::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = match entry {
                Ok(entry) => entry.path(),
                Err(error) => {
                    // Mid-listing failure: keep every event already
                    // applied and skip the removal pass (see above).
                    events.push(SpoolEvent::ScanFailed {
                        error: error.into(),
                    });
                    return Ok(events);
                }
            };
            if path.extension().and_then(|e| e.to_str()) != Some(self.extension.as_str()) {
                continue;
            }
            // A file deleted between readdir and stat is just "absent
            // this scan"; the removal pass below handles it.
            let Ok(meta) = std::fs::metadata(&path) else {
                continue;
            };
            if !meta.is_file() {
                continue;
            }
            let fingerprint = Fingerprint::of(&meta);
            present.insert(path.clone());
            if self.known.get(&path) == Some(&fingerprint) {
                continue;
            }
            match self.apply(&path) {
                Ok(event) => {
                    events.push(event);
                    self.retrying.remove(&path);
                    self.known.insert(path, fingerprint);
                }
                Err(error) => {
                    // Content-determined rejections are fingerprinted so
                    // a bad bundle is not re-validated every poll
                    // (replacing it changes the fingerprint and triggers
                    // a rescan). Transient failures — a valid bundle
                    // whose open raced a replacement, a momentary I/O
                    // error, a tenant retired mid-apply — are retried,
                    // but only [`MAX_TRANSIENT_RETRIES`] times per
                    // fingerprint: a *persistently* unreadable file
                    // (EACCES, stale NFS handle) must not spam a
                    // rejection and a wasted open on every poll forever.
                    // After the budget, the fingerprint is pinned like a
                    // content failure (touching the file retries again).
                    let retry = transient(&error) && {
                        let attempts = match self.retrying.get(&path) {
                            Some(&(fp, n)) if fp == fingerprint => n + 1,
                            _ => 1,
                        };
                        self.retrying.insert(path.clone(), (fingerprint, attempts));
                        attempts <= MAX_TRANSIENT_RETRIES
                    };
                    if !retry {
                        self.retrying.remove(&path);
                        self.known.insert(path.clone(), fingerprint);
                    }
                    events.push(SpoolEvent::Rejected { path, error });
                }
            }
        }
        // Bookkeeping for vanished files is pruned unconditionally —
        // long-running daemons with rotating artifact names must not
        // accumulate stale fingerprint or retry entries; only the
        // registry-side retirement is opt-out.
        let gone: HashSet<PathBuf> = self
            .known
            .keys()
            .chain(self.retrying.keys())
            .filter(|p| !present.contains(*p))
            .cloned()
            .collect();
        for path in gone {
            self.known.remove(&path);
            self.retrying.remove(&path);
            if !self.retire_missing {
                continue;
            }
            let Ok(tenant) = tenant_name(&path) else {
                continue;
            };
            // A rejected bundle was tracked but never deployed;
            // UnknownTenant here is the expected no-op.
            if self.registry.retire(&tenant).is_ok() {
                events.push(SpoolEvent::Retired { tenant, path });
            }
        }
        Ok(events)
    }

    /// Validate + decode one new/changed bundle and deploy or swap it.
    /// Every failure leaves the registry exactly as it was.
    fn apply(&self, path: &Path) -> Result<SpoolEvent, ServeError> {
        let tenant = tenant_name(path)?;
        // Map the artifact, run the one-time zero-copy validation, and
        // decode the engine out of the same mapped bytes without
        // re-validating (`Engine::from_view`). The mapping dies at the
        // end of this scope: the deployed engine owns its tables, so
        // nothing pins the file afterwards.
        let mapped = MappedFile::open(path)?;
        let view = SnapshotView::parse(&mapped)?;
        let engine = Engine::from_view(&view)?;
        if self.registry.get(&tenant).is_ok() {
            let carried = if self.carry_baseline {
                let (_old, carried) = self.registry.swap_carrying(&tenant, engine)?;
                carried
            } else {
                self.registry.swap(&tenant, engine)?.stream_state()
            };
            Ok(SpoolEvent::Swapped {
                tenant,
                path: path.to_path_buf(),
                carried,
            })
        } else {
            self.registry.deploy(&tenant, engine);
            Ok(SpoolEvent::Deployed {
                tenant,
                path: path.to_path_buf(),
            })
        }
    }

    /// The daemon loop: poll, report, sleep, until `stop` is set. Scan
    /// failures (spool directory briefly missing, transient I/O) are
    /// reported as [`SpoolEvent::ScanFailed`] and polling continues —
    /// the watcher wedges on nothing short of `stop`. The sleep is
    /// sliced so a `stop` request takes effect within ~50 ms even with a
    /// long poll interval.
    pub fn run(&mut self, stop: &AtomicBool, mut on_event: impl FnMut(SpoolEvent)) {
        const SLICE: Duration = Duration::from_millis(50);
        while !stop.load(Ordering::Relaxed) {
            match self.poll_once() {
                Ok(events) => events.into_iter().for_each(&mut on_event),
                Err(error) => on_event(SpoolEvent::ScanFailed { error }),
            }
            let wake = Instant::now() + self.interval;
            while !stop.load(Ordering::Relaxed) && Instant::now() < wake {
                std::thread::sleep(SLICE.min(wake.saturating_duration_since(Instant::now())));
            }
        }
    }
}

/// Whether a bundle failure is plausibly transient — i.e. retrying the
/// same bytes could succeed — rather than determined by the file's
/// content. Transient failures are retried up to
/// [`MAX_TRANSIENT_RETRIES`] polls; content failures wait for the
/// fingerprint to change.
fn transient(error: &ServeError) -> bool {
    matches!(error, ServeError::Io(_) | ServeError::UnknownTenant(_))
}

/// Tenant name of a spool path: the UTF-8 file stem.
fn tenant_name(path: &Path) -> Result<String, ServeError> {
    path.file_stem()
        .and_then(|s| s.to_str())
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .ok_or(ServeError::Malformed(
            "spool file name is not valid UTF-8 (tenant names are file stems)",
        ))
}

/// Publishes bundle bytes into a spool directory the way every writer
/// should: write to a hidden temp file, then atomically rename onto
/// `{tenant}.bundle`. A watcher polling the directory observes either
/// the previous bundle or the complete new one — never a torn write.
/// This is the local form of the fleet replication path (`ghsom-comms`
/// stages and verifies over TCP, then performs this same rename).
///
/// Returns the published path.
///
/// # Errors
///
/// [`ServeError::Malformed`] when `tenant` is empty, hidden (leading
/// `.`), or contains path separators/NUL; [`ServeError::Io`] when the
/// write or rename fails.
pub fn publish_bundle(spool: &Path, tenant: &str, bytes: &[u8]) -> Result<PathBuf, ServeError> {
    if tenant.is_empty() || tenant.starts_with('.') || tenant.contains(['/', '\\', '\0']) {
        return Err(ServeError::Malformed(
            "tenant must be a non-hidden file stem without path separators",
        ));
    }
    let tmp = spool.join(format!(".{tenant}.tmp"));
    std::fs::write(&tmp, bytes)?;
    let target = spool.join(format!("{tenant}.bundle"));
    if let Err(e) = std::fs::rename(&tmp, &target) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use ghsom_core::GhsomConfig;

    fn tiny_engine(seed: u64) -> Engine {
        let (train, _) = traffic::synth::kdd_train_test(300, 10, seed).unwrap();
        let config = EngineConfig::default()
            .with_ghsom(GhsomConfig::default().with_epochs(2, 1).with_seed(seed))
            .with_stream(4.0, 20);
        Engine::fit(&config, &train).unwrap()
    }

    fn temp_spool(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ghsom_watch_{tag}_{}", std::process::id(),));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Publish the way a real writer should: temp file + atomic rename.
    fn publish(spool: &Path, tenant: &str, bytes: &[u8]) {
        publish_bundle(spool, tenant, bytes).unwrap();
    }

    #[test]
    fn publish_bundle_rejects_hostile_tenants_and_leaves_no_temp() {
        let spool = temp_spool("publish_bundle");
        for bad in ["", ".hidden", "a/b", "a\\b", "a\0b"] {
            assert!(publish_bundle(&spool, bad, b"x").is_err(), "{bad:?}");
        }
        let path = publish_bundle(&spool, "ok", b"bytes").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"bytes");
        let hidden: Vec<_> = std::fs::read_dir(&spool)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with('.'))
            .collect();
        assert!(hidden.is_empty(), "{hidden:?}");
    }

    #[test]
    fn discovers_deploys_swaps_and_retires() {
        let spool = temp_spool("lifecycle");
        let registry = Arc::new(EngineRegistry::new());
        let mut watcher = SpoolWatcher::new(Arc::clone(&registry), &spool);

        // Empty spool: no events, empty registry.
        assert!(watcher.poll_once().unwrap().is_empty());
        assert!(registry.is_empty());

        // New file → deploy.
        publish(&spool, "edge", &tiny_engine(1).to_bytes());
        let events = watcher.poll_once().unwrap();
        assert!(
            matches!(&events[..], [SpoolEvent::Deployed { tenant, .. }] if tenant == "edge"),
            "{events:?}"
        );
        let first = registry.get("edge").unwrap();

        // Unchanged spool: steady state, no events, same engine.
        assert!(watcher.poll_once().unwrap().is_empty());
        assert!(Arc::ptr_eq(&first, &registry.get("edge").unwrap()));

        // Changed file → swap (a different engine generation).
        publish(&spool, "edge", &tiny_engine(2).to_bytes());
        let events = watcher.poll_once().unwrap();
        assert!(
            matches!(&events[..], [SpoolEvent::Swapped { tenant, .. }] if tenant == "edge"),
            "{events:?}"
        );
        assert!(!Arc::ptr_eq(&first, &registry.get("edge").unwrap()));

        // Removed file → retire.
        std::fs::remove_file(spool.join("edge.bundle")).unwrap();
        let events = watcher.poll_once().unwrap();
        assert!(
            matches!(&events[..], [SpoolEvent::Retired { tenant, .. }] if tenant == "edge"),
            "{events:?}"
        );
        assert!(registry.is_empty());
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn swap_carries_the_streaming_baseline() {
        let spool = temp_spool("carry");
        let registry = Arc::new(EngineRegistry::new());
        let mut watcher = SpoolWatcher::new(Arc::clone(&registry), &spool);

        publish(&spool, "t", &tiny_engine(3).to_bytes());
        watcher.poll_once().unwrap();
        let (_, traffic) = traffic::synth::kdd_train_test(10, 50, 4).unwrap();
        registry.observe_records("t", traffic.records()).unwrap();
        let before = registry.get("t").unwrap().stream_state();
        assert!(before.seen == 50);

        publish(&spool, "t", &tiny_engine(5).to_bytes());
        let events = watcher.poll_once().unwrap();
        match &events[..] {
            [SpoolEvent::Swapped { carried, .. }] => {
                assert_eq!(carried.seen, before.seen);
                assert_eq!(carried.tracked, before.tracked);
            }
            other => panic!("expected a swap, got {other:?}"),
        }
        // The new engine resumed from the old baseline bit-identically.
        assert_eq!(registry.get("t").unwrap().stream_state(), before);
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn bad_bundles_never_evict_the_serving_engine() {
        let spool = temp_spool("reject");
        let registry = Arc::new(EngineRegistry::new());
        let mut watcher = SpoolWatcher::new(Arc::clone(&registry), &spool);

        publish(&spool, "t", &tiny_engine(6).to_bytes());
        watcher.poll_once().unwrap();
        let serving = registry.get("t").unwrap();

        // Corrupt replacement: payload bit flip (checksum catches it).
        let mut corrupt = tiny_engine(7).to_bytes();
        let at = corrupt.len() - 5;
        corrupt[at] ^= 0x01;
        publish(&spool, "t", &corrupt);
        let events = watcher.poll_once().unwrap();
        assert!(
            matches!(
                &events[..],
                [SpoolEvent::Rejected {
                    error: ServeError::ChecksumMismatch { .. },
                    ..
                }]
            ),
            "{events:?}"
        );
        // The old engine is still the serving one…
        assert!(Arc::ptr_eq(&serving, &registry.get("t").unwrap()));
        // …and the bad file is not re-validated on the next poll.
        assert!(watcher.poll_once().unwrap().is_empty());

        // Garbage for a brand-new tenant is rejected without a deploy.
        publish(&spool, "new", b"definitely not a snapshot");
        let events = watcher.poll_once().unwrap();
        assert!(matches!(&events[..], [SpoolEvent::Rejected { .. }]));
        assert_eq!(registry.len(), 1);

        // A model-only (version 1) snapshot is typed NotABundle.
        publish(
            &spool,
            "modelonly",
            &crate::snapshot::tests_support::compiled_fixture().to_bytes(),
        );
        let events = watcher.poll_once().unwrap();
        assert!(
            matches!(
                &events[..],
                [SpoolEvent::Rejected {
                    error: ServeError::NotABundle { version: 1 },
                    ..
                }]
            ),
            "{events:?}"
        );
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn scan_failure_is_an_event_not_a_wedge() {
        let spool = temp_spool("gone");
        let registry = Arc::new(EngineRegistry::new());
        let mut watcher =
            SpoolWatcher::new(registry, &spool).with_interval(Duration::from_millis(1));
        std::fs::remove_dir_all(&spool).unwrap();
        assert!(matches!(
            watcher.poll_once().unwrap_err(),
            ServeError::Io(_)
        ));
        // The run loop reports it and keeps going until stopped.
        let stop = AtomicBool::new(false);
        let mut saw_scan_failure = false;
        // Bounded by the stop flag we set from within the callback.
        watcher.run(&stop, |event| {
            if matches!(event, SpoolEvent::ScanFailed { .. }) {
                saw_scan_failure = true;
                stop.store(true, Ordering::Relaxed);
            }
        });
        assert!(saw_scan_failure);
    }

    #[test]
    fn non_bundle_files_and_subdirs_are_ignored() {
        let spool = temp_spool("ignore");
        let registry = Arc::new(EngineRegistry::new());
        let mut watcher = SpoolWatcher::new(Arc::clone(&registry), &spool);
        std::fs::write(spool.join("README.txt"), b"not a bundle").unwrap();
        std::fs::create_dir(spool.join("archive.bundle")).unwrap();
        assert!(watcher.poll_once().unwrap().is_empty());
        assert!(registry.is_empty());
        std::fs::remove_dir_all(&spool).ok();
    }
}
