//! # ghsom-serve — the compiled inference plane
//!
//! Training and serving want different data structures. Training grows a
//! tree of [`ghsom_core::MapNode`]s, each owning its own codebook, cache
//! and stats — flexible, mutable, pointer-rich. Detection is pure
//! inference over a **frozen** hierarchy: project each record root→leaf,
//! read the leaf key and quantization error. This crate is the serving
//! side of that split:
//!
//! * [`Engine`] — the one-artifact serving facade: fitted feature
//!   pipeline + compiled arena + fitted detector + adaptive streaming
//!   layer behind one API (`score_record` / `score_records` / `observe`),
//!   persisted as a single **bundle** snapshot
//!   ([`Engine::save`]/[`Engine::load`]; see [`engine`] for the layout).
//! * [`EngineRegistry`] — named multi-tenant engines with zero-downtime
//!   [`EngineRegistry::swap`] rollover for long-running daemons, and
//!   baseline-carrying [`EngineRegistry::swap_carrying`] so adaptive
//!   thresholds survive a refresh.
//! * [`SpoolWatcher`] ([`watch`]) — hot-reload: poll a spool directory
//!   of bundles, validate zero-copy, and deploy/swap/retire tenants
//!   automatically; a bad artifact never evicts a serving engine.
//! * [`ShardedEngine`] ([`shard`]) — the multi-core serving plane:
//!   batches scatter across worker shards and merge back **bit-identical**
//!   to the single-engine path, including the adaptive streaming state.
//! * [`CompiledGhsom`] — an immutable, flattened arena compiled from a
//!   trained [`ghsom_core::GhsomModel`] ([`Compile::compile`]), with
//!   projections **bit-identical** to the tree's.
//! * A **versioned binary snapshot format** ([`snapshot`]) with
//!   [`CompiledGhsom::save`]/[`CompiledGhsom::load`], plus the zero-copy
//!   [`SnapshotView`] for memory-mapped model files ([`MappedFile`]).
//! * Both hierarchy representations implement [`ghsom_core::Scorer`], so
//!   every detector in the `detect` crate serves from either.
//!
//! # Arena layout
//!
//! All per-map data is concatenated into flat tables in node order (the
//! breadth-first creation order of training; root = 0), addressed through
//! two prefix-sum offset tables:
//!
//! ```text
//! per map m (map_count = n):
//!   rows[m], cols[m]          grid shape                      (u32)
//!   depth[m]                  hierarchy depth, root = 1       (u32)
//!   parent_node/unit[m]       upward link, NO_LINK for root   (u32)
//!   unit_off[m..=m+1]         global-unit range of map m      (u64, n+1 entries)
//!   wt_off[m..=m+1]           arena range of map m            (u64, n+1 entries)
//!
//! per global unit u (total_units = unit_off[n]):
//!   children[u]               child node or NO_LINK, original order (u32)
//!   unit_hits[u]              training hits, original order         (u64)
//!   unit_mqe[u]               training mean QE, original order      (f64)
//!   wn_half[u]                ‖w‖²/2 half-norm, ASCENDING per map   (f64)
//!   perm[u]                   packed position → original unit       (u32)
//!
//! codebook arena:
//!   wt[wt_off[m]..wt_off[m+1]]  map m's codebook in the group-tiled
//!                               transposed layout of mathkit::batch::pack_codebook
//!                               (GROUP = 8 units per tile, zero-padded tail),
//!                               units reordered ascending by norm
//! ```
//!
//! Projection is an arena walk: slice `wt`/`wn_half`/`perm` for the
//! current map, run the **norm-pruned** Gram-trick search
//! ([`mathkit::batch::gram_nearest_block_pruned`]: seed at the group
//! whose norm band brackets `‖x‖`, expand outward, stop when the
//! triangle-inequality bound `‖x−w‖ ≥ |‖x‖−‖w‖|` proves the rest worse
//! than the running best — results stay exactly the exhaustive scan's,
//! including ties, thanks to a conservative rounding slack and
//! lexicographic `(distance, original index)` selection), then follow
//! `children`. No node structs, no per-map norm-cache checks — the
//! half-norms and the norm ordering were baked in at compile time — and
//! bulk scoring never materializes intermediate matrices: the root level
//! runs directly on the caller's buffer.
//!
//! # Snapshot wire format (version 1)
//!
//! All integers and floats are **little-endian**; `f64` is the IEEE-754
//! bit pattern (exact roundtrip, including negative zero).
//!
//! ```text
//! offset  size  field
//!      0     8  magic "GHSOMSNP"
//!      8     4  format version (u32) — readers reject unknown versions
//!     12     4  section count (u32)
//!     16     8  total snapshot length in bytes (u64)
//!     24     8  FNV-1a-64 checksum of bytes [32, total_len) (u64)
//!     32   24×k section table: { id: u32, reserved: u32,
//!                                offset: u64, len: u64 } per section
//!      …        section payloads, each 8-byte aligned, zero-padded gaps
//! ```
//!
//! Section ids 1–15 carry, in order: META (dim, node count, total units,
//! mqe₀), MEAN, ROWS, COLS, DEPTH, PARENT_NODE, PARENT_UNIT, UNIT_OFF,
//! WT_OFF, CHILDREN, UNIT_HITS, UNIT_MQE, WN_HALF, the WT codebook arena
//! and PERM — exactly the tables above. Offsets are absolute and 8-byte
//! aligned so a mapped file can serve `f64`/`u64` sections in place.
//! **Engine bundles** (version 2, [`snapshot::BUNDLE_VERSION`]) carry the
//! same 15 sections plus the required PIPELINE (id 16) and DETECTOR
//! (id 17) sections — see [`engine`] for their layout — and optionally
//! the STREAM (id 18) section with the live adaptive baseline
//! ([`Engine::to_bytes_with_stream`]; absent section ⇒ cold start).
//!
//! **Versioning policy.** Incompatible layout changes bump the version and
//! old readers reject the file with a typed error; *adding* an optional
//! section id does not (unknown ids are skipped). Model-only version-1
//! snapshots keep loading everywhere; bundle-aware readers accept both
//! versions. Truncation is caught by the declared total length, bit rot by
//! the checksum, and everything that parses is structurally validated
//! (link symmetry, forward-only child edges, shape/offset consistency,
//! finite arena values) before the first walk — hostile bytes cannot panic
//! the process or run the walker out of bounds.
//!
//! # Example
//!
//! ```
//! use ghsom_core::{GhsomConfig, GhsomModel};
//! use ghsom_serve::{Compile, CompiledGhsom};
//! use mathkit::Matrix;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = Matrix::from_rows(
//!     (0..60).map(|i| vec![(i % 6) as f64, (i % 3) as f64]).collect(),
//! )?;
//! let model = GhsomModel::train(&GhsomConfig::default(), &data)?;
//!
//! // Compile for serving: bit-identical projections, flat arena.
//! let compiled = model.compile()?;
//! let snapshot = compiled.to_bytes();
//! let reloaded = CompiledGhsom::from_bytes(&snapshot)?;
//! let x = data.row(0);
//! assert_eq!(
//!     model.project(x)?.leaf_qe().to_bits(),
//!     reloaded.project(x)?.leaf_qe().to_bits(),
//! );
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)] // two documented islands: snapshot::cast and mmap, allowed locally
#![deny(unsafe_op_in_unsafe_fn)] // inside the islands, every unsafe op needs its own block + SAFETY
#![warn(missing_docs)]

pub mod compiled;
pub mod engine;
pub mod error;
pub mod mmap;
pub mod registry;
pub mod shard;
pub mod snapshot;
pub mod watch;

pub use compiled::{Compile, CompiledGhsom};
pub use engine::{Engine, EngineBuilder, EngineConfig};
pub use error::ServeError;
pub use mmap::MappedFile;
pub use registry::EngineRegistry;
pub use shard::ShardedEngine;
pub use snapshot::SnapshotView;
pub use watch::{publish_bundle, SpoolEvent, SpoolWatcher};
