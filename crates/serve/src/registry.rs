//! Hot-swappable multi-tenant engine registry.
//!
//! A long-running detection daemon serves many tenants (networks, sites,
//! customers), each with its own fitted [`Engine`], and models roll over
//! while traffic keeps flowing. [`EngineRegistry`] is the piece between
//! the ingest loop and the engines:
//!
//! * **Named tenants** — engines are deployed under string names;
//!   [`EngineRegistry::get`] hands out an `Arc<Engine>` to score against.
//! * **Swap-based rollover** — [`EngineRegistry::swap`] atomically
//!   replaces a tenant's engine behind the same name. In-flight work
//!   holds its own `Arc` and finishes on the engine it started with; the
//!   next `get` sees the new one. Nothing is torn down until the last
//!   reference drops — **zero downtime**.
//! * **Cheap reads** — each tenant slot is an `Arc` swapped under a
//!   reader–writer lock that is held only for the pointer clone (a
//!   refcount bump), never during scoring. A swap therefore never waits
//!   on in-flight scoring, and scoring never waits on a swap beyond that
//!   pointer exchange; the concurrency test in `tests/engine_bundle.rs`
//!   exercises exactly this (continuous `score_record` traffic while
//!   another thread swaps engines mid-stream).
//!
//! The registry is `Sync`: share one instance (`Arc<EngineRegistry>` or a
//! plain borrow from scoped threads) between ingest threads and a control
//! plane doing deploy/retire/swap.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::engine::Engine;
use crate::ServeError;

/// One tenant's current engine. The slot outlives individual engines:
/// readers resolve the slot once and re-read the pointer per record
/// batch, so a swap becomes visible mid-stream.
#[derive(Debug)]
struct TenantSlot {
    engine: RwLock<Arc<Engine>>,
}

impl TenantSlot {
    fn current(&self) -> Arc<Engine> {
        self.engine.read().clone()
    }

    fn swap(&self, engine: Arc<Engine>) -> Arc<Engine> {
        std::mem::replace(&mut *self.engine.write(), engine)
    }
}

/// Named, hot-swappable engines for multi-tenant serving.
///
/// # Example
///
/// ```
/// use ghsom_serve::{Engine, EngineConfig, EngineRegistry};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (train, test) = traffic::synth::kdd_train_test(500, 50, 1)?;
/// let registry = EngineRegistry::new();
/// registry.deploy("edge-eu", Engine::fit(&EngineConfig::default(), &train)?);
///
/// let verdict = registry.score_record("edge-eu", &test.records()[0])?;
/// # let _ = verdict.anomalous;
///
/// // Zero-downtime rollover: traffic between the two calls keeps
/// // scoring on whichever engine its Arc points at.
/// let retrained = Engine::fit(&EngineConfig::default(), &train)?;
/// let old = registry.swap("edge-eu", retrained)?;
/// # let _ = old;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct EngineRegistry {
    tenants: RwLock<HashMap<String, Arc<TenantSlot>>>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploys `engine` under `name`, creating the tenant or replacing
    /// its current engine. Returns the replaced engine, if any (callers
    /// can drain stats from it before dropping the last reference).
    pub fn deploy(&self, name: &str, engine: Engine) -> Option<Arc<Engine>> {
        let engine = Arc::new(engine);
        let mut tenants = self.tenants.write();
        match tenants.get(name) {
            Some(slot) => Some(slot.swap(engine)),
            None => {
                tenants.insert(
                    name.to_string(),
                    Arc::new(TenantSlot {
                        engine: RwLock::new(engine),
                    }),
                );
                None
            }
        }
    }

    /// Replaces the engine of an **existing** tenant and returns the
    /// retired one. Concurrent [`EngineRegistry::score_record`] /
    /// [`EngineRegistry::get`] calls are never blocked beyond the pointer
    /// exchange: in-flight scoring finishes on the old engine, the next
    /// lookup serves the new one.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when no engine is deployed under
    /// `name` (use [`EngineRegistry::deploy`] to create tenants — a swap
    /// that silently creates one would hide rollout typos).
    pub fn swap(&self, name: &str, engine: Engine) -> Result<Arc<Engine>, ServeError> {
        let slot = self.slot(name)?;
        Ok(slot.swap(Arc::new(engine)))
    }

    /// [`EngineRegistry::swap`] with a **baseline transplant**: before
    /// the new engine becomes visible, the old engine's adaptive
    /// streaming state ([`Engine::stream_state`]) is restored onto it,
    /// so the `mean + k·σ` threshold (and warmup progress) survives the
    /// model refresh instead of cold-starting. Returns the retired
    /// engine **and the exact state that was transplanted**.
    ///
    /// The export and import run *before* the slot lock is touched, so
    /// the registry's no-blocking contract is intact: scoring never
    /// waits on a swap beyond the pointer exchange, even while the
    /// export waits out an in-flight `observe` batch on the old
    /// engine's state lock. The trade: records streamed to the old
    /// engine **between the export and the pointer swap** do not make
    /// it into the carried baseline — the same bounded, in-flight-sized
    /// loss any non-stop-the-world handover has.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] for unknown names. A failed
    /// transplant ([`ServeError::StreamState`] — cannot happen for a
    /// state freshly exported from a live engine, but the path stays
    /// total) leaves the **old engine serving**: the swap only happens
    /// after the new engine accepted the baseline.
    pub fn swap_carrying(
        &self,
        name: &str,
        engine: Engine,
    ) -> Result<(Arc<Engine>, detect::prelude::StreamState), ServeError> {
        let slot = self.slot(name)?;
        let carried = slot.current().stream_state();
        engine.restore_stream(carried)?;
        Ok((slot.swap(Arc::new(engine)), carried))
    }

    /// Removes a tenant entirely and returns its final engine. In-flight
    /// references stay valid; new lookups fail with
    /// [`ServeError::UnknownTenant`].
    ///
    /// The registry drops **all** of its own references (slot and
    /// engine) before returning: once the caller drops the returned
    /// `Arc` and in-flight work drains, the engine — and anything its
    /// deployment pinned, such as a mapped artifact — is freed
    /// immediately, not parked until some later deploy touches the slot
    /// (regression-tested below).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when no engine is deployed under
    /// `name`.
    pub fn retire(&self, name: &str) -> Result<Arc<Engine>, ServeError> {
        let slot = self
            .tenants
            .write()
            .remove(name)
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))?;
        let engine = slot.current();
        // Explicit: the removed slot (and its engine reference) dies
        // here, not at some caller-visible later point.
        drop(slot);
        Ok(engine)
    }

    /// The current engine of a tenant (an `Arc` clone — hold it across a
    /// batch, re-`get` per batch to pick up swaps).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when no engine is deployed under
    /// `name`.
    pub fn get(&self, name: &str) -> Result<Arc<Engine>, ServeError> {
        Ok(self.slot(name)?.current())
    }

    /// A [`ShardedEngine`](crate::ShardedEngine) view over a tenant's
    /// **current** engine — `get` +
    /// [`ShardedEngine::from_shared`](crate::ShardedEngine::from_shared). The
    /// view is cheap (an `Arc` clone and an integer): construct one per
    /// batch to pick up swaps, exactly like [`EngineRegistry::get`] — a
    /// held view keeps serving the engine generation it was taken from.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when no engine is deployed under
    /// `name`.
    pub fn sharded(&self, name: &str, shards: usize) -> Result<crate::ShardedEngine, ServeError> {
        Ok(crate::ShardedEngine::from_shared(self.get(name)?, shards))
    }

    /// Scores one record against a tenant's **current** engine —
    /// `get` + [`Engine::score_record`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] for unknown names; scoring errors
    /// propagate.
    pub fn score_record(
        &self,
        name: &str,
        record: &traffic::ConnectionRecord,
    ) -> Result<detect::prelude::HybridVerdict, ServeError> {
        self.get(name)?.score_record(record)
    }

    /// Scores a record batch against a tenant's **current** engine —
    /// `get` + [`Engine::score_records`], the fused batched
    /// transform→walk path. The whole batch is served by one engine
    /// generation: a concurrent swap affects later batches, never splits
    /// this one.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] for unknown names; scoring errors
    /// propagate.
    pub fn score_records(
        &self,
        name: &str,
        records: &[traffic::ConnectionRecord],
    ) -> Result<Vec<detect::prelude::HybridVerdict>, ServeError> {
        self.get(name)?.score_records(records)
    }

    /// Streams one record through a tenant's current engine
    /// (`get` + [`Engine::observe`]). Note that a swap resets the
    /// adaptive baseline: streaming state lives in the engine, not the
    /// slot.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] for unknown names; scoring errors
    /// propagate.
    pub fn observe(
        &self,
        name: &str,
        record: &traffic::ConnectionRecord,
    ) -> Result<detect::prelude::StreamVerdict, ServeError> {
        self.get(name)?.observe(record)
    }

    /// Streams a record burst through a tenant's current engine
    /// (`get` + [`Engine::observe_records`]): one fused batched traversal,
    /// one engine generation per burst.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] for unknown names; scoring errors
    /// propagate.
    pub fn observe_records(
        &self,
        name: &str,
        records: &[traffic::ConnectionRecord],
    ) -> Result<Vec<detect::prelude::StreamVerdict>, ServeError> {
        self.get(name)?.observe_records(records)
    }

    /// Whether an engine is deployed under `name` — the cheap existence
    /// probe for admission control (an ingest front-end rejecting
    /// batches for unknown tenants should not pay for an `Arc` clone or
    /// construct an error per probe).
    pub fn contains(&self, name: &str) -> bool {
        self.tenants.read().contains_key(name)
    }

    /// Sorted tenant names.
    pub fn tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of deployed tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().len()
    }

    /// Whether no tenant is deployed.
    pub fn is_empty(&self) -> bool {
        self.tenants.read().is_empty()
    }

    fn slot(&self, name: &str) -> Result<Arc<TenantSlot>, ServeError> {
        self.tenants
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use ghsom_core::GhsomConfig;

    fn tiny_engine(seed: u64) -> Engine {
        let (train, _) = traffic::synth::kdd_train_test(300, 10, seed).unwrap();
        let config = EngineConfig::default()
            .with_ghsom(GhsomConfig::default().with_epochs(2, 1).with_seed(seed));
        Engine::fit(&config, &train).unwrap()
    }

    #[test]
    fn deploy_get_retire_lifecycle() {
        let registry = EngineRegistry::new();
        assert!(registry.is_empty());
        assert!(matches!(
            registry.get("a").unwrap_err(),
            ServeError::UnknownTenant(_)
        ));
        assert!(registry.deploy("a", tiny_engine(1)).is_none());
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.tenants(), vec!["a".to_string()]);
        let engine = registry.get("a").unwrap();
        assert!(engine.dim() > 0);
        let retired = registry.retire("a").unwrap();
        assert_eq!(retired.dim(), engine.dim());
        assert!(registry.is_empty());
        assert!(matches!(
            registry.retire("a").unwrap_err(),
            ServeError::UnknownTenant(_)
        ));
    }

    #[test]
    fn swap_requires_an_existing_tenant_and_replaces_in_place() {
        let registry = EngineRegistry::new();
        assert!(matches!(
            registry.swap("t", tiny_engine(2)).unwrap_err(),
            ServeError::UnknownTenant(_)
        ));
        registry.deploy("t", tiny_engine(2));
        let before = registry.get("t").unwrap();
        let old = registry.swap("t", tiny_engine(3)).unwrap();
        assert!(
            Arc::ptr_eq(&before, &old),
            "swap must return the retired engine"
        );
        let after = registry.get("t").unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "swap must be observable");
        // The in-flight reference stays fully usable after the swap.
        let (_, test) = traffic::synth::kdd_train_test(10, 20, 9).unwrap();
        before.score_record(&test.records()[0]).unwrap();
    }

    #[test]
    fn deploy_over_an_existing_tenant_returns_the_old_engine() {
        let registry = EngineRegistry::new();
        registry.deploy("t", tiny_engine(4));
        let replaced = registry.deploy("t", tiny_engine(5));
        assert!(replaced.is_some());
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn tenants_are_isolated() {
        let registry = EngineRegistry::new();
        registry.deploy("eu", tiny_engine(6));
        registry.deploy("us", tiny_engine(7));
        let (_, test) = traffic::synth::kdd_train_test(10, 30, 8).unwrap();
        // Both tenants score the same stream independently.
        for rec in test.iter() {
            registry.observe("eu", rec).unwrap();
        }
        assert_eq!(registry.get("eu").unwrap().stream_stats().seen, 30);
        assert_eq!(registry.get("us").unwrap().stream_stats().seen, 0);
    }

    #[test]
    fn swap_carrying_transplants_the_streaming_baseline() {
        let registry = EngineRegistry::new();
        registry.deploy("t", tiny_engine(20));
        let (_, traffic) = traffic::synth::kdd_train_test(10, 60, 21).unwrap();
        registry.observe_records("t", traffic.records()).unwrap();
        let before = registry.get("t").unwrap().stream_state();
        assert!(before.seen > 0);

        let (old, carried) = registry.swap_carrying("t", tiny_engine(22)).unwrap();
        let after = registry.get("t").unwrap();
        assert!(!Arc::ptr_eq(&old, &after), "swap must be observable");
        // The reported transplant is the exported baseline, and the new
        // engine starts from it bit-identically.
        assert_eq!(carried, before);
        assert_eq!(after.stream_state(), before);
        // …while a plain swap would have cold-started (sanity check).
        let old2 = registry.swap("t", tiny_engine(23)).unwrap();
        assert_eq!(old2.stream_state(), before);
        assert_eq!(registry.get("t").unwrap().stream_stats().seen, 0);
    }

    #[test]
    fn retire_releases_the_registry_references_promptly() {
        let registry = EngineRegistry::new();
        registry.deploy("t", tiny_engine(30));
        let retired = registry.retire("t").unwrap();
        // No slot, map entry or other registry-internal Arc may outlive
        // the retire call: the caller holds the only reference, so
        // dropping it frees the engine (and anything it pins) now, not
        // at the next deploy.
        assert_eq!(Arc::strong_count(&retired), 1);
    }

    #[test]
    fn batched_passthroughs_match_the_per_record_ones() {
        let registry = EngineRegistry::new();
        registry.deploy("t", tiny_engine(10));
        let (_, test) = traffic::synth::kdd_train_test(10, 40, 11).unwrap();
        let batch = registry.score_records("t", test.records()).unwrap();
        assert_eq!(batch.len(), test.len());
        for (rec, v) in test.iter().zip(&batch) {
            assert_eq!(registry.score_record("t", rec).unwrap(), *v);
        }
        let streamed = registry.observe_records("t", test.records()).unwrap();
        assert_eq!(streamed.len(), test.len());
        assert_eq!(
            registry.get("t").unwrap().stream_stats().seen,
            test.len() as u64
        );
        assert!(matches!(
            registry.score_records("x", test.records()).unwrap_err(),
            ServeError::UnknownTenant(_)
        ));
        assert!(matches!(
            registry.observe_records("x", test.records()).unwrap_err(),
            ServeError::UnknownTenant(_)
        ));
    }
}
