//! Read-only memory-mapped snapshot files.
//!
//! [`MappedFile`] maps a snapshot (or bundle) file into the address space
//! so a serving process can validate and walk it **in place** through
//! [`crate::SnapshotView`] — no heap copy of the multi-megabyte arena, and
//! repeated loads of the same artifact are served from the page cache.
//! `mmap` returns page-aligned memory, which satisfies the view's 8-byte
//! alignment requirement by construction.
//!
//! ```no_run
//! use ghsom_serve::{MappedFile, SnapshotView};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mapped = MappedFile::open("model.ghsom")?;
//! let view = SnapshotView::parse(&mapped)?; // zero-copy, validated once
//! let x = vec![0.0; view.dim()];
//! let _ = view.project(&x)?;
//! # Ok(())
//! # }
//! ```
//!
//! On 64-bit Unix this is a real `mmap(2)` private read-only mapping,
//! called through a minimal FFI declaration (the workspace builds offline
//! with no `libc` crate; `std` already links the C library). The raw
//! declaration hardcodes a 64-bit `off_t`, which only matches the C ABI
//! on 64-bit targets — so on every other target (32-bit Unix included,
//! where `off_t` may be 4 bytes without LFS) the module degrades to an
//! 8-byte-aligned heap read: same API, same alignment guarantee, no
//! page-cache sharing.

// The second of the two unsafe islands in this crate (the other is
// `snapshot::cast`): raw mmap/munmap FFI plus the slice reconstruction
// over the mapping. Confined here, with the invariants documented at each
// call site.
#[allow(unsafe_code)]
mod imp {
    use crate::ServeError;

    #[cfg(all(unix, target_pointer_width = "64"))]
    mod sys {
        use std::ffi::{c_int, c_void};

        extern "C" {
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: c_int,
                flags: c_int,
                fd: c_int,
                offset: i64,
            ) -> *mut c_void;
            pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        }

        pub const PROT_READ: c_int = 1;
        pub const MAP_PRIVATE: c_int = 2;
    }

    /// A read-only byte buffer backed by a memory-mapped file (64-bit
    /// Unix) or an aligned heap copy (elsewhere). Dereferences to `&[u8]`
    /// whose start is at least 8-byte aligned.
    #[derive(Debug)]
    pub struct MappedFile {
        #[cfg(all(unix, target_pointer_width = "64"))]
        ptr: *mut std::ffi::c_void,
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        buf: Vec<u64>,
        len: usize,
    }

    // SAFETY: the mapping is private, read-only and never mutated after
    // construction; exposing it from multiple threads is no different
    // from sharing any immutable buffer.
    #[cfg(all(unix, target_pointer_width = "64"))]
    unsafe impl Send for MappedFile {}
    // SAFETY: same argument as Send above — `&MappedFile` only ever hands
    // out `&[u8]` views of an immutable private mapping.
    #[cfg(all(unix, target_pointer_width = "64"))]
    unsafe impl Sync for MappedFile {}

    impl MappedFile {
        /// Maps `path` read-only.
        ///
        /// # Errors
        ///
        /// [`ServeError::Io`] when the file cannot be opened, inspected
        /// or mapped.
        pub fn open<P: AsRef<std::path::Path>>(path: P) -> Result<Self, ServeError> {
            let file = std::fs::File::open(&path)?;
            let len = usize::try_from(file.metadata()?.len())
                .map_err(|_| ServeError::Io("file too large to map".to_string()))?;
            Self::from_file(&file, len)
        }

        #[cfg(all(unix, target_pointer_width = "64"))]
        fn from_file(file: &std::fs::File, len: usize) -> Result<Self, ServeError> {
            use std::os::unix::io::AsRawFd;
            if len == 0 {
                // mmap rejects zero-length mappings; an empty file is an
                // empty buffer.
                return Ok(MappedFile {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            // SAFETY: plain mmap call with a live fd; a private read-only
            // mapping has no aliasing requirements on our side. The fd
            // may be closed afterwards — the mapping persists until
            // munmap.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(ServeError::Io(format!("mmap of {len} bytes failed")));
            }
            Ok(MappedFile { ptr, len })
        }

        #[cfg(not(all(unix, target_pointer_width = "64")))]
        fn from_file(file: &std::fs::File, len: usize) -> Result<Self, ServeError> {
            use std::io::Read;
            let mut bytes = Vec::with_capacity(len);
            let mut file = file;
            file.read_to_end(&mut bytes)?;
            let len = bytes.len();
            // Copy into a u64-backed buffer so the byte view is 8-byte
            // aligned like a real mapping.
            let mut buf = vec![0u64; len.div_ceil(8)];
            // SAFETY: u64 has no padding and the allocation is at least
            // `len` bytes; writing raw bytes over it is well-defined.
            unsafe {
                std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.as_mut_ptr().cast::<u8>(), len);
            }
            Ok(MappedFile { buf, len })
        }

        /// Length in bytes.
        pub fn len(&self) -> usize {
            self.len
        }

        /// Whether the mapped file was empty.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }
    }

    impl std::ops::Deref for MappedFile {
        type Target = [u8];

        #[cfg(all(unix, target_pointer_width = "64"))]
        fn deref(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: the mapping covers exactly `len` readable bytes and
            // lives until Drop; the returned slice borrows `self`.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }

        #[cfg(not(all(unix, target_pointer_width = "64")))]
        fn deref(&self) -> &[u8] {
            // SAFETY: the u64 buffer owns at least `len` initialized
            // bytes (zero-filled tail) and the slice borrows `self`.
            unsafe { std::slice::from_raw_parts(self.buf.as_ptr().cast::<u8>(), self.len) }
        }
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    impl Drop for MappedFile {
        fn drop(&mut self) {
            if self.len > 0 {
                // SAFETY: `ptr`/`len` are exactly the live mapping
                // created in `from_file`; unmapping it once here is the
                // matching release.
                unsafe {
                    sys::munmap(self.ptr, self.len);
                }
            }
        }
    }
}

pub use imp::MappedFile;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::tests_support::compiled_fixture;
    use crate::SnapshotView;

    #[test]
    fn mapped_snapshot_serves_zero_copy() {
        let compiled = compiled_fixture();
        let path = std::env::temp_dir().join("ghsom_serve_mmap_test.ghsom");
        compiled.save(&path).unwrap();
        let mapped = MappedFile::open(&path).unwrap();
        assert_eq!(mapped.len(), compiled.to_bytes().len());
        assert!(!mapped.is_empty());
        // Page alignment ⇒ the zero-copy view parses without copying.
        let view = SnapshotView::parse(&mapped).unwrap();
        assert_eq!(view.dim(), compiled.dim());
        let x = vec![0.25; compiled.dim()];
        assert_eq!(
            view.project(&x).unwrap().leaf_qe().to_bits(),
            compiled.project(&x).unwrap().leaf_qe().to_bits()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_and_missing_files_are_typed() {
        let path = std::env::temp_dir().join("ghsom_serve_mmap_empty.ghsom");
        std::fs::write(&path, b"").unwrap();
        let mapped = MappedFile::open(&path).unwrap();
        assert!(mapped.is_empty());
        assert_eq!(&*mapped, b"");
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            MappedFile::open("/nonexistent/definitely/missing").unwrap_err(),
            crate::ServeError::Io(_)
        ));
    }

    #[test]
    fn mapping_is_dropped_cleanly_and_shareable() {
        let compiled = compiled_fixture();
        let path = std::env::temp_dir().join("ghsom_serve_mmap_share.ghsom");
        compiled.save(&path).unwrap();
        let mapped = std::sync::Arc::new(MappedFile::open(&path).unwrap());
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let mapped = std::sync::Arc::clone(&mapped);
                std::thread::spawn(move || SnapshotView::parse(&mapped).unwrap().total_units())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), compiled.total_units());
        }
        drop(mapped);
        std::fs::remove_file(&path).ok();
    }
}
