//! Error type of the serving plane: compilation and snapshot decoding.

use std::fmt;

/// Errors produced while compiling, saving, loading or serving a model.
///
/// Snapshot decoding never panics on hostile bytes: every malformed input
/// maps to one of the typed variants below. The enum is
/// `#[non_exhaustive]`: downstream matches need a wildcard arm, and new
/// serving-surface variants can be added without a semver break.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Sample width differs from the compiled model.
    DimensionMismatch {
        /// Model dimensionality.
        expected: usize,
        /// Sample dimensionality.
        found: usize,
    },
    /// The model uses a metric the Gram-trick arena cannot serve.
    UnsupportedMetric {
        /// Display name of the offending metric.
        metric: String,
    },
    /// The snapshot does not start with the `GHSOMSNP` magic.
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// The byte buffer is shorter than the header or its declared length.
    Truncated {
        /// Bytes the snapshot declares (or the header requires).
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes as read.
        found: u64,
    },
    /// The snapshot parses but violates a structural invariant.
    Malformed(&'static str),
    /// A zero-copy view needs 8-byte-aligned bytes (e.g. an mmap-ed file);
    /// decode with `CompiledGhsom::from_bytes` instead, which copies.
    Misaligned,
    /// Filesystem I/O failed.
    Io(String),
    /// The snapshot is a valid *model-only* artifact (no embedded pipeline
    /// or detector sections); load it with `CompiledGhsom::load` or wire
    /// it into an `Engine` through `Engine::builder`.
    NotABundle {
        /// Format version found in the header.
        version: u32,
    },
    /// The engine builder is missing a required component.
    MissingComponent(&'static str),
    /// No engine is deployed under the requested tenant name.
    UnknownTenant(String),
    /// An adaptive streaming baseline was inconsistent or non-finite —
    /// either in a bundle's optional `STREAM` section or passed to
    /// `Engine::restore_stream` during a baseline transplant. The
    /// engine's current stream state is untouched when this is returned.
    StreamState(detect::DetectError),
    /// The feature pipeline failed (fitting or per-record transform).
    Pipeline(featurize::FeaturizeError),
    /// The detection layer failed (fitting or scoring).
    Detector(detect::DetectError),
    /// GHSOM training failed during `Engine::fit`.
    Train(ghsom_core::GhsomError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: model is {expected}-d, sample is {found}-d"
            ),
            ServeError::UnsupportedMetric { metric } => write!(
                f,
                "metric `{metric}` is not servable by the Gram-trick arena (Euclidean only)"
            ),
            ServeError::BadMagic => write!(f, "not a GHSOM snapshot (bad magic)"),
            ServeError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot version {found} is not supported (this build reads <= {supported})"
            ),
            ServeError::Truncated { needed, got } => {
                write!(f, "snapshot truncated: need {needed} bytes, got {got}")
            }
            ServeError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: header {expected:#018x}, payload {found:#018x}"
            ),
            ServeError::Malformed(reason) => write!(f, "malformed snapshot: {reason}"),
            ServeError::Misaligned => write!(
                f,
                "zero-copy snapshot view requires 8-byte-aligned bytes; use from_bytes to copy"
            ),
            ServeError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
            ServeError::NotABundle { version } => write!(
                f,
                "snapshot (version {version}) is a model-only artifact, not an engine bundle; \
                 load it with CompiledGhsom::load or assemble an Engine via Engine::builder"
            ),
            ServeError::MissingComponent(what) => {
                write!(f, "engine builder is missing a required component: {what}")
            }
            ServeError::UnknownTenant(name) => {
                write!(f, "no engine deployed under tenant `{name}`")
            }
            ServeError::StreamState(e) => {
                write!(f, "invalid streaming-baseline state: {e}")
            }
            ServeError::Pipeline(e) => write!(f, "feature pipeline error: {e}"),
            ServeError::Detector(e) => write!(f, "detector error: {e}"),
            ServeError::Train(e) => write!(f, "training error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Pipeline(e) => Some(e),
            ServeError::Detector(e) => Some(e),
            ServeError::Train(e) => Some(e),
            ServeError::StreamState(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

impl From<featurize::FeaturizeError> for ServeError {
    fn from(e: featurize::FeaturizeError) -> Self {
        ServeError::Pipeline(e)
    }
}

impl From<detect::DetectError> for ServeError {
    fn from(e: detect::DetectError) -> Self {
        ServeError::Detector(e)
    }
}

impl From<ghsom_core::GhsomError> for ServeError {
    fn from(e: ghsom_core::GhsomError) -> Self {
        ServeError::Train(e)
    }
}

impl From<ServeError> for ghsom_core::GhsomError {
    /// Maps serving errors into the core error space for the
    /// [`ghsom_core::Scorer`] trait implementations (whose methods return
    /// [`ghsom_core::GhsomError`]). Only width mismatches can actually
    /// occur during arena walks; everything else folds into
    /// `InvalidConfig` to stay total.
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::DimensionMismatch { expected, found } => {
                ghsom_core::GhsomError::DimensionMismatch { expected, found }
            }
            _ => ghsom_core::GhsomError::InvalidConfig {
                name: "compiled model",
                reason: "serving-plane operation failed",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_actionable() {
        assert!(ServeError::BadMagic.to_string().contains("magic"));
        assert!(ServeError::Truncated { needed: 9, got: 3 }
            .to_string()
            .contains("need 9"));
        assert!(ServeError::UnsupportedVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains("version 9"));
        assert!(ServeError::Misaligned.to_string().contains("from_bytes"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ServeError>();
    }

    #[test]
    fn converts_into_core_errors() {
        let e: ghsom_core::GhsomError = ServeError::DimensionMismatch {
            expected: 3,
            found: 1,
        }
        .into();
        assert_eq!(
            e,
            ghsom_core::GhsomError::DimensionMismatch {
                expected: 3,
                found: 1
            }
        );
    }
}
