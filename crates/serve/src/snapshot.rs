//! Versioned binary snapshots of [`CompiledGhsom`] arenas.
//!
//! See the [crate-level docs](crate) for the wire-format overview and
//! **`docs/SNAPSHOT_FORMAT.md`** at the repo root for the normative
//! section-for-section specification (header, section table, all 18
//! section layouts incl. the optional `STREAM` section, alignment,
//! endianness, structural validation and the version-1/2 compatibility
//! rules). This module implements it:
//!
//! * [`CompiledGhsom::to_bytes`] / [`CompiledGhsom::from_bytes`] — encode
//!   to / decode from an owned byte buffer (decoding copies section
//!   payloads and therefore accepts any alignment).
//! * [`CompiledGhsom::save`] / [`CompiledGhsom::load`] — the same through
//!   the filesystem.
//! * [`SnapshotView`] — a **zero-copy** view over a mapped or borrowed
//!   byte buffer: section payloads are reinterpreted in place (requires an
//!   8-byte-aligned little-endian buffer, which `mmap` always provides),
//!   validated once, then served directly.
//!
//! Every decode path runs the same structural validation as compilation,
//! so truncated, corrupted or adversarial bytes yield typed
//! [`ServeError`]s — never panics, never an out-of-bounds walk.

use std::collections::BTreeMap;
use std::path::Path;

use ghsom_core::{GhsomError, Projection, Scorer};
use mathkit::bytes;
use mathkit::{Matrix, MatrixView};

use crate::compiled::{ArenaRef, CompiledGhsom};
use crate::ServeError;

/// The 8-byte magic every snapshot starts with.
pub const MAGIC: [u8; 8] = *b"GHSOMSNP";

/// Format version of **model-only** snapshots
/// ([`CompiledGhsom::to_bytes`]): the 15 arena sections, nothing else.
///
/// Policy: the version is bumped on **any** incompatible layout change —
/// new required sections, changed element widths, changed section
/// semantics. Readers reject snapshots whose version they do not know
/// ([`ServeError::UnsupportedVersion`]) instead of guessing. Adding a new
/// *optional* section id does not bump the version: unknown ids are
/// ignored by older readers, and `VERSION` stays the floor both sides
/// agree on.
pub const VERSION: u32 = 1;

/// Format version of **engine bundles** (`Engine::to_bytes`): the same 15
/// arena sections plus the required `PIPELINE` and `DETECTOR` sections
/// (see [`crate::engine`]). Bundles are version-gated upward — a version-1
/// reader rejects them with [`ServeError::UnsupportedVersion`] instead of
/// silently serving a model without its input transform — while
/// version-[`VERSION`] model-only snapshots still load everywhere
/// (`CompiledGhsom::from_bytes` accepts both versions; `Engine::from_bytes`
/// reports [`ServeError::NotABundle`] for them).
pub const BUNDLE_VERSION: u32 = 2;

/// Fixed preamble size: magic (8) + version (4) + section count (4) +
/// total length (8) + checksum (8).
const HEADER_LEN: usize = 32;

/// Bytes per section-table entry: id (4) + reserved (4) + offset (8) +
/// length (8).
const SECTION_ENTRY_LEN: usize = 24;

// Section ids. Gaps are reserved for future optional sections.
const SEC_META: u32 = 1;
const SEC_MEAN: u32 = 2;
const SEC_ROWS: u32 = 3;
const SEC_COLS: u32 = 4;
const SEC_DEPTH: u32 = 5;
const SEC_PARENT_NODE: u32 = 6;
const SEC_PARENT_UNIT: u32 = 7;
const SEC_UNIT_OFF: u32 = 8;
const SEC_WT_OFF: u32 = 9;
const SEC_CHILDREN: u32 = 10;
const SEC_UNIT_HITS: u32 = 11;
const SEC_UNIT_MQE: u32 = 12;
const SEC_WN_HALF: u32 = 13;
const SEC_WT: u32 = 14;
const SEC_PERM: u32 = 15;
/// Bundle section: the fitted feature pipeline as UTF-8 JSON
/// (required from [`BUNDLE_VERSION`] on; see [`crate::engine`]).
pub(crate) const SEC_PIPELINE: u32 = 16;
/// Bundle section: the fitted detector + stream configuration as UTF-8
/// JSON (required from [`BUNDLE_VERSION`] on; see [`crate::engine`]).
pub(crate) const SEC_DETECTOR: u32 = 17;
/// **Optional** bundle section: the live adaptive streaming baseline as
/// UTF-8 JSON (`detect::prelude::StreamState`), written by
/// `Engine::to_bytes_with_stream` so a daemon restart resumes with a
/// warm `mean + k·σ` threshold. Absent section ⇒ cold start; being
/// optional, it does **not** bump [`BUNDLE_VERSION`] (see the version
/// policy on [`VERSION`]).
pub(crate) const SEC_STREAM: u32 = 18;

/// Every section a snapshot of any supported version must carry (the
/// arena tables). Bundles additionally require [`SEC_PIPELINE`] and
/// [`SEC_DETECTOR`].
const REQUIRED: [u32; 15] = [
    SEC_META,
    SEC_MEAN,
    SEC_ROWS,
    SEC_COLS,
    SEC_DEPTH,
    SEC_PARENT_NODE,
    SEC_PARENT_UNIT,
    SEC_UNIT_OFF,
    SEC_WT_OFF,
    SEC_CHILDREN,
    SEC_UNIT_HITS,
    SEC_UNIT_MQE,
    SEC_WN_HALF,
    SEC_WT,
    SEC_PERM,
];

/// `META` payload length: dim (4) + node count (4) + total units (4) +
/// reserved (4) + mqe0 (8).
const META_LEN: usize = 24;

// --- encoding ---------------------------------------------------------------

/// Appends one section, 8-byte aligning its payload, and records its table
/// entry.
fn push_section(buf: &mut Vec<u8>, table: &mut Vec<(u32, usize, usize)>, id: u32, payload: &[u8]) {
    let aligned = bytes::align_up(buf.len(), 8);
    buf.resize(aligned, 0);
    table.push((id, aligned, payload.len()));
    buf.extend_from_slice(payload);
}

/// Lays out a header + section table + payloads buffer and seals it with
/// the total length and checksum — the shared tail of every encoder
/// (model-only snapshots and engine bundles).
// LINT-ALLOW(cast): encode-side widenings only — usize offsets/lengths into u64 wire fields are lossless on every supported target, and the section count is bounded by the fixed section list
pub(crate) fn seal(version: u32, sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    bytes::put_u32(&mut buf, version);
    bytes::put_u32(&mut buf, sections.len() as u32);
    bytes::put_u64(&mut buf, 0); // total length, patched below
    bytes::put_u64(&mut buf, 0); // checksum, patched below
    debug_assert_eq!(buf.len(), HEADER_LEN);
    // Reserve the section table, then lay out the payloads.
    buf.resize(HEADER_LEN + sections.len() * SECTION_ENTRY_LEN, 0);
    let mut table = Vec::with_capacity(sections.len());
    for (id, payload) in sections {
        push_section(&mut buf, &mut table, *id, payload);
    }
    // Patch the table…
    for (i, (id, offset, len)) in table.into_iter().enumerate() {
        let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
        buf[at..at + 4].copy_from_slice(&id.to_le_bytes());
        buf[at + 4..at + 8].copy_from_slice(&0u32.to_le_bytes());
        buf[at + 8..at + 16].copy_from_slice(&(offset as u64).to_le_bytes());
        buf[at + 16..at + 24].copy_from_slice(&(len as u64).to_le_bytes());
    }
    // …then the length and the checksum over everything after it.
    let total = buf.len() as u64;
    buf[16..24].copy_from_slice(&total.to_le_bytes());
    let checksum = bytes::fnv1a64(&buf[HEADER_LEN..]);
    buf[24..32].copy_from_slice(&checksum.to_le_bytes());
    buf
}

impl CompiledGhsom {
    /// The arena's 15 sections in canonical id order — the payload of a
    /// model-only snapshot, and the prefix an engine bundle extends.
    // LINT-ALLOW(cast): dim/map_count/total_units are u32 wire fields and already u32-bounded — the arena addresses nodes and units through u32 tables by construction
    pub(crate) fn arena_sections(&self) -> Vec<(u32, Vec<u8>)> {
        let mut sections: Vec<(u32, Vec<u8>)> = Vec::with_capacity(REQUIRED.len());
        let mut meta = Vec::with_capacity(META_LEN);
        bytes::put_u32(&mut meta, self.dim as u32);
        bytes::put_u32(&mut meta, self.map_count() as u32);
        bytes::put_u32(&mut meta, self.total_units() as u32);
        bytes::put_u32(&mut meta, 0); // reserved
        bytes::put_f64(&mut meta, self.mqe0);
        sections.push((SEC_META, meta));
        let f64s = |vs: &[f64]| {
            let mut b = Vec::with_capacity(vs.len() * 8);
            bytes::put_f64s(&mut b, vs);
            b
        };
        let u32s = |vs: &[u32]| {
            let mut b = Vec::with_capacity(vs.len() * 4);
            bytes::put_u32s(&mut b, vs);
            b
        };
        let u64s = |vs: &[u64]| {
            let mut b = Vec::with_capacity(vs.len() * 8);
            bytes::put_u64s(&mut b, vs);
            b
        };
        sections.push((SEC_MEAN, f64s(&self.mean)));
        sections.push((SEC_ROWS, u32s(&self.rows)));
        sections.push((SEC_COLS, u32s(&self.cols)));
        sections.push((SEC_DEPTH, u32s(&self.depth)));
        sections.push((SEC_PARENT_NODE, u32s(&self.parent_node)));
        sections.push((SEC_PARENT_UNIT, u32s(&self.parent_unit)));
        sections.push((SEC_UNIT_OFF, u64s(&self.unit_off)));
        sections.push((SEC_WT_OFF, u64s(&self.wt_off)));
        sections.push((SEC_CHILDREN, u32s(&self.children)));
        sections.push((SEC_UNIT_HITS, u64s(&self.unit_hits)));
        sections.push((SEC_UNIT_MQE, f64s(&self.unit_mqe)));
        sections.push((SEC_WN_HALF, f64s(&self.wn_half)));
        sections.push((SEC_WT, f64s(&self.wt)));
        sections.push((SEC_PERM, u32s(&self.perm)));
        sections
    }

    /// Serializes the arena into the version-[`VERSION`] model-only
    /// snapshot format.
    pub fn to_bytes(&self) -> Vec<u8> {
        seal(VERSION, &self.arena_sections())
    }

    /// Decodes a snapshot into an owned arena. Accepts any buffer
    /// alignment (section payloads are copied); for in-place serving of
    /// mapped files use [`SnapshotView`]. Both model-only snapshots and
    /// engine bundles are accepted — the extra bundle sections are simply
    /// ignored here.
    ///
    /// # Errors
    ///
    /// Typed [`ServeError`]s for bad magic, unknown versions, truncation,
    /// checksum mismatches and structural violations.
    pub fn from_bytes(raw: &[u8]) -> Result<Self, ServeError> {
        let sections = parse_preamble(raw)?;
        Self::decode_arena(raw, &sections)
    }

    /// Decodes the 15 arena sections out of an already-parsed snapshot —
    /// shared by [`CompiledGhsom::from_bytes`] and the bundle decoder in
    /// [`crate::engine`].
    pub(crate) fn decode_arena(raw: &[u8], sections: &Sections) -> Result<Self, ServeError> {
        let meta = Meta::decode(sections.payload(raw, SEC_META)?)?;
        let get_u32s = |id: u32| -> Result<Vec<u32>, ServeError> {
            bytes::get_u32s(sections.payload(raw, id)?)
                .ok_or(ServeError::Malformed("ragged u32 section"))
        };
        let get_u64s = |id: u32| -> Result<Vec<u64>, ServeError> {
            bytes::get_u64s(sections.payload(raw, id)?)
                .ok_or(ServeError::Malformed("ragged u64 section"))
        };
        let get_f64s = |id: u32| -> Result<Vec<f64>, ServeError> {
            bytes::get_f64s(sections.payload(raw, id)?)
                .ok_or(ServeError::Malformed("ragged f64 section"))
        };
        let out = CompiledGhsom {
            dim: meta.dim,
            mqe0: meta.mqe0,
            mean: get_f64s(SEC_MEAN)?,
            rows: get_u32s(SEC_ROWS)?,
            cols: get_u32s(SEC_COLS)?,
            depth: get_u32s(SEC_DEPTH)?,
            parent_node: get_u32s(SEC_PARENT_NODE)?,
            parent_unit: get_u32s(SEC_PARENT_UNIT)?,
            unit_off: get_u64s(SEC_UNIT_OFF)?,
            wt_off: get_u64s(SEC_WT_OFF)?,
            children: get_u32s(SEC_CHILDREN)?,
            unit_hits: get_u64s(SEC_UNIT_HITS)?,
            unit_mqe: get_f64s(SEC_UNIT_MQE)?,
            wn_half: get_f64s(SEC_WN_HALF)?,
            perm: get_u32s(SEC_PERM)?,
            wt: get_f64s(SEC_WT)?,
            row_cache: Default::default(),
            fused: Default::default(),
        };
        meta.check_against(&out.arena())?;
        out.arena().validate()?;
        Ok(out)
    }

    /// Writes the snapshot to a file.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on filesystem failures.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), ServeError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads a snapshot file written by [`CompiledGhsom::save`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on filesystem failures, decoding errors as in
    /// [`CompiledGhsom::from_bytes`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, ServeError> {
        let raw = std::fs::read(path)?;
        Self::from_bytes(&raw)
    }
}

/// Decoded `META` section.
struct Meta {
    dim: usize,
    nodes: usize,
    total_units: usize,
    mqe0: f64,
}

impl Meta {
    fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        if payload.len() != META_LEN {
            return Err(ServeError::Malformed("META section has the wrong length"));
        }
        let count = |off| {
            bytes::get_u32_usize(payload, off)
                .ok_or(ServeError::Malformed("META section read out of range"))
        };
        Ok(Meta {
            dim: count(0)?,
            nodes: count(4)?,
            total_units: count(8)?,
            mqe0: bytes::get_f64(payload, 16)
                .ok_or(ServeError::Malformed("META section read out of range"))?,
        })
    }

    /// The header counts must agree with the decoded tables (the tables
    /// are the source of truth; the counts exist for cheap inspection).
    fn check_against(&self, arena: &ArenaRef<'_>) -> Result<(), ServeError> {
        if self.nodes != arena.map_count()
            || self.total_units != arena.total_units()
            || self.dim != arena.dim
        {
            return Err(ServeError::Malformed(
                "META counts disagree with the section tables",
            ));
        }
        Ok(())
    }
}

/// Parsed and bounds-checked section table.
#[derive(Debug, Clone)]
pub(crate) struct Sections {
    /// Format version from the header ([`VERSION`] or [`BUNDLE_VERSION`]).
    pub(crate) version: u32,
    /// id → `(offset, len)`, both in bytes, validated in range.
    map: BTreeMap<u32, (usize, usize)>,
}

impl Sections {
    pub(crate) fn payload<'a>(&self, raw: &'a [u8], id: u32) -> Result<&'a [u8], ServeError> {
        self.payload_opt(raw, id)
            .ok_or(ServeError::Malformed("missing required section"))
    }

    /// The payload of an **optional** section — `None` when the section
    /// is absent (not an error; optional sections are how the format
    /// grows without version bumps).
    pub(crate) fn payload_opt<'a>(&self, raw: &'a [u8], id: u32) -> Option<&'a [u8]> {
        self.map
            .get(&id)
            .map(|&(offset, len)| &raw[offset..offset + len])
    }
}

/// Validates magic, version, length, checksum and the section table.
pub(crate) fn parse_preamble(raw: &[u8]) -> Result<Sections, ServeError> {
    if raw.len() < HEADER_LEN {
        return Err(ServeError::Truncated {
            needed: HEADER_LEN,
            got: raw.len(),
        });
    }
    if raw[..8] != MAGIC {
        return Err(ServeError::BadMagic);
    }
    let version =
        bytes::get_u32(raw, 8).ok_or(ServeError::Malformed("header read out of range"))?;
    if version != VERSION && version != BUNDLE_VERSION {
        return Err(ServeError::UnsupportedVersion {
            found: version,
            supported: BUNDLE_VERSION,
        });
    }
    let section_count =
        bytes::get_u32_usize(raw, 12).ok_or(ServeError::Malformed("header read out of range"))?;
    let total =
        bytes::get_u64_usize(raw, 16).ok_or(ServeError::Malformed("absurd total length"))?;
    if raw.len() < total {
        return Err(ServeError::Truncated {
            needed: total,
            got: raw.len(),
        });
    }
    // Trailing bytes beyond the declared length are tolerated (a mapped
    // file is padded to page size); everything below uses `raw[..total]`.
    let raw = &raw[..total];
    let expected =
        bytes::get_u64(raw, 24).ok_or(ServeError::Malformed("header read out of range"))?;
    let found = bytes::fnv1a64(&raw[HEADER_LEN..]);
    if expected != found {
        return Err(ServeError::ChecksumMismatch { expected, found });
    }
    let table_end = HEADER_LEN
        .checked_add(
            section_count
                .checked_mul(SECTION_ENTRY_LEN)
                .ok_or(ServeError::Malformed("absurd section count"))?,
        )
        .ok_or(ServeError::Malformed("absurd section count"))?;
    if table_end > total {
        return Err(ServeError::Truncated {
            needed: table_end,
            got: total,
        });
    }
    let mut map = BTreeMap::new();
    for i in 0..section_count {
        let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
        let id = bytes::get_u32(raw, at).ok_or(ServeError::Malformed("table read out of range"))?;
        let offset = bytes::get_u64_usize(raw, at + 8)
            .ok_or(ServeError::Malformed("section offset overflow"))?;
        let len = bytes::get_u64_usize(raw, at + 16)
            .ok_or(ServeError::Malformed("section length overflow"))?;
        let end = offset
            .checked_add(len)
            .ok_or(ServeError::Malformed("section range overflow"))?;
        if offset < table_end || end > total {
            return Err(ServeError::Malformed("section range out of bounds"));
        }
        if offset % 8 != 0 {
            return Err(ServeError::Malformed(
                "section payload is not 8-byte aligned",
            ));
        }
        if map.insert(id, (offset, len)).is_some() {
            return Err(ServeError::Malformed("duplicate section id"));
        }
    }
    for id in REQUIRED {
        if !map.contains_key(&id) {
            return Err(ServeError::Malformed("missing required section"));
        }
    }
    if version >= BUNDLE_VERSION {
        // A bundle without its pipeline/detector sections is malformed —
        // the version gate is exactly the promise that they are present.
        for id in [SEC_PIPELINE, SEC_DETECTOR] {
            if !map.contains_key(&id) {
                return Err(ServeError::Malformed("bundle is missing a bundle section"));
            }
        }
    }
    Ok(Sections { version, map })
}

// --- zero-copy view ---------------------------------------------------------

/// Safe zero-copy reinterpretation of aligned little-endian section
/// payloads.
///
/// One of the two unsafe islands in the workspace (the other is
/// [`crate::mmap`]); it is confined to [`slice_cast`], whose
/// preconditions (element types with no invalid bit patterns, checked
/// length multiple, checked alignment) make the `from_raw_parts` call
/// sound.
#[allow(unsafe_code)]
mod cast {
    use crate::ServeError;

    /// Marker for element types any bit pattern is valid for. Sealed to
    /// this module so [`slice_cast`] cannot be instantiated with padding-
    /// or niche-carrying types.
    pub trait Pod: Copy + private::Sealed {}
    impl Pod for u32 {}
    impl Pod for u64 {}
    impl Pod for f64 {}
    mod private {
        pub trait Sealed {}
        impl Sealed for u32 {}
        impl Sealed for u64 {}
        impl Sealed for f64 {}
    }

    /// Reinterprets `bytes` as a slice of `T` without copying.
    ///
    /// # Errors
    ///
    /// [`ServeError::Malformed`] when the length is not a whole number of
    /// elements; [`ServeError::Misaligned`] when the payload is not
    /// aligned for `T` (decode with `CompiledGhsom::from_bytes` instead).
    pub fn slice_cast<T: Pod>(bytes: &[u8]) -> Result<&[T], ServeError> {
        let size = std::mem::size_of::<T>();
        if !bytes.len().is_multiple_of(size) {
            return Err(ServeError::Malformed(
                "section length is not a whole number of elements",
            ));
        }
        if bytes.as_ptr().align_offset(std::mem::align_of::<T>()) != 0 {
            return Err(ServeError::Misaligned);
        }
        // SAFETY: `T` is a sealed Pod type (u32/u64/f64) — every bit
        // pattern is a valid value, there is no padding and no drop glue.
        // The pointer is non-null (derived from a live slice), the length
        // is exactly `bytes.len() / size_of::<T>()` elements, and the
        // alignment was checked above. The returned slice borrows `bytes`,
        // so the memory outlives it.
        Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / size) })
    }
}

/// A zero-copy snapshot view: serves projections straight out of a byte
/// buffer (typically an `mmap`-ed model file) without materializing the
/// arena.
///
/// Construction runs the full header, checksum and structural validation
/// once; after that, [`SnapshotView::project_batch`] and
/// [`SnapshotView::score_all`] are exactly the [`CompiledGhsom`] walks on
/// borrowed tables. Requires an 8-byte-aligned buffer on a little-endian
/// target; [`CompiledGhsom::from_bytes`] is the portable (copying)
/// fallback.
///
/// The view holds no caches: `Scorer::map_weights`/`unit_prototype`
/// gather from the tiled arena on every call. Detectors that consult
/// prototypes per record (e.g. the nearest-labelled dead-unit fallback)
/// should [`SnapshotView::to_owned`] the view once and serve from the
/// resulting [`CompiledGhsom`], which caches the row-major gather.
///
/// # Validation happens exactly once
///
/// [`SnapshotView::parse`] runs the header parse, the FNV-1a checksum
/// over the whole payload, the section-table bounds checks and the
/// structural arena validation **once**, then retains the validated
/// section table alongside the borrowed bytes. Every later access —
/// projections, [`SnapshotView::to_owned`], and the bundle decode
/// through [`crate::Engine::from_view`] — reuses that work and performs
/// **no** re-validation. A hot-reload daemon that validates an artifact
/// and then builds an engine from it therefore hashes the file once,
/// not once per consumer. (The invariant this rests on: the view
/// borrows the buffer immutably for its whole lifetime, so the bytes
/// the checksum covered cannot change underneath it.)
#[derive(Debug, Clone)]
pub struct SnapshotView<'a> {
    raw: &'a [u8],
    sections: Sections,
    arena: ArenaRef<'a>,
}

impl<'a> SnapshotView<'a> {
    /// Parses and validates a snapshot without copying its payloads.
    ///
    /// # Errors
    ///
    /// Every decoding error of [`CompiledGhsom::from_bytes`], plus
    /// [`ServeError::Misaligned`] when `raw` is not 8-byte aligned and
    /// [`ServeError::Malformed`] on big-endian targets (the wire format is
    /// little-endian; zero-copy would misread there).
    pub fn parse(raw: &'a [u8]) -> Result<Self, ServeError> {
        if cfg!(target_endian = "big") {
            return Err(ServeError::Malformed(
                "zero-copy views require a little-endian target",
            ));
        }
        if raw.as_ptr().align_offset(8) != 0 {
            return Err(ServeError::Misaligned);
        }
        let sections = parse_preamble(raw)?;
        let meta = Meta::decode(sections.payload(raw, SEC_META)?)?;
        let arena = ArenaRef {
            dim: meta.dim,
            mqe0: meta.mqe0,
            mean: cast::slice_cast(sections.payload(raw, SEC_MEAN)?)?,
            rows: cast::slice_cast(sections.payload(raw, SEC_ROWS)?)?,
            cols: cast::slice_cast(sections.payload(raw, SEC_COLS)?)?,
            depth: cast::slice_cast(sections.payload(raw, SEC_DEPTH)?)?,
            parent_node: cast::slice_cast(sections.payload(raw, SEC_PARENT_NODE)?)?,
            parent_unit: cast::slice_cast(sections.payload(raw, SEC_PARENT_UNIT)?)?,
            unit_off: cast::slice_cast(sections.payload(raw, SEC_UNIT_OFF)?)?,
            wt_off: cast::slice_cast(sections.payload(raw, SEC_WT_OFF)?)?,
            children: cast::slice_cast(sections.payload(raw, SEC_CHILDREN)?)?,
            unit_hits: cast::slice_cast(sections.payload(raw, SEC_UNIT_HITS)?)?,
            unit_mqe: cast::slice_cast(sections.payload(raw, SEC_UNIT_MQE)?)?,
            wn_half: cast::slice_cast(sections.payload(raw, SEC_WN_HALF)?)?,
            perm: cast::slice_cast(sections.payload(raw, SEC_PERM)?)?,
            wt: cast::slice_cast(sections.payload(raw, SEC_WT)?)?,
        };
        meta.check_against(&arena)?;
        arena.validate()?;
        Ok(SnapshotView {
            raw,
            sections,
            arena,
        })
    }

    /// Format version from the header ([`VERSION`] model-only or
    /// [`BUNDLE_VERSION`] engine bundle).
    pub fn version(&self) -> u32 {
        self.sections.version
    }

    /// Whether the snapshot is an engine bundle (carries the fitted
    /// pipeline and detector sections, so [`crate::Engine::from_view`]
    /// can decode it).
    pub fn is_bundle(&self) -> bool {
        self.sections.version >= BUNDLE_VERSION
    }

    /// The already-validated section table and the raw bytes it indexes —
    /// how the bundle decoder ([`crate::Engine::from_view`]) reuses this
    /// view's one-time validation instead of re-hashing the buffer.
    pub(crate) fn parts(&self) -> (&'a [u8], &Sections) {
        (self.raw, &self.sections)
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.arena.dim
    }

    /// Number of maps in the hierarchy.
    pub fn map_count(&self) -> usize {
        self.arena.map_count()
    }

    /// Total units across all maps.
    pub fn total_units(&self) -> usize {
        self.arena.total_units()
    }

    /// The layer-0 mean quantization error mqe₀.
    pub fn mqe0(&self) -> f64 {
        self.arena.mqe0
    }

    /// Projects one sample root→leaf.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on a sample of the wrong width.
    pub fn project(&self, x: &[f64]) -> Result<Projection, ServeError> {
        self.arena.project_one(x)
    }

    /// Projects every row of a matrix root→leaf.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on samples of the wrong width.
    pub fn project_batch(&self, data: &Matrix) -> Result<Vec<Projection>, ServeError> {
        self.arena.project_batch(data.view(), None)
    }

    /// [`SnapshotView::project_batch`] over a borrowed matrix view — the
    /// fully zero-copy serving pipe: mapped snapshot bytes on one side, a
    /// reused feature buffer on the other.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on samples of the wrong width.
    pub fn project_batch_view(&self, data: MatrixView<'_>) -> Result<Vec<Projection>, ServeError> {
        self.arena.project_batch(data, None)
    }

    /// Leaf quantization error of every row.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on samples of the wrong width.
    pub fn score_all(&self, data: &Matrix) -> Result<Vec<f64>, ServeError> {
        self.arena.score_all(data.view(), None)
    }

    /// [`SnapshotView::score_all`] over a borrowed matrix view.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on samples of the wrong width.
    pub fn score_all_view(&self, data: MatrixView<'_>) -> Result<Vec<f64>, ServeError> {
        self.arena.score_all(data, None)
    }

    /// Materializes the view into an owned [`CompiledGhsom`].
    pub fn to_owned(&self) -> CompiledGhsom {
        CompiledGhsom {
            dim: self.arena.dim,
            mqe0: self.arena.mqe0,
            mean: self.arena.mean.to_vec(),
            rows: self.arena.rows.to_vec(),
            cols: self.arena.cols.to_vec(),
            depth: self.arena.depth.to_vec(),
            parent_node: self.arena.parent_node.to_vec(),
            parent_unit: self.arena.parent_unit.to_vec(),
            unit_off: self.arena.unit_off.to_vec(),
            wt_off: self.arena.wt_off.to_vec(),
            children: self.arena.children.to_vec(),
            unit_hits: self.arena.unit_hits.to_vec(),
            unit_mqe: self.arena.unit_mqe.to_vec(),
            wn_half: self.arena.wn_half.to_vec(),
            perm: self.arena.perm.to_vec(),
            wt: self.arena.wt.to_vec(),
            row_cache: Default::default(),
            fused: Default::default(),
        }
    }
}

impl Scorer for SnapshotView<'_> {
    fn dim(&self) -> usize {
        self.arena.dim
    }

    fn map_count(&self) -> usize {
        self.arena.map_count()
    }

    fn map_units(&self, node: usize) -> usize {
        self.arena.units(node)
    }

    fn child_of(&self, node: usize, unit: usize) -> Option<usize> {
        self.arena.child_of(node, unit)
    }

    fn unit_prototype(&self, node: usize, unit: usize) -> std::borrow::Cow<'_, [f64]> {
        std::borrow::Cow::Owned(self.arena.prototype(node, unit))
    }

    fn map_weights(&self, node: usize) -> std::borrow::Cow<'_, [f64]> {
        std::borrow::Cow::Owned(self.arena.map_weights(node))
    }

    fn project(&self, x: &[f64]) -> Result<Projection, GhsomError> {
        Ok(self.arena.project_one(x)?)
    }

    fn project_batch(&self, data: &Matrix) -> Result<Vec<Projection>, GhsomError> {
        Ok(self.arena.project_batch(data.view(), None)?)
    }

    fn project_batch_view(
        &self,
        data: mathkit::MatrixView<'_>,
    ) -> Result<Vec<Projection>, GhsomError> {
        Ok(self.arena.project_batch(data, None)?)
    }

    fn score_matrix(&self, data: &Matrix) -> Result<Vec<f64>, GhsomError> {
        Ok(self.arena.score_all(data.view(), None)?)
    }

    fn score_matrix_view(&self, data: mathkit::MatrixView<'_>) -> Result<Vec<f64>, GhsomError> {
        Ok(self.arena.score_all(data, None)?)
    }
}

/// Shared fixtures for this crate's test modules.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::compiled::Compile;
    use ghsom_core::{GhsomConfig, GhsomModel};

    pub(crate) fn model_fixture() -> GhsomModel {
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                let c = (i % 3) as f64 * 5.0;
                vec![c + (i % 11) as f64 * 0.02, c + (i % 7) as f64 * 0.03]
            })
            .collect();
        GhsomModel::train(
            &GhsomConfig::default()
                .with_tau1(0.4)
                .with_tau2(0.08)
                .with_seed(17),
            &Matrix::from_rows(rows).unwrap(),
        )
        .unwrap()
    }

    pub(crate) fn compiled_fixture() -> CompiledGhsom {
        model_fixture().compile().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled() -> CompiledGhsom {
        tests_support::compiled_fixture()
    }

    /// Copies the snapshot to an 8-byte-aligned position inside a padded
    /// buffer, so view tests don't depend on allocator luck. Returns the
    /// buffer and the aligned start offset.
    fn aligned_copy(raw: &[u8]) -> (Vec<u8>, usize) {
        let mut buf = vec![0u8; raw.len() + 8];
        let off = buf.as_ptr().align_offset(8);
        buf[off..off + raw.len()].copy_from_slice(raw);
        (buf, off)
    }

    #[test]
    fn roundtrip_is_exact() {
        let c = compiled();
        let raw = c.to_bytes();
        let back = CompiledGhsom::from_bytes(&raw).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn roundtrip_through_the_filesystem() {
        let c = compiled();
        let path = std::env::temp_dir().join("ghsom_serve_snapshot_test.ghsom");
        c.save(&path).unwrap();
        let back = CompiledGhsom::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, c);
        // And the reloaded arena scores identically.
        let x = vec![0.5; c.dim()];
        assert_eq!(
            c.project(&x).unwrap().leaf_qe().to_bits(),
            back.project(&x).unwrap().leaf_qe().to_bits()
        );
    }

    #[test]
    fn zero_copy_view_serves_identically() {
        let c = compiled();
        let (buf, off) = aligned_copy(&c.to_bytes());
        let raw = &buf[off..off + c.to_bytes().len()];
        let view = SnapshotView::parse(raw).unwrap();
        assert_eq!(view.dim(), c.dim());
        assert_eq!(view.map_count(), c.map_count());
        assert_eq!(view.total_units(), c.total_units());
        assert_eq!(view.mqe0(), c.mqe0());
        let data =
            Matrix::from_rows(vec![vec![0.1, 0.2], vec![5.0, 5.1], vec![10.0, 9.9]]).unwrap();
        let a = c.score_all(&data).unwrap();
        let b = view.score_all(&data).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(view.to_owned(), c);
    }

    #[test]
    fn misaligned_view_is_a_typed_error() {
        let c = compiled();
        let snapshot = c.to_bytes();
        // Place the same content one byte past an aligned boundary.
        let (mut buf, off) = aligned_copy(&snapshot);
        buf.push(0);
        buf.copy_within(off..off + snapshot.len(), off + 1);
        let shifted = &buf[off + 1..off + 1 + snapshot.len()];
        if cfg!(target_endian = "little") {
            assert_eq!(
                SnapshotView::parse(shifted).unwrap_err(),
                ServeError::Misaligned
            );
        }
        // The copying decoder does not care about alignment.
        assert!(CompiledGhsom::from_bytes(shifted).is_ok());
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_length() {
        let raw = compiled().to_bytes();
        // Exhaustively truncate the header, then sample the payload.
        for cut in (0..HEADER_LEN).chain((HEADER_LEN..raw.len()).step_by(97)) {
            let err = CompiledGhsom::from_bytes(&raw[..cut]).unwrap_err();
            assert!(
                matches!(err, ServeError::Truncated { .. }),
                "cut {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let raw = compiled().to_bytes();
        // Flip one payload byte: checksum catches it.
        let mut bad = raw.clone();
        let at = raw.len() - 9;
        bad[at] ^= 0x40;
        assert!(matches!(
            CompiledGhsom::from_bytes(&bad).unwrap_err(),
            ServeError::ChecksumMismatch { .. }
        ));
        // Bad magic.
        let mut bad = raw.clone();
        bad[0] = b'X';
        assert_eq!(
            CompiledGhsom::from_bytes(&bad).unwrap_err(),
            ServeError::BadMagic
        );
        // Unknown version.
        let mut bad = raw.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            CompiledGhsom::from_bytes(&bad).unwrap_err(),
            ServeError::UnsupportedVersion {
                found: 99,
                supported: BUNDLE_VERSION
            }
        );
    }

    #[test]
    fn structural_corruption_cannot_reach_the_walker() {
        let c = compiled();
        // Introduce a back-edge (cycle) in the children table and re-seal
        // the snapshot with a fresh checksum: the structural validator must
        // reject it even though the checksum passes.
        let mut evil = c.clone();
        if evil.map_count() > 1 {
            // Point a child of the *last* map back at the root.
            let last = evil.map_count() - 1;
            let at = evil.unit_off[last] as usize;
            evil.children[at] = 0;
            let raw = evil.to_bytes();
            assert!(matches!(
                CompiledGhsom::from_bytes(&raw).unwrap_err(),
                ServeError::Malformed(_)
            ));
        }
        // Shape lie: rows×cols no longer matches the unit count.
        let mut evil = c.clone();
        evil.rows[0] += 1;
        let raw = evil.to_bytes();
        assert!(matches!(
            CompiledGhsom::from_bytes(&raw).unwrap_err(),
            ServeError::Malformed(_)
        ));
    }

    #[test]
    fn version_policy_is_documented_in_the_header() {
        let raw = compiled().to_bytes();
        assert_eq!(&raw[..8], &MAGIC);
        assert_eq!(bytes::get_u32(&raw, 8), Some(VERSION));
        // Declared length matches the buffer exactly.
        assert_eq!(bytes::get_u64(&raw, 16), Some(raw.len() as u64));
    }
}
