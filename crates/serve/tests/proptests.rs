//! Property tests of the serving plane: compiled-vs-tree equivalence on
//! random hierarchies (including duplicate-weight ties), snapshot
//! roundtrips, and typed errors on truncated/corrupted/wrong-version
//! bytes.

use ghsom_core::{GhsomConfig, GhsomModel, MapNode};
use ghsom_serve::{Compile, CompiledGhsom, ServeError, SnapshotView};
use mathkit::{Matrix, Metric};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use som::map::Som;
use som::topology::GridTopology;

/// Builds a random multi-level hierarchy directly through
/// `GhsomModel::from_parts` — unlike trained models this covers arbitrary
/// shapes, duplicate codebook rows (tie cases) and ragged child fan-out.
fn random_model(seed: u64, dim: usize, with_ties: bool) -> GhsomModel {
    let mut rng = StdRng::seed_from_u64(seed);
    struct Pending {
        parent: Option<(usize, usize)>,
        depth: usize,
    }
    let mut specs = vec![Pending {
        parent: None,
        depth: 1,
    }];
    let mut nodes: Vec<MapNode> = Vec::new();
    let mut i = 0;
    while i < specs.len() {
        let spec = &specs[i];
        let rows = rng.gen_range(1..4usize);
        let cols = rng.gen_range(if rows == 1 { 2..4usize } else { 1..4usize });
        let units = rows * cols;
        let mut w: Vec<f64> = (0..units * dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
        if with_ties && units >= 2 {
            // Duplicate unit 0's weights onto the last unit: BMU ties must
            // resolve to the lower index on both planes.
            let (head, tail) = w.split_at_mut((units - 1) * dim);
            tail.copy_from_slice(&head[..dim]);
        }
        let som = Som::from_parts(
            GridTopology::rectangular(rows, cols).unwrap(),
            Matrix::from_flat(units, dim, w).unwrap(),
            Metric::Euclidean,
        )
        .unwrap();
        let mut children = vec![None; units];
        let depth = spec.depth;
        let parent = spec.parent;
        if depth < 3 && specs.len() < 7 {
            for (u, slot) in children.iter_mut().enumerate() {
                if specs.len() < 7 && rng.gen_range(0..100) < 35 {
                    *slot = Some(specs.len());
                    specs.push(Pending {
                        parent: Some((i, u)),
                        depth: depth + 1,
                    });
                }
            }
        }
        let hits: Vec<usize> = (0..units).map(|_| rng.gen_range(0..50usize)).collect();
        let mqe: Vec<f64> = (0..units).map(|_| rng.gen_range(0.0..1.0)).collect();
        nodes.push(MapNode::new(som, depth, parent, children, hits, mqe).unwrap());
        i += 1;
    }
    let mean: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    GhsomModel::from_parts(GhsomConfig::default(), mean, rng.gen_range(0.0..3.0), nodes).unwrap()
}

/// Random inputs, biased onto codebook rows so exact-hit ties are
/// exercised.
fn random_inputs(model: &GhsomModel, seed: u64, n: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let dim = model.dim();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            if rng.gen_range(0..100) < 30 {
                // Exactly on a random unit's weights (distance 0, tie with
                // any duplicate row).
                let node = rng.gen_range(0..model.map_count());
                let som = model.nodes()[node].som();
                let unit = rng.gen_range(0..som.len());
                som.unit_weight(unit).to_vec()
            } else {
                (0..dim).map(|_| rng.gen_range(-2.5..2.5)).collect()
            }
        })
        .collect();
    Matrix::from_rows(rows).unwrap()
}

/// Copies `raw` to an 8-byte-aligned position inside a padded buffer.
fn aligned_copy(raw: &[u8]) -> (Vec<u8>, usize) {
    let mut buf = vec![0u8; raw.len() + 8];
    let off = buf.as_ptr().align_offset(8);
    buf[off..off + raw.len()].copy_from_slice(raw);
    (buf, off)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compiled arena reproduces the tree's projections bit-for-bit:
    /// identical paths (same nodes, same units — ties included) and
    /// identical distances, on random hierarchies and random inputs.
    #[test]
    fn compiled_projections_match_the_tree(seed in 0u64..200, dim in 2usize..6) {
        let model = random_model(seed, dim, seed % 2 == 0);
        let compiled = model.compile().unwrap();
        let data = random_inputs(&model, seed, 40);
        let tree = model.project_batch(&data).unwrap();
        let flat = compiled.project_batch(&data).unwrap();
        prop_assert_eq!(tree.len(), flat.len());
        for (t, f) in tree.iter().zip(&flat) {
            prop_assert_eq!(t.steps().len(), f.steps().len());
            for (a, b) in t.steps().iter().zip(f.steps()) {
                prop_assert_eq!(a.node, b.node);
                prop_assert_eq!(a.unit, b.unit);
                prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
        }
        // The single-sample walk agrees with the batched walk.
        for x in data.iter_rows().take(8) {
            let single = compiled.project(x).unwrap();
            let tree_single = model.project(x).unwrap();
            prop_assert_eq!(single.leaf_key(), tree_single.leaf_key());
            prop_assert_eq!(
                single.leaf_qe().to_bits(),
                tree_single.leaf_qe().to_bits()
            );
        }
        // And the leaf-only scorer matches the full projections.
        let scores = compiled.score_all(&data).unwrap();
        for (p, s) in flat.iter().zip(&scores) {
            prop_assert_eq!(p.leaf_qe().to_bits(), s.to_bits());
        }
    }

    /// Snapshot encode→decode is the identity, both through the owned
    /// decoder and the zero-copy view.
    #[test]
    fn snapshot_roundtrips_exactly(seed in 0u64..200, dim in 2usize..6) {
        let model = random_model(seed, dim, seed % 3 == 0);
        let compiled = model.compile().unwrap();
        let raw = compiled.to_bytes();
        let back = CompiledGhsom::from_bytes(&raw).unwrap();
        prop_assert_eq!(&back, &compiled);
        let (buf, off) = aligned_copy(&raw);
        let view = SnapshotView::parse(&buf[off..off + raw.len()]).unwrap();
        prop_assert_eq!(view.to_owned(), compiled);
        // The reloaded arena scores identically to the source tree.
        let data = random_inputs(&model, seed, 12);
        let tree = model.score_matrix(&data).unwrap();
        let served = back.score_all(&data).unwrap();
        let viewed = view.score_all(&data).unwrap();
        for ((a, b), c) in tree.iter().zip(&served).zip(&viewed) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
            prop_assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    /// Truncating a snapshot anywhere yields a typed error — never a
    /// panic, never a model.
    #[test]
    fn truncation_always_errors_typed(seed in 0u64..60, frac in 0usize..100) {
        let model = random_model(seed, 3, false);
        let raw = model.compile().unwrap().to_bytes();
        let cut = raw.len() * frac / 100;
        let err = CompiledGhsom::from_bytes(&raw[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, ServeError::Truncated { .. }),
            "cut at {} gave {:?}", cut, err
        );
        let (buf, off) = aligned_copy(&raw[..cut]);
        prop_assert!(SnapshotView::parse(&buf[off..off + cut]).is_err());
    }

    /// Flipping any single byte yields a typed error — the checksum (or a
    /// header check) always catches it.
    #[test]
    fn corruption_always_errors_typed(seed in 0u64..60, at_frac in 0usize..100, bit in 0u8..8) {
        let model = random_model(seed, 3, false);
        let raw = model.compile().unwrap().to_bytes();
        let at = (raw.len() - 1) * at_frac / 100;
        let mut bad = raw.clone();
        bad[at] ^= 1 << bit;
        prop_assert!(
            CompiledGhsom::from_bytes(&bad).is_err(),
            "flip at {} bit {} was not detected", at, bit
        );
    }

    /// Unknown versions are rejected with the version error specifically;
    /// the bundle version (2) is *known* but demands the bundle sections,
    /// so a relabelled model-only snapshot errors as malformed instead.
    #[test]
    fn unknown_versions_error_typed(seed in 0u64..20, version in 2u32..1000) {
        let model = random_model(seed, 3, false);
        let mut raw = model.compile().unwrap().to_bytes();
        raw[8..12].copy_from_slice(&version.to_le_bytes());
        if version == ghsom_serve::snapshot::BUNDLE_VERSION {
            prop_assert!(matches!(
                CompiledGhsom::from_bytes(&raw).unwrap_err(),
                ServeError::Malformed(_)
            ));
        } else {
            prop_assert_eq!(
                CompiledGhsom::from_bytes(&raw).unwrap_err(),
                ServeError::UnsupportedVersion {
                    found: version,
                    supported: ghsom_serve::snapshot::BUNDLE_VERSION,
                }
            );
        }
    }
}
