//! Property tests of the serving plane: compiled-vs-tree equivalence on
//! random hierarchies (including duplicate-weight ties), fused-vs-unfused
//! walk bit-identity, sharded-vs-single-engine bit-identity, snapshot
//! roundtrips, and typed errors on truncated/corrupted/wrong-version
//! bytes.

use std::sync::OnceLock;

use ghsom_core::{GhsomConfig, GhsomModel, MapNode};
use ghsom_serve::{
    Compile, CompiledGhsom, Engine, EngineConfig, ServeError, ShardedEngine, SnapshotView,
};
use mathkit::{Matrix, Metric};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use som::map::Som;
use som::topology::GridTopology;
use traffic::ConnectionRecord;

/// Builds a random multi-level hierarchy directly through
/// `GhsomModel::from_parts` — unlike trained models this covers arbitrary
/// shapes, duplicate codebook rows (tie cases) and ragged child fan-out.
fn random_model(seed: u64, dim: usize, with_ties: bool) -> GhsomModel {
    let mut rng = StdRng::seed_from_u64(seed);
    struct Pending {
        parent: Option<(usize, usize)>,
        depth: usize,
    }
    let mut specs = vec![Pending {
        parent: None,
        depth: 1,
    }];
    let mut nodes: Vec<MapNode> = Vec::new();
    let mut i = 0;
    while i < specs.len() {
        let spec = &specs[i];
        let rows = rng.gen_range(1..4usize);
        let cols = rng.gen_range(if rows == 1 { 2..4usize } else { 1..4usize });
        let units = rows * cols;
        let mut w: Vec<f64> = (0..units * dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
        if with_ties && units >= 2 {
            // Duplicate unit 0's weights onto the last unit: BMU ties must
            // resolve to the lower index on both planes.
            let (head, tail) = w.split_at_mut((units - 1) * dim);
            tail.copy_from_slice(&head[..dim]);
        }
        let som = Som::from_parts(
            GridTopology::rectangular(rows, cols).unwrap(),
            Matrix::from_flat(units, dim, w).unwrap(),
            Metric::Euclidean,
        )
        .unwrap();
        let mut children = vec![None; units];
        let depth = spec.depth;
        let parent = spec.parent;
        if depth < 3 && specs.len() < 7 {
            for (u, slot) in children.iter_mut().enumerate() {
                if specs.len() < 7 && rng.gen_range(0..100) < 35 {
                    *slot = Some(specs.len());
                    specs.push(Pending {
                        parent: Some((i, u)),
                        depth: depth + 1,
                    });
                }
            }
        }
        let hits: Vec<usize> = (0..units).map(|_| rng.gen_range(0..50usize)).collect();
        let mqe: Vec<f64> = (0..units).map(|_| rng.gen_range(0.0..1.0)).collect();
        nodes.push(MapNode::new(som, depth, parent, children, hits, mqe).unwrap());
        i += 1;
    }
    let mean: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    GhsomModel::from_parts(GhsomConfig::default(), mean, rng.gen_range(0.0..3.0), nodes).unwrap()
}

/// Like [`random_model`], but map sizes mix small fusable maps with
/// occasional large ones (> 64 units — more groups than the fusion
/// cutoff), so deep levels exercise the split frontier: some siblings
/// served from the fused slab, others from the plain per-map pruned walk.
fn random_model_mixed(seed: u64, dim: usize) -> GhsomModel {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x517E_D0D0);
    struct Pending {
        parent: Option<(usize, usize)>,
        depth: usize,
    }
    let mut specs = vec![Pending {
        parent: None,
        depth: 1,
    }];
    let mut nodes: Vec<MapNode> = Vec::new();
    let mut i = 0;
    while i < specs.len() {
        let spec = &specs[i];
        let (rows, cols) = if rng.gen_range(0..100) < 30 {
            // Too many groups to fuse: 72..120 units.
            (rng.gen_range(9..13usize), rng.gen_range(8..10usize))
        } else {
            let r = rng.gen_range(1..4usize);
            (r, rng.gen_range(if r == 1 { 2..4usize } else { 1..4usize }))
        };
        let units = rows * cols;
        let w: Vec<f64> = (0..units * dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let som = Som::from_parts(
            GridTopology::rectangular(rows, cols).unwrap(),
            Matrix::from_flat(units, dim, w).unwrap(),
            Metric::Euclidean,
        )
        .unwrap();
        let mut children = vec![None; units];
        let depth = spec.depth;
        let parent = spec.parent;
        if depth < 4 && specs.len() < 9 {
            for (u, slot) in children.iter_mut().enumerate() {
                if specs.len() < 9 && rng.gen_range(0..100) < 30 {
                    *slot = Some(specs.len());
                    specs.push(Pending {
                        parent: Some((i, u)),
                        depth: depth + 1,
                    });
                }
            }
        }
        let hits: Vec<usize> = (0..units).map(|_| rng.gen_range(0..50usize)).collect();
        let mqe: Vec<f64> = (0..units).map(|_| rng.gen_range(0.0..1.0)).collect();
        nodes.push(MapNode::new(som, depth, parent, children, hits, mqe).unwrap());
        i += 1;
    }
    let mean: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    GhsomModel::from_parts(GhsomConfig::default(), mean, rng.gen_range(0.0..3.0), nodes).unwrap()
}

/// Random inputs, biased onto codebook rows so exact-hit ties are
/// exercised.
fn random_inputs(model: &GhsomModel, seed: u64, n: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let dim = model.dim();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            if rng.gen_range(0..100) < 30 {
                // Exactly on a random unit's weights (distance 0, tie with
                // any duplicate row).
                let node = rng.gen_range(0..model.map_count());
                let som = model.nodes()[node].som();
                let unit = rng.gen_range(0..som.len());
                som.unit_weight(unit).to_vec()
            } else {
                (0..dim).map(|_| rng.gen_range(-2.5..2.5)).collect()
            }
        })
        .collect();
    Matrix::from_rows(rows).unwrap()
}

/// Copies `raw` to an 8-byte-aligned position inside a padded buffer.
fn aligned_copy(raw: &[u8]) -> (Vec<u8>, usize) {
    let mut buf = vec![0u8; raw.len() + 8];
    let off = buf.as_ptr().align_offset(8);
    buf[off..off + raw.len()].copy_from_slice(raw);
    (buf, off)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compiled arena reproduces the tree's projections bit-for-bit:
    /// identical paths (same nodes, same units — ties included) and
    /// identical distances, on random hierarchies and random inputs.
    #[test]
    fn compiled_projections_match_the_tree(seed in 0u64..200, dim in 2usize..6) {
        let model = random_model(seed, dim, seed % 2 == 0);
        let compiled = model.compile().unwrap();
        let data = random_inputs(&model, seed, 40);
        let tree = model.project_batch(&data).unwrap();
        let flat = compiled.project_batch(&data).unwrap();
        prop_assert_eq!(tree.len(), flat.len());
        for (t, f) in tree.iter().zip(&flat) {
            prop_assert_eq!(t.steps().len(), f.steps().len());
            for (a, b) in t.steps().iter().zip(f.steps()) {
                prop_assert_eq!(a.node, b.node);
                prop_assert_eq!(a.unit, b.unit);
                prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
        }
        // The single-sample walk agrees with the batched walk.
        for x in data.iter_rows().take(8) {
            let single = compiled.project(x).unwrap();
            let tree_single = model.project(x).unwrap();
            prop_assert_eq!(single.leaf_key(), tree_single.leaf_key());
            prop_assert_eq!(
                single.leaf_qe().to_bits(),
                tree_single.leaf_qe().to_bits()
            );
        }
        // And the leaf-only scorer matches the full projections.
        let scores = compiled.score_all(&data).unwrap();
        for (p, s) in flat.iter().zip(&scores) {
            prop_assert_eq!(p.leaf_qe().to_bits(), s.to_bits());
        }
    }

    /// Snapshot encode→decode is the identity, both through the owned
    /// decoder and the zero-copy view.
    #[test]
    fn snapshot_roundtrips_exactly(seed in 0u64..200, dim in 2usize..6) {
        let model = random_model(seed, dim, seed % 3 == 0);
        let compiled = model.compile().unwrap();
        let raw = compiled.to_bytes();
        let back = CompiledGhsom::from_bytes(&raw).unwrap();
        prop_assert_eq!(&back, &compiled);
        let (buf, off) = aligned_copy(&raw);
        let view = SnapshotView::parse(&buf[off..off + raw.len()]).unwrap();
        prop_assert_eq!(view.to_owned(), compiled);
        // The reloaded arena scores identically to the source tree.
        let data = random_inputs(&model, seed, 12);
        let tree = model.score_matrix(&data).unwrap();
        let served = back.score_all(&data).unwrap();
        let viewed = view.score_all(&data).unwrap();
        for ((a, b), c) in tree.iter().zip(&served).zip(&viewed) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
            prop_assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    /// Truncating a snapshot anywhere yields a typed error — never a
    /// panic, never a model.
    #[test]
    fn truncation_always_errors_typed(seed in 0u64..60, frac in 0usize..100) {
        let model = random_model(seed, 3, false);
        let raw = model.compile().unwrap().to_bytes();
        let cut = raw.len() * frac / 100;
        let err = CompiledGhsom::from_bytes(&raw[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, ServeError::Truncated { .. }),
            "cut at {} gave {:?}", cut, err
        );
        let (buf, off) = aligned_copy(&raw[..cut]);
        prop_assert!(SnapshotView::parse(&buf[off..off + cut]).is_err());
    }

    /// Flipping any single byte yields a typed error — the checksum (or a
    /// header check) always catches it.
    #[test]
    fn corruption_always_errors_typed(seed in 0u64..60, at_frac in 0usize..100, bit in 0u8..8) {
        let model = random_model(seed, 3, false);
        let raw = model.compile().unwrap().to_bytes();
        let at = (raw.len() - 1) * at_frac / 100;
        let mut bad = raw.clone();
        bad[at] ^= 1 << bit;
        prop_assert!(
            CompiledGhsom::from_bytes(&bad).is_err(),
            "flip at {} bit {} was not detected", at, bit
        );
    }

    /// Unknown versions are rejected with the version error specifically;
    /// the bundle version (2) is *known* but demands the bundle sections,
    /// so a relabelled model-only snapshot errors as malformed instead.
    #[test]
    fn unknown_versions_error_typed(seed in 0u64..20, version in 2u32..1000) {
        let model = random_model(seed, 3, false);
        let mut raw = model.compile().unwrap().to_bytes();
        raw[8..12].copy_from_slice(&version.to_le_bytes());
        if version == ghsom_serve::snapshot::BUNDLE_VERSION {
            prop_assert!(matches!(
                CompiledGhsom::from_bytes(&raw).unwrap_err(),
                ServeError::Malformed(_)
            ));
        } else {
            prop_assert_eq!(
                CompiledGhsom::from_bytes(&raw).unwrap_err(),
                ServeError::UnsupportedVersion {
                    found: version,
                    supported: ghsom_serve::snapshot::BUNDLE_VERSION,
                }
            );
        }
    }

    /// The level-fused frontier walk is **bit-identical** to the plain
    /// per-map pruned walk — full paths (nodes, units, distances) and
    /// leaf scores — on hierarchies that mix fusable small maps with
    /// oversized ones, so both sides of the per-level frontier split are
    /// exercised, ties included.
    #[test]
    fn fused_walk_matches_unfused_bitwise(seed in 0u64..160, dim in 2usize..6) {
        let model = if seed % 2 == 0 {
            random_model_mixed(seed, dim)
        } else {
            // Small-maps-only hierarchies (with duplicate-row ties):
            // everything below the root fuses.
            random_model(seed, dim, true)
        };
        let compiled = model.compile().unwrap();
        let data = random_inputs(&model, seed, 48);
        let fused = compiled.project_batch_view(data.view()).unwrap();
        let plain = compiled.project_batch_view_unfused(data.view()).unwrap();
        prop_assert_eq!(fused.len(), plain.len());
        for (f, p) in fused.iter().zip(&plain) {
            prop_assert_eq!(f.steps().len(), p.steps().len());
            for (a, b) in f.steps().iter().zip(p.steps()) {
                prop_assert_eq!(a.node, b.node);
                prop_assert_eq!(a.unit, b.unit);
                prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
        }
        let fused_scores = compiled.score_all_view(data.view()).unwrap();
        let plain_scores = compiled.score_all_view_unfused(data.view()).unwrap();
        for (a, b) in fused_scores.iter().zip(&plain_scores) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// One fitted engine, shared across sharding property cases as bundle
/// bytes — `Engine::from_bytes` clones it bit-identically per case, so
/// each case gets private streaming state without refitting.
fn serving_fixture() -> &'static (Vec<u8>, Vec<ConnectionRecord>) {
    static FIXTURE: OnceLock<(Vec<u8>, Vec<ConnectionRecord>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (train, test) = traffic::synth::kdd_train_test(400, 512, 11).expect("synth dataset");
        let engine =
            Engine::fit(&EngineConfig::default().with_stream(3.0, 64), &train).expect("fit engine");
        (engine.to_bytes(), test.records().to_vec())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sharded serving plane is **bit-identical** to the single
    /// engine for any shard width and batch window: same verdict order,
    /// same scores and flags from `score_records`, same stream verdicts
    /// from `observe_records`, and the same exported `StreamState` —
    /// including widths far above the record count (mostly-empty shards).
    #[test]
    fn sharded_serving_is_bit_identical(
        shards in 1usize..10,
        start in 0usize..256,
        len in 0usize..512,
    ) {
        let (bundle, records) = serving_fixture();
        let window = &records[start.min(records.len())..(start + len).min(records.len())];

        let reference = Engine::from_bytes(bundle).unwrap();
        let expected_scores = reference.score_records(window).unwrap();
        let expected_stream = reference.observe_records(window).unwrap();

        let sharded = ShardedEngine::new(Engine::from_bytes(bundle).unwrap(), shards);
        let scores = sharded.score_records(window).unwrap();
        let stream = sharded.observe_records(window).unwrap();

        prop_assert_eq!(scores.len(), expected_scores.len());
        for (g, e) in scores.iter().zip(&expected_scores) {
            prop_assert_eq!(g.score.to_bits(), e.score.to_bits());
            prop_assert_eq!(g.anomalous, e.anomalous);
            prop_assert_eq!(g.category, e.category);
        }
        prop_assert_eq!(stream.len(), expected_stream.len());
        for (g, e) in stream.iter().zip(&expected_stream) {
            prop_assert_eq!(g.score.to_bits(), e.score.to_bits());
            prop_assert_eq!(g.anomalous, e.anomalous);
            // NaN threshold during warmup compares bitwise, not by ==.
            prop_assert_eq!(g.threshold.to_bits(), e.threshold.to_bits());
        }

        let a = sharded.stream_state();
        let b = reference.stream_state();
        prop_assert_eq!(a.seen, b.seen);
        prop_assert_eq!(a.flagged, b.flagged);
        prop_assert_eq!(a.tracked, b.tracked);
        prop_assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        prop_assert_eq!(a.m2.to_bits(), b.m2.to_bits());
    }
}
