//! Property tests of the sharded-ingest exactness contracts:
//!
//! * the **serving-plane topology** — stateless scoring split across K
//!   contiguous chunks, verdicts folded through *one* accumulator in
//!   arrival order ([`StreamingDetector::observe_prescored`]) — is
//!   bit-identical to the single-stream fold for any split;
//! * the **fleet topology** — per-shard baselines accumulated
//!   independently and reduced with [`StreamState::merge_all`]
//!   (`Welford::from_parts` + Chan merge) — has exact counters, bit-exact
//!   empty-shard behaviour, and moments equal to the single-stream fold
//!   up to floating-point rounding;
//! * hostile shard states (inconsistent counters, non-finite moments)
//!   are typed errors, never a poisoned baseline.

use detect::online::{StreamState, StreamingDetector};
use detect::prelude::PcaDetector;
use detect::DetectError;
use mathkit::Matrix;
use proptest::prelude::*;

/// A cheap fitted detector: `observe_prescored` never calls it, and the
/// fleet-topology tests only need its `StreamingDetector` wrapper.
fn stream(k_sigma: f64, warmup: u64) -> StreamingDetector<PcaDetector> {
    let normal =
        Matrix::from_rows((0..32).map(|i| vec![(i % 8) as f64 * 0.1, 1.0]).collect()).unwrap();
    let pca = PcaDetector::fit(&normal, 1, 0.99, 0).unwrap();
    StreamingDetector::new(pca, k_sigma, warmup)
}

/// A random prescored stream: scores in a band that straddles typical
/// thresholds, flags biased ~20% anomalous so both fold branches run.
fn prescored(seed: u64, n: usize) -> Vec<(f64, bool)> {
    // Tiny deterministic LCG — keeps the generator independent of the
    // proptest shrinker so a shrunk case stays reproducible.
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..n)
        .map(|_| {
            let score = (next() % 10_000) as f64 / 2_500.0; // [0, 4)
            let flag = next() % 10 < 2;
            (score, flag)
        })
        .collect()
}

/// Splits `items` into `k` contiguous chunks (some possibly empty when
/// `k > items.len()`), like the sharded serving plane's batch scatter.
fn chunks<T: Clone>(items: &[T], k: usize) -> Vec<Vec<T>> {
    let k = k.max(1);
    let len = items.len().div_ceil(k).max(1);
    let mut out: Vec<Vec<T>> = items.chunks(len).map(<[T]>::to_vec).collect();
    out.resize(k, Vec::new());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serving-plane topology: folding the chunked stream through one
    /// accumulator, chunk by chunk in arrival order, is **bit-identical**
    /// to the unchunked fold — verdicts and exported state — for any
    /// shard count, including shards that get no records.
    #[test]
    fn chunked_prescored_fold_is_bit_identical(
        seed in 0u64..500,
        n in 0usize..400,
        k in 1usize..9,
        warmup in 0u64..64,
    ) {
        let scored = prescored(seed, n);

        let single = stream(3.0, warmup);
        let expected = single.observe_prescored(scored.iter().copied());

        let sharded = stream(3.0, warmup);
        let mut got = Vec::with_capacity(n);
        for chunk in chunks(&scored, k) {
            got.extend(sharded.observe_prescored(chunk));
        }

        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(g.score.to_bits(), e.score.to_bits());
            prop_assert_eq!(g.anomalous, e.anomalous);
            prop_assert_eq!(g.threshold.to_bits(), e.threshold.to_bits());
        }
        let a = sharded.export_state();
        let b = single.export_state();
        prop_assert_eq!(a.seen, b.seen);
        prop_assert_eq!(a.flagged, b.flagged);
        prop_assert_eq!(a.tracked, b.tracked);
        prop_assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        prop_assert_eq!(a.m2.to_bits(), b.m2.to_bits());
    }

    /// Fleet topology: independently accumulated shard baselines reduced
    /// with `merge_all` carry **exact** counters and moments equal to the
    /// single-stream fold up to rounding — and an exported state survives
    /// an import→export roundtrip bit-for-bit (`Welford::from_parts`
    /// rebuilds the identical accumulator).
    #[test]
    fn merged_shard_baselines_match_the_single_fold(
        seed in 0u64..500,
        n in 0usize..400,
        k in 1usize..9,
    ) {
        let scored = prescored(seed, n);

        // Warmup 0 so every shard thresholds adaptively from its own
        // baseline — the independent-baseline topology by construction.
        let single = stream(3.0, 0);
        single.observe_prescored(scored.iter().copied());
        let folded = single.export_state();

        let parts: Vec<StreamState> = chunks(&scored, k)
            .into_iter()
            .map(|chunk| {
                let shard = stream(3.0, 0);
                shard.observe_prescored(chunk);
                shard.export_state()
            })
            .collect();
        let merged = StreamState::merge_all(&parts).unwrap();

        // Counters are integers: exact, always.
        prop_assert_eq!(merged.seen, folded.seen);
        prop_assert_eq!(
            merged.seen,
            parts.iter().map(|p| p.seen).sum::<u64>()
        );
        // Flagged counts may differ between topologies (each shard's
        // threshold saw different history), but the merge itself must
        // preserve the shard totals exactly.
        prop_assert_eq!(
            merged.flagged,
            parts.iter().map(|p| p.flagged).sum::<u64>()
        );
        prop_assert_eq!(
            merged.tracked,
            parts.iter().map(|p| p.tracked).sum::<u64>()
        );

        // Import→export roundtrip is bit-exact (from_parts rebuilds the
        // identical Welford accumulator).
        let back = stream(3.0, 0);
        back.import_state(merged).unwrap();
        let roundtrip = back.export_state();
        prop_assert_eq!(roundtrip.mean.to_bits(), merged.mean.to_bits());
        prop_assert_eq!(roundtrip.m2.to_bits(), merged.m2.to_bits());
        prop_assert_eq!(roundtrip.tracked, merged.tracked);
    }

    /// A single non-empty shard among empties reduces **bit-for-bit** —
    /// the degenerate splits a hash/round-robin distributor produces for
    /// tiny traffic must not perturb the baseline at all.
    #[test]
    fn empty_shards_are_bitwise_neutral(
        seed in 0u64..500,
        n in 0usize..200,
        k in 2usize..9,
        pos_seed in 0usize..64,
    ) {
        let live = stream(3.0, 8);
        live.observe_prescored(prescored(seed, n));
        let state = live.export_state();

        let mut parts = vec![StreamState::default(); k];
        parts[pos_seed % k] = state;
        let merged = StreamState::merge_all(&parts).unwrap();

        prop_assert_eq!(merged.seen, state.seen);
        prop_assert_eq!(merged.flagged, state.flagged);
        prop_assert_eq!(merged.tracked, state.tracked);
        prop_assert_eq!(merged.mean.to_bits(), state.mean.to_bits());
        prop_assert_eq!(merged.m2.to_bits(), state.m2.to_bits());
    }

    /// Hostile shard states abort the reduction with a typed error:
    /// inconsistent counters (`tracked + flagged != seen`) and non-finite
    /// or negative moments must never fold into a served baseline.
    #[test]
    fn hostile_shard_states_error_typed(
        seed in 0u64..200,
        n in 1usize..100,
        kind in 0usize..4,
    ) {
        let live = stream(3.0, 4);
        live.observe_prescored(prescored(seed, n));
        let good = live.export_state();

        let bad = match kind {
            0 => StreamState { seen: good.seen + 1, ..good },
            1 => StreamState { mean: f64::NAN, ..good },
            2 => StreamState { m2: -1.0, ..good },
            _ => StreamState { m2: f64::INFINITY, ..good },
        };
        // Counter inconsistencies surface as `InvalidParameter`; hostile
        // moments are caught inside `Welford::from_parts` and arrive as
        // the wrapped math error. Either way: typed, never a panic, never
        // a merged result.
        let typed = |err: &DetectError| {
            matches!(
                err,
                DetectError::InvalidParameter { .. } | DetectError::Model(_)
            )
        };
        let err = StreamState::merge_all(&[good, bad]).unwrap_err();
        prop_assert!(typed(&err), "unexpected error {err:?}");
        // And symmetrically on the left.
        let err = StreamState::merge_all(&[bad, good]).unwrap_err();
        prop_assert!(typed(&err), "unexpected error {err:?}");
    }
}
