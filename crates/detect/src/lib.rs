//! Anomaly detectors over the GHSOM, plus the paper's comparison baselines.
//!
//! All detectors implement the [`Detector`] trait (higher score = more
//! anomalous) and, when trained with labels, the [`Classifier`] trait
//! (predict an [`AttackCategory`]). The concrete implementations are:
//!
//! * [`threshold::QeThresholdDetector`] — GHSOM leaf quantization error
//!   against a threshold calibrated on normal training traffic.
//! * [`labeled::LabeledGhsomDetector`] — leaf units labelled by training
//!   majority vote; records landing on attack-labelled or dead units are
//!   flagged.
//! * [`hybrid::HybridGhsomDetector`] — labels first, QE threshold as a
//!   second line of defence for records that land on normal-labelled units
//!   at unusual distance.
//! * [`baseline`] — flat SOM, k-means++, single-layer growing grid
//!   (hierarchy ablation) and PCA-residual detectors.
//! * [`online::StreamingDetector`] — a thread-safe streaming wrapper with
//!   an adaptive threshold.
//!
//! # Example
//!
//! ```
//! use detect::prelude::*;
//! use featurize::{KddPipeline, PipelineConfig};
//! use ghsom_core::{GhsomConfig, GhsomModel};
//! use traffic::synth;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (train, test) = synth::kdd_train_test(800, 400, 5)?;
//! let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train)?;
//! let x_train = pipeline.transform_dataset(&train)?;
//! let model = GhsomModel::train(&GhsomConfig::default(), &x_train)?;
//!
//! // Calibrate the QE threshold on the normal part of the training data.
//! let normal = train.filter(|r| !r.is_attack());
//! let x_normal = pipeline.transform_dataset(&normal)?;
//! let detector = QeThresholdDetector::fit(model, &x_normal, 0.99)?;
//!
//! let x = pipeline.transform(&test.records()[0])?;
//! let _verdict = detector.is_anomalous(&x)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod error;
pub mod explain;
pub mod hybrid;
pub mod labeled;
pub mod online;
pub mod threshold;
pub mod typed;

pub use error::DetectError;

use traffic::AttackCategory;

/// A fitted anomaly scorer: higher scores are more anomalous.
pub trait Detector {
    /// Anomaly score of one feature vector.
    ///
    /// # Errors
    ///
    /// Implementations return [`DetectError::DimensionMismatch`] on inputs
    /// of the wrong width.
    fn score(&self, x: &[f64]) -> Result<f64, DetectError>;

    /// Binary verdict at the detector's fitted threshold.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::score`].
    fn is_anomalous(&self, x: &[f64]) -> Result<bool, DetectError>;

    /// Score **and** verdict for one sample — the single-record analogue
    /// of [`Detector::score_and_flag_all`], and the call streaming
    /// consumers ([`online::StreamingDetector::observe`]) make per
    /// record. The default runs the two methods back to back;
    /// model-backed detectors override it to derive both from a single
    /// hierarchy traversal. Overrides must produce exactly the separate
    /// methods' values.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::score`] /
    /// [`Detector::is_anomalous`].
    fn score_and_flag(&self, x: &[f64]) -> Result<(f64, bool), DetectError> {
        Ok((self.score(x)?, self.is_anomalous(x)?))
    }

    /// Short human-readable name for result tables.
    fn name(&self) -> &'static str;

    /// Scores a whole matrix of samples.
    ///
    /// The default maps [`Detector::score`] row by row; concrete detectors
    /// override it with batched (and, under the `rayon` feature,
    /// data-parallel) implementations that produce the same values.
    ///
    /// # Errors
    ///
    /// Per-sample errors from [`Detector::score`].
    fn score_all(&self, data: &mathkit::Matrix) -> Result<Vec<f64>, DetectError> {
        data.iter_rows().map(|x| self.score(x)).collect()
    }

    /// Binary verdicts for a whole matrix of samples.
    ///
    /// The default maps [`Detector::is_anomalous`] row by row; detectors
    /// with a batched scorer override it so bulk paths (e.g.
    /// [`online::StreamingDetector::observe_batch`]) avoid per-sample
    /// model traversals. Overrides must produce exactly the per-sample
    /// verdicts.
    ///
    /// # Errors
    ///
    /// Per-sample errors from [`Detector::is_anomalous`].
    fn is_anomalous_all(&self, data: &mathkit::Matrix) -> Result<Vec<bool>, DetectError> {
        data.iter_rows().map(|x| self.is_anomalous(x)).collect()
    }

    /// Scores **and** verdicts for a whole matrix in one call — the shape
    /// streaming consumers want. The default runs the two batched methods
    /// back to back; model-backed detectors override it to derive both
    /// from a single hierarchy traversal. Overrides must produce exactly
    /// the per-sample scores and verdicts.
    ///
    /// # Errors
    ///
    /// Per-sample errors from [`Detector::score`] /
    /// [`Detector::is_anomalous`].
    #[allow(clippy::type_complexity)]
    fn score_and_flag_all(
        &self,
        data: &mathkit::Matrix,
    ) -> Result<(Vec<f64>, Vec<bool>), DetectError> {
        Ok((self.score_all(data)?, self.is_anomalous_all(data)?))
    }

    /// [`Detector::score_and_flag_all`] over a **borrowed**
    /// [`mathkit::MatrixView`] — the zero-copy entry point the fused
    /// serving path uses (a reused feature-transform buffer handed
    /// straight to the detector, no owned matrix in between). An empty
    /// view yields empty vectors.
    ///
    /// The default copies the view into an owned matrix; model-backed
    /// detectors whose hierarchy walk accepts borrowed buffers override
    /// it. Overrides must produce exactly the owned path's scores and
    /// verdicts.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::score_and_flag_all`].
    #[allow(clippy::type_complexity)]
    fn score_and_flag_all_view(
        &self,
        data: mathkit::MatrixView<'_>,
    ) -> Result<(Vec<f64>, Vec<bool>), DetectError> {
        if data.rows() == 0 {
            return Ok((Vec::new(), Vec::new()));
        }
        self.score_and_flag_all(&data.to_matrix()?)
    }
}

/// The shared verdict-consistent score convention of the labelled
/// detectors: records on attack-labelled (or unresolvable) units score in
/// `(2, 3]`; normal-labelled records score by their distance relative to
/// the calibrated threshold, mapped into `[0, 2)` so that `score > 1`
/// exactly when `distance > threshold`.
///
/// One definition keeps every `score`/`score_all` pair trivially in
/// agreement.
pub(crate) fn verdict_score(distance: f64, threshold: f64, is_normal: bool) -> f64 {
    if !is_normal {
        return 2.0 + distance / (1.0 + distance);
    }
    let r = if threshold > 0.0 {
        distance / threshold
    } else if distance > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    2.0 * r / (1.0 + r)
}

/// Chunk-parallel [`Detector::score_all`] for detectors whose per-sample
/// scoring has no better batched form. Bit-identical to the sequential
/// default (chunks merge in order).
pub(crate) fn score_all_parallel<D: Detector + Sync>(
    detector: &D,
    data: &mathkit::Matrix,
) -> Result<Vec<f64>, DetectError> {
    let chunks = mathkit::parallel::par_map_chunks(data.rows(), 512, |range| {
        range
            .map(|i| detector.score(data.row(i)))
            .collect::<Result<Vec<f64>, DetectError>>()
    });
    let mut out = Vec::with_capacity(data.rows());
    for chunk in chunks {
        out.extend(chunk?);
    }
    Ok(out)
}

/// A detector that can also predict the coarse attack category.
pub trait Classifier: Detector {
    /// Predicted category; `None` means "anomalous but of unknown kind"
    /// (e.g. the sample landed on a unit no training record reached).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::score`].
    fn classify(&self, x: &[f64]) -> Result<Option<AttackCategory>, DetectError>;
}

/// Convenience re-exports for downstream code and examples.
pub mod prelude {
    pub use crate::baseline::flat_som::FlatSomDetector;
    pub use crate::baseline::growing::GrowingGridDetector;
    pub use crate::baseline::kmeans::KMeansDetector;
    pub use crate::baseline::pca::PcaDetector;
    pub use crate::explain::{explain, Explanation, FeatureDeviation};
    pub use crate::hybrid::{HybridGhsomDetector, HybridState, HybridVerdict};
    pub use crate::labeled::{DeadUnitPolicy, LabeledGhsomDetector, LabeledState};
    pub use crate::online::{StreamState, StreamStats, StreamVerdict, StreamingDetector};
    pub use crate::threshold::QeThresholdDetector;
    pub use crate::typed::TypedGhsomClassifier;
    pub use crate::{Classifier, DetectError, Detector};
}
