//! The labelled-unit detector: leaf units carry the majority category of
//! the training records mapped to them.
//!
//! This is the detection mode GHSOM-IDS papers use for *classification*
//! tables: after unsupervised training, each leaf unit is labelled by the
//! ground truth of its training members. A test record is classified by the
//! label of its leaf BMU. Records landing on **dead units** (no training
//! member) are anomalous by convention — nothing normal ever mapped there.

use std::collections::HashMap;

use ghsom_core::{GhsomModel, Scorer};
use mathkit::{Matrix, MatrixView};
use serde::{Deserialize, Serialize};
use traffic::AttackCategory;

use crate::{Classifier, DetectError, Detector};

/// Serializes leaf-keyed maps as sorted entry lists — JSON map keys must be
/// strings, and sorting keeps the serialized form deterministic.
mod leaf_map {
    use super::HashMap;
    use serde::{Deserialize, Serialize, Value};

    pub fn serialize<V: Serialize>(map: &HashMap<(usize, usize), V>) -> Value {
        let mut entries: Vec<(&(usize, usize), &V)> = map.iter().collect();
        entries.sort_by_key(|(k, _)| **k);
        Value::Seq(
            entries
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }

    pub fn deserialize<V: Deserialize>(
        v: &Value,
    ) -> Result<HashMap<(usize, usize), V>, serde::Error> {
        let entries: Vec<((usize, usize), V)> = Deserialize::from_value(v)?;
        Ok(entries.into_iter().collect())
    }
}

/// What to do when a record lands on a leaf unit no training record
/// reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DeadUnitPolicy {
    /// Treat the record as anomalous of unknown kind (the strict reading:
    /// nothing normal ever mapped there).
    Anomalous,
    /// Borrow the label of the nearest *labelled* unit in the same leaf
    /// map — the standard practical refinement: deep maps have sparsely
    /// hit units, and strict dead-unit flagging turns that sparsity into
    /// false positives. The QE threshold of the hybrid detector still
    /// backstops genuinely far-away records.
    #[default]
    NearestLabelled,
}

/// The fitted state of a [`LabeledGhsomDetector`], decoupled from the
/// hierarchy representation.
///
/// Leaf `(node, unit)` keys are stable across representations of the same
/// hierarchy, so a state extracted with [`LabeledGhsomDetector::state`]
/// can be rebound to any [`Scorer`] with
/// [`LabeledGhsomDetector::from_state`] — this is what lets a serving
/// bundle persist the label tables next to the compiled arena and
/// reconstruct the detector without the training-time model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledState {
    /// Majority category per leaf `(node, unit)`.
    #[serde(with = "leaf_map")]
    labels: HashMap<(usize, usize), AttackCategory>,
    /// Majority-vote purity per labelled leaf.
    #[serde(with = "leaf_map")]
    confidence: HashMap<(usize, usize), f64>,
    /// Dead-unit handling.
    policy: DeadUnitPolicy,
}

/// GHSOM with majority-vote leaf labels.
///
/// Generic over the hierarchy representation `M` (the [`GhsomModel`] tree
/// by default, or the compiled serving arena): leaf `(node, unit)` keys
/// are identical across representations, so a label table fitted on the
/// tree serves unchanged on the compiled plane via
/// [`LabeledGhsomDetector::with_scorer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledGhsomDetector<M = GhsomModel> {
    model: M,
    /// Majority category per leaf `(node, unit)`.
    #[serde(with = "leaf_map")]
    labels: HashMap<(usize, usize), AttackCategory>,
    /// Majority-vote purity per labelled leaf.
    #[serde(with = "leaf_map")]
    confidence: HashMap<(usize, usize), f64>,
    /// Dead-unit handling.
    policy: DeadUnitPolicy,
}

impl<M: Scorer> LabeledGhsomDetector<M> {
    /// Labels the model's leaf units from training data.
    ///
    /// # Errors
    ///
    /// [`DetectError::DimensionMismatch`] when `labels.len() !=
    /// train.rows()`; [`DetectError::EmptyInput`] on empty data; model
    /// errors propagate.
    pub fn fit(model: M, train: &Matrix, labels: &[AttackCategory]) -> Result<Self, DetectError> {
        Self::fit_with_policy(model, train, labels, DeadUnitPolicy::default())
    }

    /// [`LabeledGhsomDetector::fit`] with an explicit dead-unit policy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LabeledGhsomDetector::fit`].
    pub fn fit_with_policy(
        model: M,
        train: &Matrix,
        labels: &[AttackCategory],
        policy: DeadUnitPolicy,
    ) -> Result<Self, DetectError> {
        if train.rows() == 0 {
            return Err(DetectError::EmptyInput);
        }
        if labels.len() != train.rows() {
            return Err(DetectError::DimensionMismatch {
                expected: train.rows(),
                found: labels.len(),
            });
        }
        // One batched hierarchy traversal labels the whole training set.
        let mut tallies: HashMap<(usize, usize), HashMap<AttackCategory, usize>> = HashMap::new();
        for (projection, &label) in model.project_batch(train)?.iter().zip(labels) {
            let key = projection.leaf_key();
            *tallies.entry(key).or_default().entry(label).or_insert(0) += 1;
        }
        let mut unit_labels = HashMap::with_capacity(tallies.len());
        let mut confidence = HashMap::with_capacity(tallies.len());
        for (key, tally) in tallies {
            let total: usize = tally.values().sum();
            // Ties break toward the smaller category so the fitted detector
            // is independent of HashMap iteration order.
            let (label, count) = tally
                .into_iter()
                .max_by_key(|&(label, c)| (c, std::cmp::Reverse(label)))
                .expect("tally is non-empty"); // LINT-ALLOW(no-panic): tally entries are created only by incrementing a count, so each holds at least one label
            unit_labels.insert(key, label);
            confidence.insert(key, count as f64 / total as f64);
        }
        Ok(LabeledGhsomDetector {
            model,
            labels: unit_labels,
            confidence,
            policy,
        })
    }

    /// The dead-unit policy in force.
    pub fn policy(&self) -> DeadUnitPolicy {
        self.policy
    }

    /// Label of the nearest labelled unit (by weight distance to `x`) in
    /// the given map, if the map has any labelled units.
    fn nearest_labelled_in_node(&self, node: usize, x: &[f64]) -> Option<AttackCategory> {
        let weights = self.model.map_weights(node);
        let dim = self.model.dim();
        let mut best: Option<(f64, AttackCategory)> = None;
        for unit in 0..self.model.map_units(node) {
            let Some(&label) = self.labels.get(&(node, unit)) else {
                continue;
            };
            let d = mathkit::distance::sq_euclidean(x, &weights[unit * dim..(unit + 1) * dim]);
            match best {
                Some((bd, _)) if d >= bd => {}
                _ => best = Some((d, label)),
            }
        }
        best.map(|(_, l)| l)
    }

    /// Classification from an already-computed projection — the shared
    /// core of the single-sample and batched paths.
    pub(crate) fn classify_key(&self, key: (usize, usize), x: &[f64]) -> Option<AttackCategory> {
        if let Some(&label) = self.labels.get(&key) {
            return Some(label);
        }
        match self.policy {
            DeadUnitPolicy::Anomalous => None,
            DeadUnitPolicy::NearestLabelled => self.nearest_labelled_in_node(key.0, x),
        }
    }

    /// Verdict-consistent anomaly score from a known leaf QE and
    /// classification (see [`Detector::score`] on this type).
    pub(crate) fn score_from(qe: f64, classification: Option<AttackCategory>) -> f64 {
        let squashed = qe / (1.0 + qe); // [0, 1)
        match classification {
            Some(AttackCategory::Normal) => squashed,
            _ => 1.0 + 1e-9 + squashed,
        }
    }

    /// Classifies every row of `data` through one batched hierarchy
    /// traversal ([`GhsomModel::project_batch`]).
    ///
    /// # Errors
    ///
    /// Projection errors propagate.
    pub fn classify_batch(
        &self,
        data: &Matrix,
    ) -> Result<Vec<Option<AttackCategory>>, DetectError> {
        let projections = self.model.project_batch(data)?;
        Ok(projections
            .iter()
            .zip(data.iter_rows())
            .map(|(p, x)| self.classify_key(p.leaf_key(), x))
            .collect())
    }

    /// The underlying trained model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Moves the fitted label/confidence tables onto another
    /// representation of the *same* hierarchy (typically
    /// `model.compile()`d for serving). Leaf keys transfer unchanged
    /// because projections agree bit-for-bit.
    pub fn with_scorer<N: Scorer>(&self, model: N) -> LabeledGhsomDetector<N> {
        LabeledGhsomDetector::from_state(model, self.state())
    }

    /// Extracts the fitted state (label/confidence tables + policy) so it
    /// can be persisted independently of the hierarchy.
    pub fn state(&self) -> LabeledState {
        LabeledState {
            labels: self.labels.clone(),
            confidence: self.confidence.clone(),
            policy: self.policy,
        }
    }

    /// Rebinds a previously extracted state to a hierarchy
    /// representation. The caller is responsible for pairing the state
    /// with (a representation of) the hierarchy it was fitted on — leaf
    /// keys are only meaningful against that hierarchy.
    pub fn from_state(model: M, state: LabeledState) -> Self {
        LabeledGhsomDetector {
            model,
            labels: state.labels,
            confidence: state.confidence,
            policy: state.policy,
        }
    }

    /// Number of labelled leaf units.
    pub fn labelled_unit_count(&self) -> usize {
        self.labels.len()
    }

    /// Majority-vote purity of the leaf a sample lands on (`None` for dead
    /// units).
    ///
    /// # Errors
    ///
    /// Projection errors propagate.
    pub fn leaf_confidence(&self, x: &[f64]) -> Result<Option<f64>, DetectError> {
        let key = self.model.project(x)?.leaf_key();
        Ok(self.confidence.get(&key).copied())
    }

    /// Mean purity across labelled leaves — a clustering-quality summary.
    pub fn mean_purity(&self) -> f64 {
        if self.confidence.is_empty() {
            return 0.0;
        }
        self.confidence.values().sum::<f64>() / self.confidence.len() as f64
    }
}

impl<M: Scorer> Detector for LabeledGhsomDetector<M> {
    /// Verdict-consistent anomaly score: records on attack-labelled (or
    /// unresolvable) leaves score in `(1, 2]`, records on normal-labelled
    /// leaves score in `[0, 1)` ordered by leaf quantization error. The
    /// binary verdict corresponds to `score > 1`.
    ///
    /// The *raw* leaf QE is deliberately not used as the anomaly score: on
    /// a model trained on the full (attack-dominated) mix, tight DoS
    /// clusters quantize better than diverse normal traffic, inverting the
    /// ranking. Use [`crate::threshold::QeThresholdDetector`] on a
    /// normal-only-trained model for pure QE scoring.
    fn score(&self, x: &[f64]) -> Result<f64, DetectError> {
        let projection = self.model.project(x)?;
        let classification = self.classify_key(projection.leaf_key(), x);
        Ok(Self::score_from(projection.leaf_qe(), classification))
    }

    fn is_anomalous(&self, x: &[f64]) -> Result<bool, DetectError> {
        Ok(!matches!(self.classify(x)?, Some(AttackCategory::Normal)))
    }

    fn name(&self) -> &'static str {
        "ghsom-labeled"
    }

    /// Score and verdict from **one** hierarchy traversal (the separate
    /// methods each project the sample again).
    fn score_and_flag(&self, x: &[f64]) -> Result<(f64, bool), DetectError> {
        let projection = self.model.project(x)?;
        let classification = self.classify_key(projection.leaf_key(), x);
        Ok((
            Self::score_from(projection.leaf_qe(), classification),
            !matches!(classification, Some(AttackCategory::Normal)),
        ))
    }

    /// Batched scoring: one hierarchy traversal for the whole matrix.
    fn score_all(&self, data: &Matrix) -> Result<Vec<f64>, DetectError> {
        let projections = self.model.project_batch(data)?;
        Ok(projections
            .iter()
            .zip(data.iter_rows())
            .map(|(p, x)| {
                let classification = self.classify_key(p.leaf_key(), x);
                Self::score_from(p.leaf_qe(), classification)
            })
            .collect())
    }

    /// Batched verdicts via [`LabeledGhsomDetector::classify_batch`].
    fn is_anomalous_all(&self, data: &Matrix) -> Result<Vec<bool>, DetectError> {
        Ok(self
            .classify_batch(data)?
            .into_iter()
            .map(|c| !matches!(c, Some(AttackCategory::Normal)))
            .collect())
    }

    /// Scores and verdicts from one hierarchy traversal.
    fn score_and_flag_all(&self, data: &Matrix) -> Result<(Vec<f64>, Vec<bool>), DetectError> {
        self.score_and_flag_all_view(data.view())
    }

    /// Zero-copy override: one traversal directly over the borrowed
    /// buffer ([`Scorer::project_batch_view`]).
    fn score_and_flag_all_view(
        &self,
        data: MatrixView<'_>,
    ) -> Result<(Vec<f64>, Vec<bool>), DetectError> {
        let projections = self.model.project_batch_view(data)?;
        let mut scores = Vec::with_capacity(projections.len());
        let mut flags = Vec::with_capacity(projections.len());
        for (p, x) in projections.iter().zip(data.iter_rows()) {
            let classification = self.classify_key(p.leaf_key(), x);
            scores.push(Self::score_from(p.leaf_qe(), classification));
            flags.push(!matches!(classification, Some(AttackCategory::Normal)));
        }
        Ok((scores, flags))
    }
}

impl<M: Scorer> Classifier for LabeledGhsomDetector<M> {
    fn classify(&self, x: &[f64]) -> Result<Option<AttackCategory>, DetectError> {
        let key = self.model.project(x)?.leaf_key();
        Ok(self.classify_key(key, x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghsom_core::GhsomConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Normal cluster near the origin; DoS cluster far away.
    fn labelled_data(n: usize, seed: u64) -> (Matrix, Vec<AttackCategory>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            if i % 3 == 0 {
                rows.push(vec![
                    5.0 + rng.gen::<f64>() * 0.3,
                    5.0 + rng.gen::<f64>() * 0.3,
                ]);
                labels.push(AttackCategory::Dos);
            } else {
                rows.push(vec![rng.gen::<f64>() * 0.3, rng.gen::<f64>() * 0.3]);
                labels.push(AttackCategory::Normal);
            }
        }
        (Matrix::from_rows(rows).unwrap(), labels)
    }

    fn detector() -> (LabeledGhsomDetector, Matrix, Vec<AttackCategory>) {
        let (data, labels) = labelled_data(300, 1);
        let model = GhsomModel::train(
            &GhsomConfig::default()
                .with_tau1(0.4)
                .with_tau2(0.2)
                .with_seed(5),
            &data,
        )
        .unwrap();
        let det = LabeledGhsomDetector::fit(model, &data, &labels).unwrap();
        (det, data, labels)
    }

    #[test]
    fn classifies_training_data_correctly() {
        let (det, data, labels) = detector();
        let mut correct = 0;
        for (x, &truth) in data.iter_rows().zip(&labels) {
            if det.classify(x).unwrap() == Some(truth) {
                correct += 1;
            }
        }
        let acc = correct as f64 / labels.len() as f64;
        assert!(acc > 0.95, "training accuracy {acc}");
    }

    #[test]
    fn well_separated_clusters_give_pure_leaves() {
        let (det, _, _) = detector();
        assert!(det.mean_purity() > 0.95, "purity {}", det.mean_purity());
        assert!(det.labelled_unit_count() >= 2);
    }

    #[test]
    fn dead_units_classify_as_unknown() {
        let (det, _, _) = detector();
        // A point far from both clusters lands on a (likely dead) unit; if
        // the leaf happens to be labelled, it must still flag as attack or
        // the point must land on an attack side. Accept either None or an
        // anomalous verdict.
        let verdict = det.classify(&[-30.0, 40.0]).unwrap();
        let anomalous = det.is_anomalous(&[-30.0, 40.0]).unwrap();
        assert!(verdict.is_none() || anomalous || verdict == Some(AttackCategory::Normal));
        if verdict.is_none() {
            assert!(anomalous, "unknown leaves must be treated as anomalous");
            assert_eq!(det.leaf_confidence(&[-30.0, 40.0]).unwrap(), None);
        }
    }

    #[test]
    fn normal_cluster_is_not_flagged() {
        let (det, _, _) = detector();
        assert!(!det.is_anomalous(&[0.15, 0.15]).unwrap());
        assert_eq!(
            det.classify(&[0.15, 0.15]).unwrap(),
            Some(AttackCategory::Normal)
        );
    }

    #[test]
    fn attack_cluster_is_flagged() {
        let (det, _, _) = detector();
        assert!(det.is_anomalous(&[5.1, 5.1]).unwrap());
        assert_eq!(
            det.classify(&[5.1, 5.1]).unwrap(),
            Some(AttackCategory::Dos)
        );
    }

    #[test]
    fn fit_validates_inputs() {
        let (data, labels) = labelled_data(50, 2);
        let model = GhsomModel::train(&GhsomConfig::default(), &data).unwrap();
        let short = &labels[..10];
        assert!(matches!(
            LabeledGhsomDetector::fit(model, &data, short).unwrap_err(),
            DetectError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn leaf_confidence_for_live_units() {
        let (det, data, _) = detector();
        let c = det.leaf_confidence(data.row(0)).unwrap();
        assert!(c.is_some());
        assert!(c.unwrap() > 0.0 && c.unwrap() <= 1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let (det, data, _) = detector();
        let json = serde_json::to_string(&det).unwrap();
        let back: LabeledGhsomDetector = serde_json::from_str(&json).unwrap();
        assert_eq!(back.policy(), det.policy());
        for x in data.iter_rows().take(10) {
            assert_eq!(det.classify(x).unwrap(), back.classify(x).unwrap());
        }
    }

    #[test]
    fn dead_unit_policy_changes_fallback_behaviour() {
        let (data, labels) = labelled_data(300, 9);
        let model = GhsomModel::train(
            &GhsomConfig::default()
                .with_tau1(0.1)
                .with_tau2(0.5)
                .with_seed(4),
            &data,
        )
        .unwrap();
        let strict = LabeledGhsomDetector::fit_with_policy(
            model.clone(),
            &data,
            &labels,
            DeadUnitPolicy::Anomalous,
        )
        .unwrap();
        let fallback = LabeledGhsomDetector::fit_with_policy(
            model,
            &data,
            &labels,
            DeadUnitPolicy::NearestLabelled,
        )
        .unwrap();
        assert_eq!(strict.policy(), DeadUnitPolicy::Anomalous);
        // Scan for a point whose leaf is dead under the strict policy.
        let mut found_dead = false;
        for i in 0..40 {
            for j in 0..40 {
                let x = [i as f64 * 0.2 - 1.0, j as f64 * 0.2 - 1.0];
                if strict.classify(&x).unwrap().is_none() {
                    found_dead = true;
                    // The fallback policy always produces a label when the
                    // leaf map has any labelled unit — and the root map
                    // does, since all training data lands there.
                    assert!(
                        fallback.classify(&x).unwrap().is_some(),
                        "fallback produced no label at {x:?}"
                    );
                }
            }
        }
        assert!(found_dead, "expected at least one dead leaf in the scan");
        // On training data the two policies agree (no dead leaves there).
        for x in data.iter_rows().take(50) {
            assert_eq!(strict.classify(x).unwrap(), fallback.classify(x).unwrap());
        }
    }
}
