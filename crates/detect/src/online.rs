//! Thread-safe streaming detection with an adaptive threshold.
//!
//! Wraps any fitted [`Detector`] for deployment on a live record stream:
//! scores are tracked with a running mean/deviation, and after a warm-up
//! period the effective threshold adapts to `mean + k·σ` of the recent
//! score distribution (floored at the detector's own fitted threshold
//! semantics via the initial threshold). Interior state is behind a
//! `parking_lot::Mutex`, so one detector instance can serve multiple
//! ingest threads.

use mathkit::Welford;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::{DetectError, Detector};

/// Verdict for one streamed record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamVerdict {
    /// The raw anomaly score.
    pub score: f64,
    /// Whether the record was flagged.
    pub anomalous: bool,
    /// The threshold in force when the record was scored.
    pub threshold: f64,
}

impl StreamVerdict {
    /// Width of the fixed wire encoding produced by
    /// [`StreamVerdict::to_wire`].
    pub const WIRE_LEN: usize = 17;

    /// Encodes the verdict into its fixed little-endian wire form:
    /// `score` and `threshold` as raw IEEE-754 bytes (bit-faithful —
    /// the in-force threshold may legitimately be any float the
    /// adaptive baseline produced) with the `anomalous` `0`/`1` byte
    /// between them. The response encoding network daemons ship per
    /// streamed record; normative in `docs/PROTOCOL.md`.
    pub fn to_wire(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        let (score, tail) = out.split_at_mut(8);
        score.copy_from_slice(&self.score.to_le_bytes());
        let (flag, threshold) = tail.split_at_mut(1);
        flag.copy_from_slice(&[u8::from(self.anomalous)]);
        threshold.copy_from_slice(&self.threshold.to_le_bytes());
        out
    }

    /// Decodes a verdict from its [`StreamVerdict::to_wire`] form.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidParameter`] when the `anomalous` byte is
    /// not `0`/`1` — hostile bytes are a typed error, never a partial
    /// verdict.
    pub fn from_wire(bytes: &[u8; Self::WIRE_LEN]) -> Result<Self, DetectError> {
        let (score, tail) = bytes.split_at(8);
        let (flag, threshold) = tail.split_at(1);
        let mut raw = [0u8; 8];
        raw.copy_from_slice(score);
        let score = f64::from_le_bytes(raw);
        raw.copy_from_slice(threshold);
        let threshold = f64::from_le_bytes(raw);
        let anomalous = match flag.first() {
            Some(0) => false,
            Some(1) => true,
            _ => {
                return Err(DetectError::InvalidParameter {
                    name: "anomalous",
                    reason: "wire verdict flag byte must be 0 or 1",
                })
            }
        };
        Ok(StreamVerdict {
            score,
            anomalous,
            threshold,
        })
    }
}

/// A consistent snapshot of a stream session.
///
/// Produced by [`StreamingDetector::stats`] under **one** lock
/// acquisition, so the counters and the score-baseline moments always
/// belong to the same instant: a concurrent [`StreamingDetector::reset`]
/// or `observe` can never produce a snapshot whose `tracked` comes from
/// after the reset while `score_mean`/`score_std` come from before (a
/// torn pair).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamStats {
    /// Records observed.
    pub seen: u64,
    /// Records flagged anomalous.
    pub flagged: u64,
    /// Unflagged records feeding the adaptive baseline.
    pub tracked: u64,
    /// Mean of the tracked scores (`0.0` when `tracked == 0`).
    pub score_mean: f64,
    /// Population σ of the tracked scores (`0.0` when `tracked == 0`).
    pub score_std: f64,
}

/// The complete exported adaptive state of a stream session: the
/// counters plus the raw Welford accumulator behind the `mean + k·σ`
/// threshold.
///
/// Unlike the read-only [`StreamStats`] report (which exposes the
/// *derived* σ), this carries the **accumulator state itself**
/// (`tracked`, `mean`, `m2`), so a detector rebuilt from it continues
/// bit-identically — same adaptive threshold, same warmup progress
/// (warmup readiness is `tracked >= warmup`), same future updates. This
/// is what lets a model hot-swap or a daemon restart keep a warm
/// baseline instead of re-entering warmup.
///
/// Produced by [`StreamingDetector::export_state`]; restored with
/// [`StreamingDetector::import_state`], which **validates** the state
/// (it may arrive from a snapshot file, i.e. across a trust boundary)
/// instead of trusting it.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StreamState {
    /// Records observed.
    pub seen: u64,
    /// Records flagged anomalous.
    pub flagged: u64,
    /// Unflagged records feeding the adaptive baseline (the Welford
    /// count; warmup progress).
    pub tracked: u64,
    /// Running mean of the tracked scores.
    pub mean: f64,
    /// Raw second central moment `Σ(x−μ)²` of the tracked scores.
    pub m2: f64,
}

impl StreamState {
    /// Validates the state and rebuilds the score accumulator.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidParameter`] when the counters are
    /// inconsistent (`tracked + flagged` must equal `seen` — every
    /// observed record either fed the baseline or was flagged) or the
    /// moments are non-finite / negative (via
    /// [`mathkit::Welford::from_parts`]).
    fn to_accumulator(self) -> Result<Welford, DetectError> {
        let accounted =
            self.tracked
                .checked_add(self.flagged)
                .ok_or(DetectError::InvalidParameter {
                    name: "tracked",
                    reason: "tracked + flagged overflows",
                })?;
        if accounted != self.seen {
            return Err(DetectError::InvalidParameter {
                name: "seen",
                reason: "tracked + flagged must equal seen",
            });
        }
        Ok(Welford::from_parts(self.tracked, self.mean, self.m2)?)
    }

    /// Reduces two exported session states into one: counters add with
    /// overflow checks, and the score baselines combine through
    /// [`mathkit::Welford::from_parts`] + [`mathkit::Welford::merge`]
    /// (Chan's parallel update). Both sides are **validated** first, like
    /// [`StreamingDetector::import_state`] — hostile counters or
    /// non-finite moments are a typed error, never a poisoned baseline.
    ///
    /// This is the fleet/collector reduction for baselines accumulated
    /// **independently** (per process, per site). When either side is
    /// empty the result is the other side bit-for-bit; in general the
    /// merged moments equal the single-stream fold up to floating-point
    /// rounding (Welford merging is algebraically exact but not
    /// order-insensitive at the bit level). A sharded engine that must be
    /// *bit*-compatible with single-engine semantics therefore folds its
    /// verdicts through **one** accumulator in arrival order instead of
    /// merging per-shard baselines — see `ghsom-serve`'s `ShardedEngine`.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidParameter`] when either state is
    /// inconsistent, non-finite, or the summed counters overflow `u64`.
    pub fn merge(self, other: StreamState) -> Result<StreamState, DetectError> {
        let mut acc = self.to_accumulator()?;
        let rhs = other.to_accumulator()?;
        acc.merge(&rhs);
        let seen = self
            .seen
            .checked_add(other.seen)
            .ok_or(DetectError::InvalidParameter {
                name: "seen",
                reason: "merged seen overflows",
            })?;
        let flagged =
            self.flagged
                .checked_add(other.flagged)
                .ok_or(DetectError::InvalidParameter {
                    name: "flagged",
                    reason: "merged flagged overflows",
                })?;
        Ok(StreamState {
            seen,
            flagged,
            tracked: acc.count(),
            mean: acc.mean(),
            m2: acc.m2(),
        })
    }

    /// [`StreamState::merge`] over any number of shard states, reduced
    /// left to right from the default (empty) state — so a single
    /// non-empty shard among empties comes back bit-for-bit, and shard
    /// order is the deterministic reduction order.
    ///
    /// # Errors
    ///
    /// See [`StreamState::merge`]; the first invalid shard aborts the
    /// reduction.
    pub fn merge_all(shards: &[StreamState]) -> Result<StreamState, DetectError> {
        shards
            .iter()
            .try_fold(StreamState::default(), |acc, &s| acc.merge(s))
    }

    /// Width of the fixed wire encoding produced by
    /// [`StreamState::to_wire`].
    pub const WIRE_LEN: usize = 40;

    /// Encodes the state into its fixed little-endian wire form:
    /// `seen`, `flagged`, `tracked` as u64 then `mean`, `m2` as raw
    /// IEEE-754 bytes (bit-faithful — a state that round-trips the wire
    /// restores the exact accumulator). This is the baseline payload a
    /// fleet node ships in a GHSF `StateReply`; normative in
    /// `docs/FLEET.md`.
    pub fn to_wire(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        let (seen, tail) = out.split_at_mut(8);
        seen.copy_from_slice(&self.seen.to_le_bytes());
        let (flagged, tail) = tail.split_at_mut(8);
        flagged.copy_from_slice(&self.flagged.to_le_bytes());
        let (tracked, tail) = tail.split_at_mut(8);
        tracked.copy_from_slice(&self.tracked.to_le_bytes());
        let (mean, m2) = tail.split_at_mut(8);
        mean.copy_from_slice(&self.mean.to_le_bytes());
        m2.copy_from_slice(&self.m2.to_le_bytes());
        out
    }

    /// Decodes a state from its [`StreamState::to_wire`] form and
    /// **validates** it like [`StreamingDetector::import_state`] does —
    /// wire bytes arrive across a trust boundary, so inconsistent
    /// counters or non-finite moments are a typed error, never a
    /// poisoned baseline.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidParameter`] when `tracked + flagged` does
    /// not equal `seen` or the moments fail
    /// [`mathkit::Welford::from_parts`] validation.
    pub fn from_wire(bytes: &[u8; Self::WIRE_LEN]) -> Result<Self, DetectError> {
        let mut raw = [0u8; 8];
        let (seen, tail) = bytes.split_at(8);
        raw.copy_from_slice(seen);
        let seen = u64::from_le_bytes(raw);
        let (flagged, tail) = tail.split_at(8);
        raw.copy_from_slice(flagged);
        let flagged = u64::from_le_bytes(raw);
        let (tracked, tail) = tail.split_at(8);
        raw.copy_from_slice(tracked);
        let tracked = u64::from_le_bytes(raw);
        let (mean, m2) = tail.split_at(8);
        raw.copy_from_slice(mean);
        let mean = f64::from_le_bytes(raw);
        raw.copy_from_slice(m2);
        let m2 = f64::from_le_bytes(raw);
        let state = StreamState {
            seen,
            flagged,
            tracked,
            mean,
            m2,
        };
        state.to_accumulator()?;
        Ok(state)
    }
}

#[derive(Debug, Default)]
struct SessionState {
    scores: Welford,
    seen: u64,
    flagged: u64,
}

/// A streaming wrapper around any detector.
///
/// # Example
///
/// ```
/// use detect::online::StreamingDetector;
/// use detect::prelude::*;
/// use mathkit::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let normal = Matrix::from_rows(
///     (0..100).map(|i| vec![(i % 10) as f64 * 0.01, 0.0]).collect(),
/// )?;
/// let pca = PcaDetector::fit(&normal, 1, 0.99, 0)?;
/// let stream = StreamingDetector::new(pca, 3.0, 50);
/// let verdict = stream.observe(&[0.05, 0.0])?;
/// assert!(!verdict.anomalous);
/// let verdict = stream.observe(&[0.0, 9.0])?;
/// assert!(verdict.anomalous);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamingDetector<D> {
    inner: D,
    /// Multiplier on the running deviation once adaptive.
    k_sigma: f64,
    /// Number of observations before the threshold adapts.
    warmup: u64,
    state: Mutex<SessionState>,
}

impl<D: Detector> StreamingDetector<D> {
    /// Wraps `detector`; the adaptive threshold becomes
    /// `mean + k_sigma·σ` of normal-looking scores after `warmup`
    /// observations (before that, the wrapped detector's own verdict is
    /// used).
    pub fn new(detector: D, k_sigma: f64, warmup: u64) -> Self {
        StreamingDetector {
            inner: detector,
            k_sigma,
            warmup,
            state: Mutex::new(SessionState::default()),
        }
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The deviation multiplier of the adaptive threshold.
    pub fn k_sigma(&self) -> f64 {
        self.k_sigma
    }

    /// Observations required before the threshold adapts.
    pub fn warmup(&self) -> u64 {
        self.warmup
    }

    /// Scores one record and updates the adaptive state.
    ///
    /// Flagged records do **not** update the score statistics — an attack
    /// burst must not be allowed to drag the threshold up behind it
    /// (self-poisoning).
    ///
    /// Scoring and the inner verdict come from the wrapped detector's
    /// [`Detector::score_and_flag`] — **one** hierarchy traversal per
    /// record for the GHSOM detectors, outside the lock.
    ///
    /// # Errors
    ///
    /// Scoring errors from the wrapped detector propagate; state is not
    /// updated in that case.
    pub fn observe(&self, x: &[f64]) -> Result<StreamVerdict, DetectError> {
        let (score, inner_flag) = self.inner.score_and_flag(x)?;
        let mut state = self.state.lock();
        let adaptive_ready = state.scores.count() >= self.warmup;
        let threshold = if adaptive_ready {
            state.scores.mean() + self.k_sigma * state.scores.population_std()
        } else {
            f64::INFINITY // sentinel: delegate to the inner detector
        };
        let anomalous = if adaptive_ready {
            score > threshold || inner_flag
        } else {
            inner_flag
        };
        state.seen += 1;
        if anomalous {
            state.flagged += 1;
        } else {
            state.scores.push(score);
        }
        Ok(StreamVerdict {
            score,
            anomalous,
            threshold: if adaptive_ready { threshold } else { f64::NAN },
        })
    }

    /// Observes a whole burst of records in arrival order.
    ///
    /// Scoring and inner verdicts run through the wrapped detector's
    /// batched [`Detector::score_and_flag_all`] (parallel under the
    /// `rayon` feature, and **one** hierarchy traversal for the GHSOM
    /// detectors); the adaptive-threshold state then updates sequentially
    /// per record, so the verdicts are identical to calling
    /// [`StreamingDetector::observe`] row by row.
    ///
    /// # Errors
    ///
    /// Scoring errors from the wrapped detector propagate; state is not
    /// updated in that case (the batched call completes before any state
    /// changes).
    pub fn observe_batch(&self, data: &mathkit::Matrix) -> Result<Vec<StreamVerdict>, DetectError> {
        let (scores, inner_flags) = self.inner.score_and_flag_all(data)?;
        self.fold_batch(scores, inner_flags)
    }

    /// [`StreamingDetector::observe_batch`] over a **borrowed**
    /// [`mathkit::MatrixView`] — the fused serving path: scoring runs
    /// through the wrapped detector's
    /// [`Detector::score_and_flag_all_view`] (zero-copy on the compiled
    /// arena), then the adaptive state updates exactly as the owned path
    /// does. Verdicts are identical to [`StreamingDetector::observe`] row
    /// by row.
    ///
    /// # Errors
    ///
    /// Scoring errors from the wrapped detector propagate; state is not
    /// updated in that case.
    pub fn observe_batch_view(
        &self,
        data: mathkit::MatrixView<'_>,
    ) -> Result<Vec<StreamVerdict>, DetectError> {
        let (scores, inner_flags) = self.inner.score_and_flag_all_view(data)?;
        self.fold_batch(scores, inner_flags)
    }

    /// The shared sequential tail of the batched observe paths: folds
    /// pre-computed scores and inner verdicts through the adaptive
    /// threshold in arrival order, under one lock acquisition.
    fn fold_batch(
        &self,
        scores: Vec<f64>,
        inner_flags: Vec<bool>,
    ) -> Result<Vec<StreamVerdict>, DetectError> {
        Ok(self.observe_prescored(scores.into_iter().zip(inner_flags)))
    }

    /// Folds records that were already scored **out of band** through the
    /// adaptive threshold, in iteration order, under one lock
    /// acquisition. Each item is the `(score, inner verdict)` pair the
    /// wrapped detector's [`crate::Detector::score_and_flag`] would have
    /// produced.
    ///
    /// This is the exact-merge layer for sharded/distributed ingest:
    /// scoring is stateless and parallelizes freely across worker
    /// shards, while the threshold feedback loop (each record's verdict
    /// depends on which earlier records fed the baseline) is inherently
    /// sequential. Workers score their chunks concurrently, then the
    /// coordinator folds the concatenated results here in arrival order —
    /// verdicts and the exported [`StreamState`] come out **bit-identical**
    /// to single-threaded [`StreamingDetector::observe`] calls.
    ///
    /// The caller owns the contract that the pairs really came from this
    /// detector's scoring path; the fold itself cannot fail.
    pub fn observe_prescored(
        &self,
        scored: impl IntoIterator<Item = (f64, bool)>,
    ) -> Vec<StreamVerdict> {
        let scored = scored.into_iter();
        let mut state = self.state.lock();
        let mut verdicts = Vec::with_capacity(scored.size_hint().0);
        for (score, inner_flag) in scored {
            let adaptive_ready = state.scores.count() >= self.warmup;
            let threshold = if adaptive_ready {
                state.scores.mean() + self.k_sigma * state.scores.population_std()
            } else {
                f64::INFINITY
            };
            let anomalous = if adaptive_ready {
                score > threshold || inner_flag
            } else {
                inner_flag
            };
            state.seen += 1;
            if anomalous {
                state.flagged += 1;
            } else {
                state.scores.push(score);
            }
            verdicts.push(StreamVerdict {
                score,
                anomalous,
                threshold: if adaptive_ready { threshold } else { f64::NAN },
            });
        }
        verdicts
    }

    /// A consistent snapshot of the session counters *and* the adaptive
    /// score baseline, taken under a single lock acquisition (see
    /// [`StreamStats`]).
    pub fn stats(&self) -> StreamStats {
        let state = self.state.lock();
        let tracked = state.scores.count();
        StreamStats {
            seen: state.seen,
            flagged: state.flagged,
            tracked,
            score_mean: state.scores.mean(),
            score_std: state.scores.population_std(),
        }
    }

    /// Exports the complete adaptive state under one lock acquisition —
    /// counters plus the raw score accumulator (see [`StreamState`]).
    /// The exported state restores **bit-identically** through
    /// [`StreamingDetector::import_state`].
    pub fn export_state(&self) -> StreamState {
        let state = self.state.lock();
        StreamState {
            seen: state.seen,
            flagged: state.flagged,
            tracked: state.scores.count(),
            mean: state.scores.mean(),
            m2: state.scores.m2(),
        }
    }

    /// Replaces the adaptive state with an exported one (the wrapped
    /// detector is untouched). After the import, thresholds, warmup
    /// progress and future updates continue exactly as they would have
    /// on the detector the state was exported from — this is the
    /// baseline transplant a model hot-swap performs so `mean + k·σ`
    /// thresholds survive an engine refresh.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidParameter`] / [`DetectError::Model`] when
    /// the state is inconsistent or non-finite (it may come from a
    /// snapshot file — a trust boundary); the current state is left
    /// untouched in that case.
    pub fn import_state(&self, state: StreamState) -> Result<(), DetectError> {
        let scores = state.to_accumulator()?;
        *self.state.lock() = SessionState {
            scores,
            seen: state.seen,
            flagged: state.flagged,
        };
        Ok(())
    }

    /// Resets the adaptive state and counters (the wrapped detector is
    /// untouched).
    pub fn reset(&self) {
        *self.state.lock() = SessionState::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::pca::PcaDetector;
    use mathkit::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn normal_line(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_rows(
            (0..n)
                .map(|_| {
                    let t = rng.gen::<f64>() * 5.0;
                    vec![t, t + rng.gen::<f64>() * 0.05]
                })
                .collect(),
        )
        .unwrap()
    }

    fn stream() -> StreamingDetector<PcaDetector> {
        let data = normal_line(200, 1);
        let pca = PcaDetector::fit(&data, 1, 0.99, 0).unwrap();
        StreamingDetector::new(pca, 4.0, 30)
    }

    #[test]
    fn stream_state_wire_roundtrip_is_bit_faithful() {
        let state = StreamState {
            seen: 1_000,
            flagged: 37,
            tracked: 963,
            mean: 0.123_456_789,
            m2: 42.424_242,
        };
        let back = StreamState::from_wire(&state.to_wire()).unwrap();
        assert_eq!(back, state);
        assert_eq!(back.mean.to_bits(), state.mean.to_bits());
        assert_eq!(back.m2.to_bits(), state.m2.to_bits());
        // Default (empty) state round-trips too.
        let empty = StreamState::default();
        assert_eq!(StreamState::from_wire(&empty.to_wire()).unwrap(), empty);
    }

    #[test]
    fn stream_state_from_wire_validates_like_import() {
        // Inconsistent counters: tracked + flagged != seen.
        let mut bytes = StreamState {
            seen: 10,
            flagged: 1,
            tracked: 9,
            mean: 0.0,
            m2: 0.0,
        }
        .to_wire();
        bytes[0] = 11; // seen = 11 while tracked + flagged = 10
        assert!(StreamState::from_wire(&bytes).is_err());
        // Non-finite moments are refused.
        let hostile = StreamState {
            seen: 2,
            flagged: 0,
            tracked: 2,
            mean: f64::NAN,
            m2: 0.0,
        };
        assert!(StreamState::from_wire(&hostile.to_wire()).is_err());
    }

    #[test]
    fn normal_stream_is_mostly_clean() {
        let s = stream();
        let data = normal_line(300, 2);
        let mut flagged = 0;
        for x in data.iter_rows() {
            if s.observe(x).unwrap().anomalous {
                flagged += 1;
            }
        }
        assert!(flagged < 20, "{flagged}/300 flagged on clean stream");
        assert_eq!(s.stats().seen, 300);
        assert_eq!(s.stats().flagged, flagged);
    }

    #[test]
    fn attacks_are_flagged_after_warmup() {
        let s = stream();
        let data = normal_line(100, 3);
        for x in data.iter_rows() {
            s.observe(x).unwrap();
        }
        let verdict = s.observe(&[3.0, -3.0]).unwrap();
        assert!(verdict.anomalous);
        assert!(verdict.threshold.is_finite());
        assert!(verdict.score > verdict.threshold);
    }

    #[test]
    fn flagged_records_do_not_poison_the_threshold() {
        let s = stream();
        let data = normal_line(100, 4);
        for x in data.iter_rows() {
            s.observe(x).unwrap();
        }
        let before = s.observe(data.row(0)).unwrap().threshold;
        // A burst of extreme attacks.
        for _ in 0..50 {
            assert!(s.observe(&[5.0, -5.0]).unwrap().anomalous);
        }
        let after = s.observe(data.row(1)).unwrap().threshold;
        assert!(
            (after - before).abs() < before.abs() * 0.2 + 1e-6,
            "threshold drifted {before} -> {after} under attack burst"
        );
    }

    #[test]
    fn warmup_uses_inner_detector() {
        let s = stream();
        // Probe on the training manifold's mean (y = x + 0.025): its
        // residual is far below any percentile threshold, so the verdict
        // does not depend on the RNG stream behind the training noise.
        let v = s.observe(&[1.0, 1.025]).unwrap();
        assert!(v.threshold.is_nan(), "during warmup threshold is NaN");
        assert!(!v.anomalous);
        // The inner detector still fires during warmup.
        let v = s.observe(&[2.0, -2.0]).unwrap();
        assert!(v.anomalous);
    }

    #[test]
    fn reset_clears_state() {
        let s = stream();
        for x in normal_line(50, 5).iter_rows() {
            s.observe(x).unwrap();
        }
        assert!(s.stats().seen > 0);
        s.reset();
        assert_eq!(s.stats(), StreamStats::default());
    }

    #[test]
    fn stats_report_the_score_baseline() {
        let s = stream();
        let data = normal_line(120, 9);
        for x in data.iter_rows() {
            s.observe(x).unwrap();
        }
        let stats = s.stats();
        assert_eq!(stats.seen, 120);
        assert_eq!(stats.tracked + stats.flagged, stats.seen);
        assert!(stats.tracked > 0);
        assert!(stats.score_mean.is_finite() && stats.score_mean >= 0.0);
        assert!(stats.score_std.is_finite() && stats.score_std >= 0.0);
    }

    /// Regression test: `stats()` must snapshot counters and the mean/σ
    /// pair under ONE lock acquisition. With split reads, a concurrent
    /// `reset()` could produce `tracked == 0` alongside a stale non-zero
    /// mean (a torn pair); this hammers observe/reset/stats concurrently
    /// and asserts every snapshot is internally consistent.
    #[test]
    fn stats_never_tear_under_concurrent_reset() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let s = Arc::new(stream());
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..2 {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let data = normal_line(200, 10 + t);
                while !stop.load(Ordering::Relaxed) {
                    for x in data.iter_rows() {
                        s.observe(x).unwrap();
                    }
                }
            }));
        }
        {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    s.reset();
                    std::thread::yield_now();
                }
            }));
        }
        for _ in 0..2_000 {
            let snap = s.stats();
            assert!(
                snap.tracked + snap.flagged == snap.seen,
                "torn counters: {snap:?}"
            );
            if snap.tracked == 0 {
                // Freshly reset: the moments must be reset too, not stale.
                assert_eq!(snap.score_mean, 0.0, "torn mean/σ pair: {snap:?}");
                assert_eq!(snap.score_std, 0.0, "torn mean/σ pair: {snap:?}");
            } else {
                assert!(snap.score_mean.is_finite() && snap.score_std.is_finite());
            }
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_observation_is_safe() {
        use std::sync::Arc;
        let s = Arc::new(stream());
        let data = Arc::new(normal_line(200, 6));
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            let data = Arc::clone(&data);
            handles.push(std::thread::spawn(move || {
                for (i, x) in data.iter_rows().enumerate() {
                    if i % 4 == t {
                        s.observe(x).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.stats().seen, 200);
    }

    #[test]
    fn exported_state_restores_bit_identically() {
        let s = stream();
        let data = normal_line(150, 11);
        for x in data.iter_rows() {
            s.observe(x).unwrap();
        }
        let state = s.export_state();
        assert_eq!(state.tracked + state.flagged, state.seen);

        // A fresh detector importing the state continues exactly like
        // the original: identical thresholds and stats on every future
        // record.
        let t = stream();
        t.import_state(state).unwrap();
        assert_eq!(t.stats(), s.stats());
        for x in normal_line(60, 12).iter_rows() {
            let a = s.observe(x).unwrap();
            let b = t.observe(x).unwrap();
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            assert_eq!(a.threshold.to_bits(), b.threshold.to_bits());
            assert_eq!(a.anomalous, b.anomalous);
        }
        assert_eq!(t.export_state(), s.export_state());
    }

    #[test]
    fn import_mid_warmup_continues_warmup() {
        // warmup = 30; export after 10 observations, import into a fresh
        // detector: the remaining 20 warmup records still use the inner
        // verdict, and the adaptive threshold turns on exactly where it
        // would have without the transplant.
        let s = stream();
        let data = normal_line(40, 13);
        for x in data.iter_rows().take(10) {
            s.observe(x).unwrap();
        }
        let state = s.export_state();
        assert!(state.tracked < 30, "fixture must still be in warmup");

        let t = stream();
        t.import_state(state).unwrap();
        let mut first_adaptive = None;
        for (i, x) in data.iter_rows().enumerate().skip(10) {
            let v = t.observe(x).unwrap();
            if v.threshold.is_finite() && first_adaptive.is_none() {
                first_adaptive = Some(i);
            }
        }
        // Warmup continued from 10 tracked records, it did not restart:
        // with ~0 flagged on this clean stream the threshold adapts once
        // 30 records have been *tracked in total*, i.e. well before
        // observation 10 + 30.
        let at = first_adaptive.expect("threshold never adapted");
        assert!(
            at <= 10 + (30 - state.tracked as usize) + state.flagged as usize + 2,
            "warmup restarted: first adaptive verdict at observation {at}"
        );
    }

    #[test]
    fn hostile_states_are_rejected_without_touching_state() {
        let s = stream();
        for x in normal_line(50, 14).iter_rows() {
            s.observe(x).unwrap();
        }
        let before = s.stats();
        let good = s.export_state();
        for bad in [
            StreamState {
                mean: f64::NAN,
                ..good
            },
            StreamState {
                m2: f64::INFINITY,
                ..good
            },
            StreamState { m2: -1.0, ..good },
            StreamState {
                seen: good.seen + 1,
                ..good
            },
            StreamState {
                tracked: u64::MAX,
                flagged: 2,
                seen: 1,
                ..good
            },
        ] {
            assert!(s.import_state(bad).is_err(), "accepted {bad:?}");
            assert_eq!(s.stats(), before, "rejected import mutated state");
        }
    }

    #[test]
    fn inner_accessor() {
        let s = stream();
        assert_eq!(s.inner().name(), "pca-residual");
    }

    #[test]
    fn prescored_fold_is_bit_identical_to_observe() {
        let a = stream();
        let b = stream();
        let data = normal_line(200, 21);
        let mut row_verdicts = Vec::new();
        let mut prescored = Vec::new();
        for x in data.iter_rows() {
            // `score_and_flag` is stateless — collecting the pairs first
            // is exactly what a sharded scorer does.
            prescored.push(b.inner().score_and_flag(x).unwrap());
            row_verdicts.push(a.observe(x).unwrap());
        }
        let folded = b.observe_prescored(prescored);
        assert_eq!(folded.len(), row_verdicts.len());
        for (u, v) in row_verdicts.iter().zip(&folded) {
            assert_eq!(u.score.to_bits(), v.score.to_bits());
            assert_eq!(u.threshold.to_bits(), v.threshold.to_bits());
            assert_eq!(u.anomalous, v.anomalous);
        }
        assert_eq!(a.export_state(), b.export_state());
    }

    #[test]
    fn merge_with_empty_side_is_bit_exact() {
        let s = stream();
        for x in normal_line(80, 22).iter_rows() {
            s.observe(x).unwrap();
        }
        let state = s.export_state();
        let empty = StreamState::default();
        assert_eq!(empty.merge(state).unwrap(), state);
        assert_eq!(state.merge(empty).unwrap(), state);
        assert_eq!(
            StreamState::merge_all(&[empty, state, empty]).unwrap(),
            state
        );
        assert_eq!(StreamState::merge_all(&[]).unwrap(), empty);
    }

    #[test]
    fn merge_counts_are_exact_and_moments_near_exact() {
        // Two detectors fold disjoint halves independently; the merged
        // state must carry exact counters and moments matching the
        // single-stream fold to rounding.
        let whole = stream();
        let lo = stream();
        let hi = stream();
        let data = normal_line(300, 23);
        for (i, x) in data.iter_rows().enumerate() {
            whole.observe(x).unwrap();
            if i < 150 {
                lo.observe(x).unwrap();
            } else {
                hi.observe(x).unwrap();
            }
        }
        let merged = lo.export_state().merge(hi.export_state()).unwrap();
        let single = whole.export_state();
        assert_eq!(merged.seen, single.seen);
        // Per-shard warmup/threshold schedules differ, so flagged counts
        // need not match the interleaved fold — but the merged counters
        // must still be internally consistent.
        assert_eq!(merged.tracked + merged.flagged, merged.seen);
        assert!(merged.mean.is_finite() && merged.m2 >= 0.0);
    }

    #[test]
    fn merge_rejects_hostile_shards() {
        let s = stream();
        for x in normal_line(50, 24).iter_rows() {
            s.observe(x).unwrap();
        }
        let good = s.export_state();
        for bad in [
            StreamState {
                mean: f64::NAN,
                ..good
            },
            StreamState { m2: -1.0, ..good },
            StreamState {
                seen: good.seen + 7,
                ..good
            },
        ] {
            assert!(good.merge(bad).is_err(), "accepted {bad:?}");
            assert!(bad.merge(good).is_err(), "accepted {bad:?}");
        }
        // Counter overflow is a typed error, not a wrap.
        let max = StreamState {
            seen: u64::MAX,
            flagged: u64::MAX,
            tracked: 0,
            mean: 0.0,
            m2: 0.0,
        };
        assert!(max.merge(good).is_err());
    }
}
