//! Explanation of detection verdicts: which features pushed a record away
//! from (or onto) its best-matching prototype.
//!
//! Operators do not act on bare "anomalous" flags; they act on *why* — "the
//! 2-second same-host connection count is 40× the prototype's" reads as a
//! SYN flood. This module ranks the per-feature deviations between a record
//! and the weight vector of the leaf unit it mapped to, using the feature
//! names from the fitted pipeline's schema.

use featurize::FeatureSchema;
use ghsom_core::Scorer;
use serde::{Deserialize, Serialize};

use crate::DetectError;

/// One feature's contribution to a record's distance from its prototype.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureDeviation {
    /// Column index in the feature vector.
    pub index: usize,
    /// Feature name from the pipeline schema.
    pub name: String,
    /// The record's (transformed) value.
    pub value: f64,
    /// The leaf prototype's value.
    pub prototype: f64,
    /// Squared contribution to the Euclidean distance.
    pub contribution: f64,
}

/// A ranked explanation of one record's projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// Leaf `(node, unit)` the record mapped to.
    pub leaf: (usize, usize),
    /// Leaf quantization error (Euclidean distance to the prototype).
    pub leaf_qe: f64,
    /// Deviations sorted by contribution, largest first.
    pub deviations: Vec<FeatureDeviation>,
}

impl Explanation {
    /// The `k` largest deviations.
    pub fn top(&self, k: usize) -> &[FeatureDeviation] {
        &self.deviations[..k.min(self.deviations.len())]
    }

    /// Fraction of the squared distance explained by the top `k` features.
    pub fn coverage(&self, k: usize) -> f64 {
        let total: f64 = self.deviations.iter().map(|d| d.contribution).sum();
        if total == 0.0 {
            return 1.0;
        }
        let top: f64 = self.top(k).iter().map(|d| d.contribution).sum();
        top / total
    }

    /// A compact human-readable rendering of the top `k` deviations.
    pub fn render(&self, k: usize) -> String {
        let mut out = format!(
            "leaf map {} unit {} (qe {:.4})\n",
            self.leaf.0, self.leaf.1, self.leaf_qe
        );
        for d in self.top(k) {
            out.push_str(&format!(
                "  {:<30} value {:>8.4}  prototype {:>8.4}  (Δ² {:.4})\n",
                d.name, d.value, d.prototype, d.contribution
            ));
        }
        out
    }
}

/// Explains a record's projection against a trained model — either the
/// training-time tree or the compiled serving arena (any
/// [`Scorer`]).
///
/// `schema` must be the schema of the pipeline that produced `x` (its
/// length must match the model's input dimensionality).
///
/// # Errors
///
/// [`DetectError::DimensionMismatch`] when `x` or the schema width differ
/// from the model; projection errors propagate.
pub fn explain<M: Scorer + ?Sized>(
    model: &M,
    schema: &FeatureSchema,
    x: &[f64],
) -> Result<Explanation, DetectError> {
    if schema.len() != model.dim() {
        return Err(DetectError::DimensionMismatch {
            expected: model.dim(),
            found: schema.len(),
        });
    }
    let projection = model.project(x)?;
    let (node, unit) = projection.leaf_key();
    let prototype = model.unit_prototype(node, unit);
    let mut deviations: Vec<FeatureDeviation> = x
        .iter()
        .zip(prototype.as_ref())
        .enumerate()
        .map(|(index, (&value, &proto))| {
            let d = value - proto;
            FeatureDeviation {
                index,
                name: schema.name(index).to_string(),
                value,
                prototype: proto,
                contribution: d * d,
            }
        })
        .collect();
    deviations.sort_by(|a, b| b.contribution.total_cmp(&a.contribution));
    Ok(Explanation {
        leaf: (node, unit),
        leaf_qe: projection.leaf_qe(),
        deviations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use featurize::{KddPipeline, PipelineConfig};
    use ghsom_core::{GhsomConfig, GhsomModel};
    use traffic::synth::{MixSpec, TrafficGenerator};
    use traffic::AttackType;

    fn setup() -> (GhsomModel, KddPipeline) {
        let mut gen = TrafficGenerator::new(MixSpec::normal_only(), 4).unwrap();
        let train = gen.generate(800);
        let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
        let x = pipeline.transform_dataset(&train).unwrap();
        let model =
            GhsomModel::train(&GhsomConfig::default().with_epochs(3, 2).with_seed(4), &x).unwrap();
        (model, pipeline)
    }

    #[test]
    fn explanation_covers_the_whole_distance() {
        let (model, pipeline) = setup();
        let mut gen = TrafficGenerator::new(MixSpec::normal_only(), 5).unwrap();
        let rec = gen.sample_of(AttackType::Neptune);
        let x = pipeline.transform(&rec).unwrap();
        let exp = explain(&model, pipeline.schema(), &x).unwrap();
        // Sum of contributions equals qe² (Euclidean).
        let total: f64 = exp.deviations.iter().map(|d| d.contribution).sum();
        assert!((total.sqrt() - exp.leaf_qe).abs() < 1e-9);
        assert_eq!(exp.coverage(exp.deviations.len()), 1.0);
        assert!(exp.coverage(10) > 0.3);
    }

    #[test]
    fn deviations_are_sorted_descending() {
        let (model, pipeline) = setup();
        let mut gen = TrafficGenerator::new(MixSpec::normal_only(), 6).unwrap();
        let rec = gen.sample_of(AttackType::Smurf);
        let x = pipeline.transform(&rec).unwrap();
        let exp = explain(&model, pipeline.schema(), &x).unwrap();
        for w in exp.deviations.windows(2) {
            assert!(w[0].contribution >= w[1].contribution);
        }
        assert_eq!(exp.top(5).len(), 5);
    }

    #[test]
    fn flood_explanations_name_flood_features() {
        // A SYN flood against a normal-only model must be explained by
        // count/error-rate/flag features, not by random ones.
        let (model, pipeline) = setup();
        let mut gen = TrafficGenerator::new(MixSpec::normal_only(), 7).unwrap();
        let rec = gen.sample_of(AttackType::Neptune);
        let x = pipeline.transform(&rec).unwrap();
        let exp = explain(&model, pipeline.schema(), &x).unwrap();
        let top_names: Vec<&str> = exp.top(8).iter().map(|d| d.name.as_str()).collect();
        let has_flood_feature = top_names.iter().any(|n| {
            n.contains("count")
                || n.contains("serror")
                || n.contains("flag=")
                || n.contains("same_srv")
        });
        assert!(
            has_flood_feature,
            "top deviations {top_names:?} lack flood features"
        );
    }

    #[test]
    fn render_is_compact_and_named() {
        let (model, pipeline) = setup();
        let mut gen = TrafficGenerator::new(MixSpec::normal_only(), 8).unwrap();
        let rec = gen.sample_of(AttackType::Portsweep);
        let x = pipeline.transform(&rec).unwrap();
        let exp = explain(&model, pipeline.schema(), &x).unwrap();
        let text = exp.render(3);
        assert!(text.contains("leaf map"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn schema_width_is_validated() {
        let (model, _) = setup();
        let wrong = FeatureSchema::new();
        assert!(matches!(
            explain(&model, &wrong, &vec![0.0; model.dim()]).unwrap_err(),
            DetectError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn serde_roundtrip() {
        let (model, pipeline) = setup();
        let mut gen = TrafficGenerator::new(MixSpec::normal_only(), 9).unwrap();
        let rec = gen.sample_of(AttackType::Normal);
        let x = pipeline.transform(&rec).unwrap();
        let exp = explain(&model, pipeline.schema(), &x).unwrap();
        let json = serde_json::to_string(&exp).unwrap();
        let back: Explanation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, exp);
    }
}
