//! k-means++ baseline detector.

use mathkit::{distance, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use traffic::AttackCategory;

use crate::{Classifier, DetectError, Detector};

/// Plain k-means clustering with k-means++ initialization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Matrix,
}

impl KMeans {
    /// Fits `k` clusters with at most `max_iters` Lloyd iterations.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidParameter`] when `k` is zero or exceeds the
    /// sample count; [`DetectError::EmptyInput`] on empty data.
    pub fn fit(data: &Matrix, k: usize, max_iters: usize, seed: u64) -> Result<Self, DetectError> {
        if data.rows() == 0 {
            return Err(DetectError::EmptyInput);
        }
        if k == 0 || k > data.rows() {
            return Err(DetectError::InvalidParameter {
                name: "k",
                reason: "must be in 1..=sample count",
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut centroids = Self::plus_plus_init(data, k, &mut rng);

        let n = data.rows();
        let dim = data.cols();
        let mut assignment = vec![0usize; n];
        for _ in 0..max_iters.max(1) {
            // Assignment step.
            let mut changed = false;
            for (i, x) in data.iter_rows().enumerate() {
                let nearest = nearest_centroid(&centroids, x).0;
                if assignment[i] != nearest {
                    assignment[i] = nearest;
                    changed = true;
                }
            }
            // Update step.
            let mut sums = vec![0.0; k * dim];
            let mut counts = vec![0usize; k];
            for (i, x) in data.iter_rows().enumerate() {
                let c = assignment[i];
                counts[c] += 1;
                for (s, &v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(x) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at a random sample.
                    let idx = rng.gen_range(0..n);
                    centroids.row_mut(c).copy_from_slice(data.row(idx));
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                for (w, &s) in centroids
                    .row_mut(c)
                    .iter_mut()
                    .zip(&sums[c * dim..(c + 1) * dim])
                {
                    *w = s * inv;
                }
            }
            if !changed {
                break;
            }
        }
        Ok(KMeans { centroids })
    }

    /// k-means++ seeding: centroids drawn with probability proportional to
    /// the squared distance from the nearest already-chosen centroid.
    fn plus_plus_init(data: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
        let n = data.rows();
        let mut chosen: Vec<usize> = vec![rng.gen_range(0..n)];
        let mut d2: Vec<f64> = data
            .iter_rows()
            .map(|x| distance::sq_euclidean(x, data.row(chosen[0])))
            .collect();
        while chosen.len() < k {
            let total: f64 = d2.iter().sum();
            let next = if total <= 0.0 {
                rng.gen_range(0..n)
            } else {
                let mut u = rng.gen::<f64>() * total;
                let mut pick = n - 1;
                for (i, &w) in d2.iter().enumerate() {
                    if u < w {
                        pick = i;
                        break;
                    }
                    u -= w;
                }
                pick
            };
            chosen.push(next);
            for (i, x) in data.iter_rows().enumerate() {
                let d = distance::sq_euclidean(x, data.row(next));
                if d < d2[i] {
                    d2[i] = d;
                }
            }
        }
        let rows: Vec<Vec<f64>> = chosen.iter().map(|&i| data.row(i).to_vec()).collect();
        Matrix::from_rows(rows).expect("chosen rows are valid") // LINT-ALLOW(no-panic): chosen rows are equal-width rows copied from the validated input matrix
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// The centroid matrix (`k × dim`).
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Index of and distance to the nearest centroid.
    ///
    /// # Errors
    ///
    /// [`DetectError::DimensionMismatch`] on width mismatch.
    pub fn nearest(&self, x: &[f64]) -> Result<(usize, f64), DetectError> {
        if x.len() != self.centroids.cols() {
            return Err(DetectError::DimensionMismatch {
                expected: self.centroids.cols(),
                found: x.len(),
            });
        }
        Ok(nearest_centroid(&self.centroids, x))
    }

    /// Nearest centroid of every row — chunk-parallel under the `rayon`
    /// feature, bit-identical to mapping [`KMeans::nearest`].
    ///
    /// # Errors
    ///
    /// Width errors per [`KMeans::nearest`].
    pub fn nearest_batch(&self, data: &Matrix) -> Result<Vec<(usize, f64)>, DetectError> {
        if data.rows() == 0 {
            return Ok(Vec::new());
        }
        if data.cols() != self.centroids.cols() {
            return Err(DetectError::DimensionMismatch {
                expected: self.centroids.cols(),
                found: data.cols(),
            });
        }
        let chunks = mathkit::parallel::par_map_chunks(data.rows(), 512, |range| {
            range
                .map(|i| nearest_centroid(&self.centroids, data.row(i)))
                .collect::<Vec<_>>()
        });
        Ok(chunks.into_iter().flatten().collect())
    }

    /// Cluster assignment of every row.
    ///
    /// # Errors
    ///
    /// Width errors per [`KMeans::nearest`].
    pub fn assign(&self, data: &Matrix) -> Result<Vec<usize>, DetectError> {
        Ok(self
            .nearest_batch(data)?
            .into_iter()
            .map(|(c, _)| c)
            .collect())
    }

    /// Sum of squared distances to assigned centroids.
    ///
    /// # Errors
    ///
    /// Width errors per [`KMeans::nearest`].
    pub fn inertia(&self, data: &Matrix) -> Result<f64, DetectError> {
        Ok(self
            .nearest_batch(data)?
            .into_iter()
            .map(|(_, d)| d * d)
            .sum())
    }
}

fn nearest_centroid(centroids: &Matrix, x: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter_rows().enumerate() {
        let d = distance::euclidean(x, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// k-means with majority cluster labels and a calibrated distance
/// threshold — the "k-means" baseline of the comparison tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansDetector {
    kmeans: KMeans,
    cluster_labels: Vec<Option<AttackCategory>>,
    threshold: f64,
}

impl KMeansDetector {
    /// Fits clusters on `train`, labels them from `labels`, and calibrates
    /// the distance threshold at `percentile` of the normal records'
    /// nearest-centroid distances.
    ///
    /// # Errors
    ///
    /// Parameter errors as in [`KMeans::fit`];
    /// [`DetectError::DimensionMismatch`] on label-count mismatch;
    /// [`DetectError::EmptyInput`] when no normal records exist for
    /// calibration.
    pub fn fit(
        train: &Matrix,
        labels: &[AttackCategory],
        k: usize,
        percentile: f64,
        seed: u64,
    ) -> Result<Self, DetectError> {
        if labels.len() != train.rows() {
            return Err(DetectError::DimensionMismatch {
                expected: train.rows(),
                found: labels.len(),
            });
        }
        if !(percentile > 0.0 && percentile <= 1.0) {
            return Err(DetectError::InvalidParameter {
                name: "percentile",
                reason: "must lie in (0, 1]",
            });
        }
        let kmeans = KMeans::fit(train, k, 100, seed)?;
        // Majority label per cluster.
        let assignment = kmeans.assign(train)?;
        let mut tallies: Vec<std::collections::HashMap<AttackCategory, usize>> =
            vec![std::collections::HashMap::new(); k];
        for (&c, &l) in assignment.iter().zip(labels) {
            *tallies[c].entry(l).or_insert(0) += 1;
        }
        // Ties break toward the smaller category so the fitted detector is
        // independent of HashMap iteration order (same rule as the GHSOM
        // labelled detectors).
        let cluster_labels: Vec<Option<AttackCategory>> = tallies
            .iter()
            .map(|t| {
                t.iter()
                    .max_by_key(|(&l, &c)| (c, std::cmp::Reverse(l)))
                    .map(|(&l, _)| l)
            })
            .collect();
        // Threshold on normal distances.
        let normal_distances: Vec<f64> = train
            .iter_rows()
            .zip(labels)
            .filter(|(_, &l)| l == AttackCategory::Normal)
            .map(|(x, _)| Ok(kmeans.nearest(x)?.1))
            .collect::<Result<_, DetectError>>()?;
        if normal_distances.is_empty() {
            return Err(DetectError::EmptyInput);
        }
        let threshold = mathkit::stats::quantile(&normal_distances, percentile)?;
        Ok(KMeansDetector {
            kmeans,
            cluster_labels,
            threshold,
        })
    }

    /// The underlying clustering.
    pub fn kmeans(&self) -> &KMeans {
        &self.kmeans
    }

    /// The calibrated distance threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Detector for KMeansDetector {
    /// Verdict-consistent anomaly score (same convention as the GHSOM
    /// hybrid): attack-labelled clusters score in `(2, 3]`,
    /// normal-labelled clusters score by centroid distance relative to the
    /// threshold, with `score > 1 ⇔ anomalous`.
    fn score(&self, x: &[f64]) -> Result<f64, DetectError> {
        let (cluster, d) = self.kmeans.nearest(x)?;
        let normal = matches!(self.cluster_labels[cluster], Some(AttackCategory::Normal));
        Ok(crate::verdict_score(d, self.threshold, normal))
    }

    fn is_anomalous(&self, x: &[f64]) -> Result<bool, DetectError> {
        let (cluster, d) = self.kmeans.nearest(x)?;
        if !matches!(self.cluster_labels[cluster], Some(AttackCategory::Normal)) {
            return Ok(true);
        }
        Ok(d > self.threshold)
    }

    fn name(&self) -> &'static str {
        "kmeans"
    }

    /// Batched scoring through [`KMeans::nearest_batch`].
    fn score_all(&self, data: &Matrix) -> Result<Vec<f64>, DetectError> {
        Ok(self
            .kmeans
            .nearest_batch(data)?
            .into_iter()
            .map(|(cluster, d)| {
                let normal = matches!(self.cluster_labels[cluster], Some(AttackCategory::Normal));
                crate::verdict_score(d, self.threshold, normal)
            })
            .collect())
    }

    /// Batched verdicts through [`KMeans::nearest_batch`].
    fn is_anomalous_all(&self, data: &Matrix) -> Result<Vec<bool>, DetectError> {
        Ok(self
            .kmeans
            .nearest_batch(data)?
            .into_iter()
            .map(|(cluster, d)| {
                !matches!(self.cluster_labels[cluster], Some(AttackCategory::Normal))
                    || d > self.threshold
            })
            .collect())
    }
}

impl Classifier for KMeansDetector {
    fn classify(&self, x: &[f64]) -> Result<Option<AttackCategory>, DetectError> {
        let (cluster, d) = self.kmeans.nearest(x)?;
        let label = self.cluster_labels[cluster];
        if label == Some(AttackCategory::Normal) && d > self.threshold {
            return Ok(None);
        }
        Ok(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs() -> (Matrix, Vec<AttackCategory>) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            if i % 2 == 0 {
                rows.push(vec![rng.gen::<f64>() * 0.3, rng.gen::<f64>() * 0.3]);
                labels.push(AttackCategory::Normal);
            } else {
                rows.push(vec![
                    4.0 + rng.gen::<f64>() * 0.3,
                    4.0 + rng.gen::<f64>() * 0.3,
                ]);
                labels.push(AttackCategory::Dos);
            }
        }
        (Matrix::from_rows(rows).unwrap(), labels)
    }

    #[test]
    fn kmeans_recovers_blob_centers() {
        let (data, _) = two_blobs();
        let km = KMeans::fit(&data, 2, 50, 1).unwrap();
        assert_eq!(km.k(), 2);
        let c0 = km.centroids().row(0);
        let c1 = km.centroids().row(1);
        let near_origin = |c: &[f64]| c[0] < 1.0 && c[1] < 1.0;
        let near_four = |c: &[f64]| c[0] > 3.0 && c[1] > 3.0;
        assert!(
            (near_origin(c0) && near_four(c1)) || (near_origin(c1) && near_four(c0)),
            "centroids {c0:?} {c1:?}"
        );
    }

    #[test]
    fn more_clusters_reduce_inertia() {
        let (data, _) = two_blobs();
        let km1 = KMeans::fit(&data, 1, 50, 2).unwrap();
        let km2 = KMeans::fit(&data, 2, 50, 2).unwrap();
        assert!(km2.inertia(&data).unwrap() < km1.inertia(&data).unwrap());
    }

    #[test]
    fn fit_validates_parameters() {
        let (data, _) = two_blobs();
        assert!(KMeans::fit(&data, 0, 10, 0).is_err());
        assert!(KMeans::fit(&data, 10_000, 10, 0).is_err());
    }

    #[test]
    fn assign_is_consistent_with_nearest() {
        let (data, _) = two_blobs();
        let km = KMeans::fit(&data, 2, 50, 3).unwrap();
        let assignment = km.assign(&data).unwrap();
        for (x, &a) in data.iter_rows().zip(&assignment) {
            assert_eq!(km.nearest(x).unwrap().0, a);
        }
    }

    #[test]
    fn detector_classifies_blobs() {
        let (data, labels) = two_blobs();
        let det = KMeansDetector::fit(&data, &labels, 2, 0.99, 4).unwrap();
        assert_eq!(
            det.classify(&[0.1, 0.1]).unwrap(),
            Some(AttackCategory::Normal)
        );
        assert_eq!(
            det.classify(&[4.1, 4.1]).unwrap(),
            Some(AttackCategory::Dos)
        );
        assert!(!det.is_anomalous(&[0.1, 0.1]).unwrap());
        assert!(det.is_anomalous(&[4.1, 4.1]).unwrap());
    }

    #[test]
    fn far_points_trip_the_threshold() {
        let (data, labels) = two_blobs();
        let det = KMeansDetector::fit(&data, &labels, 2, 0.99, 4).unwrap();
        assert!(det.is_anomalous(&[-10.0, -10.0]).unwrap());
        assert_eq!(det.classify(&[-10.0, -10.0]).unwrap(), None);
    }

    #[test]
    fn score_is_verdict_consistent() {
        let (data, labels) = two_blobs();
        let det = KMeansDetector::fit(&data, &labels, 2, 0.99, 4).unwrap();
        for x in data.iter_rows() {
            let score = det.score(x).unwrap();
            assert_eq!(det.is_anomalous(x).unwrap(), score > 1.0);
        }
    }

    #[test]
    fn detector_fit_validations() {
        let (data, labels) = two_blobs();
        assert!(KMeansDetector::fit(&data, &labels[..5], 2, 0.99, 0).is_err());
        assert!(KMeansDetector::fit(&data, &labels, 2, 0.0, 0).is_err());
        let all_attack = vec![AttackCategory::Dos; data.rows()];
        assert_eq!(
            KMeansDetector::fit(&data, &all_attack, 2, 0.99, 0).unwrap_err(),
            DetectError::EmptyInput
        );
    }

    #[test]
    fn fitting_is_deterministic() {
        let (data, labels) = two_blobs();
        let a = KMeansDetector::fit(&data, &labels, 3, 0.99, 11).unwrap();
        let b = KMeansDetector::fit(&data, &labels, 3, 0.99, 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_roundtrip() {
        let (data, labels) = two_blobs();
        let det = KMeansDetector::fit(&data, &labels, 2, 0.99, 4).unwrap();
        let json = serde_json::to_string(&det).unwrap();
        let back: KMeansDetector = serde_json::from_str(&json).unwrap();
        assert_eq!(back, det);
    }
}
