//! Single-layer growing grid: the hierarchy ablation (A1).
//!
//! Identical to the GHSOM hybrid detector except that vertical growth is
//! disabled (`max_depth = 1`, τ₂ irrelevant). Comparing this against the
//! full GHSOM isolates the contribution of the hierarchy from that of
//! breadth growth.

use mathkit::Matrix;
use serde::{Deserialize, Serialize};
use traffic::AttackCategory;

use crate::hybrid::HybridGhsomDetector;
use crate::{Classifier, DetectError, Detector};

/// A flat (depth-1) growing grid with labels and QE threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowingGridDetector {
    inner: HybridGhsomDetector,
}

impl GrowingGridDetector {
    /// Trains a single growing map with breadth threshold `tau1` and fits
    /// the hybrid detection layers exactly as the full GHSOM does.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HybridGhsomDetector::fit`] plus GHSOM config
    /// validation.
    pub fn fit(
        train: &Matrix,
        labels: &[AttackCategory],
        tau1: f64,
        percentile: f64,
        seed: u64,
    ) -> Result<Self, DetectError> {
        let config = ghsom_core::GhsomConfig::default()
            .with_tau1(tau1)
            // Depth is capped at 1, so tau2 never triggers; 1.0 makes the
            // intent explicit.
            .with_tau2(1.0)
            .with_max_depth(1)
            .with_seed(seed);
        let model = ghsom_core::GhsomModel::train(&config, train)?;
        let inner = HybridGhsomDetector::fit(model, train, labels, percentile)?;
        Ok(GrowingGridDetector { inner })
    }

    /// The wrapped single-map model.
    pub fn model(&self) -> &ghsom_core::GhsomModel {
        self.inner.labeled().model()
    }

    /// Units in the (single) grown map.
    pub fn unit_count(&self) -> usize {
        self.model().total_units()
    }
}

impl Detector for GrowingGridDetector {
    fn score(&self, x: &[f64]) -> Result<f64, DetectError> {
        self.inner.score(x)
    }

    fn is_anomalous(&self, x: &[f64]) -> Result<bool, DetectError> {
        self.inner.is_anomalous(x)
    }

    fn name(&self) -> &'static str {
        "growing-grid"
    }

    /// Batched scoring via the wrapped hybrid detector.
    fn score_all(&self, data: &Matrix) -> Result<Vec<f64>, DetectError> {
        self.inner.score_all(data)
    }

    /// Batched verdicts via the wrapped hybrid detector.
    fn is_anomalous_all(&self, data: &Matrix) -> Result<Vec<bool>, DetectError> {
        self.inner.is_anomalous_all(data)
    }
}

impl Classifier for GrowingGridDetector {
    fn classify(&self, x: &[f64]) -> Result<Option<AttackCategory>, DetectError> {
        self.inner.classify(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs() -> (Matrix, Vec<AttackCategory>) {
        let mut rng = StdRng::seed_from_u64(31);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..240 {
            if i % 4 == 0 {
                rows.push(vec![
                    2.5 + rng.gen::<f64>() * 0.2,
                    2.5 + rng.gen::<f64>() * 0.2,
                ]);
                labels.push(AttackCategory::Dos);
            } else {
                rows.push(vec![rng.gen::<f64>() * 0.4, rng.gen::<f64>() * 0.4]);
                labels.push(AttackCategory::Normal);
            }
        }
        (Matrix::from_rows(rows).unwrap(), labels)
    }

    #[test]
    fn stays_single_layer() {
        let (data, labels) = blobs();
        let det = GrowingGridDetector::fit(&data, &labels, 0.3, 0.99, 1).unwrap();
        assert_eq!(det.model().max_depth(), 1);
        assert_eq!(det.model().map_count(), 1);
        assert!(det.unit_count() >= 4);
    }

    #[test]
    fn still_detects_the_attack_blob() {
        let (data, labels) = blobs();
        let det = GrowingGridDetector::fit(&data, &labels, 0.3, 0.99, 1).unwrap();
        assert!(det.is_anomalous(&[2.6, 2.6]).unwrap());
        assert!(!det.is_anomalous(&[0.2, 0.2]).unwrap());
        assert_eq!(
            det.classify(&[2.6, 2.6]).unwrap(),
            Some(AttackCategory::Dos)
        );
    }

    #[test]
    fn smaller_tau1_grows_more_units() {
        let (data, labels) = blobs();
        let coarse = GrowingGridDetector::fit(&data, &labels, 0.8, 0.99, 1).unwrap();
        let fine = GrowingGridDetector::fit(&data, &labels, 0.1, 0.99, 1).unwrap();
        assert!(
            fine.unit_count() > coarse.unit_count(),
            "tau1=0.1 gave {} units vs tau1=0.8 {}",
            fine.unit_count(),
            coarse.unit_count()
        );
    }

    #[test]
    fn invalid_tau1_is_rejected() {
        let (data, labels) = blobs();
        assert!(GrowingGridDetector::fit(&data, &labels, 0.0, 0.99, 1).is_err());
        assert!(GrowingGridDetector::fit(&data, &labels, 1.0, 0.99, 1).is_err());
    }

    #[test]
    fn name_is_stable() {
        let (data, labels) = blobs();
        let det = GrowingGridDetector::fit(&data, &labels, 0.5, 0.99, 1).unwrap();
        assert_eq!(det.name(), "growing-grid");
    }

    #[test]
    fn serde_roundtrip() {
        let (data, labels) = blobs();
        let det = GrowingGridDetector::fit(&data, &labels, 0.5, 0.99, 1).unwrap();
        let json = serde_json::to_string(&det).unwrap();
        let back: GrowingGridDetector = serde_json::from_str(&json).unwrap();
        assert_eq!(back, det);
    }
}
