//! PCA-residual baseline: the classical subspace anomaly detector.
//!
//! Fitted on *normal* traffic only: the top-`k` principal components span
//! the normal subspace, and a record's squared residual off that subspace
//! is its anomaly score. This is the non-clustering classical baseline of
//! the comparison tables.

use mathkit::{Matrix, Pca};
use serde::{Deserialize, Serialize};

use crate::{DetectError, Detector};

/// PCA subspace detector with a calibrated residual threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcaDetector {
    pca: Pca,
    threshold: f64,
    k: usize,
}

impl PcaDetector {
    /// Fits `k` principal components to `normal_data` and calibrates the
    /// residual threshold at `percentile` of the normal residuals.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidParameter`] for an invalid `k` or percentile;
    /// [`DetectError::EmptyInput`] on empty data.
    pub fn fit(
        normal_data: &Matrix,
        k: usize,
        percentile: f64,
        seed: u64,
    ) -> Result<Self, DetectError> {
        if !(percentile > 0.0 && percentile <= 1.0) {
            return Err(DetectError::InvalidParameter {
                name: "percentile",
                reason: "must lie in (0, 1]",
            });
        }
        let pca = Pca::fit(normal_data, k, 300, seed).map_err(|e| match e {
            mathkit::MathError::InvalidParameter { name, reason } => {
                DetectError::InvalidParameter { name, reason }
            }
            mathkit::MathError::EmptyInput => DetectError::EmptyInput,
            other => DetectError::Model(other.to_string()),
        })?;
        let residuals: Vec<f64> = normal_data
            .iter_rows()
            .map(|x| Ok(pca.residual_sq(x)?))
            .collect::<Result<_, DetectError>>()?;
        let threshold = mathkit::stats::quantile(&residuals, percentile)?;
        Ok(PcaDetector { pca, threshold, k })
    }

    /// The fitted subspace model.
    pub fn pca(&self) -> &Pca {
        &self.pca
    }

    /// Number of principal components spanning the normal subspace.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The calibrated residual threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Detector for PcaDetector {
    fn score(&self, x: &[f64]) -> Result<f64, DetectError> {
        Ok(self.pca.residual_sq(x)?)
    }

    fn is_anomalous(&self, x: &[f64]) -> Result<bool, DetectError> {
        Ok(self.score(x)? > self.threshold)
    }

    fn name(&self) -> &'static str {
        "pca-residual"
    }

    /// Chunk-parallel scoring (residuals are independent per sample).
    fn score_all(&self, data: &Matrix) -> Result<Vec<f64>, DetectError> {
        crate::score_all_parallel(self, data)
    }

    /// Batched verdicts from the batched scores.
    fn is_anomalous_all(&self, data: &Matrix) -> Result<Vec<bool>, DetectError> {
        Ok(self
            .score_all(data)?
            .into_iter()
            .map(|s| s > self.threshold)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Normal data lives on the x≈y diagonal.
    fn diagonal_normals() -> Matrix {
        let mut rng = StdRng::seed_from_u64(8);
        let rows = (0..200)
            .map(|_| {
                let t = rng.gen::<f64>() * 10.0;
                vec![t, t + rng.gen::<f64>() * 0.1]
            })
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn off_subspace_points_are_flagged() {
        let data = diagonal_normals();
        let det = PcaDetector::fit(&data, 1, 0.99, 1).unwrap();
        // A point in the middle of the noise band (y = x + 0.05).
        assert!(!det.is_anomalous(&[5.0, 5.05]).unwrap());
        assert!(det.is_anomalous(&[5.0, -5.0]).unwrap());
        assert!(det.score(&[5.0, -5.0]).unwrap() > det.score(&[5.0, 5.05]).unwrap());
    }

    #[test]
    fn calibration_bounds_false_positives() {
        let data = diagonal_normals();
        let det = PcaDetector::fit(&data, 1, 0.95, 1).unwrap();
        let fp = data
            .iter_rows()
            .filter(|x| det.is_anomalous(x).unwrap())
            .count();
        // 95th percentile → ~5% of calibration data above threshold.
        assert!(fp <= 12, "{fp} false positives on calibration data");
    }

    #[test]
    fn fit_validations() {
        let data = diagonal_normals();
        assert!(PcaDetector::fit(&data, 0, 0.99, 0).is_err());
        assert!(PcaDetector::fit(&data, 5, 0.99, 0).is_err());
        assert!(PcaDetector::fit(&data, 1, 0.0, 0).is_err());
        assert!(PcaDetector::fit(&data, 1, 2.0, 0).is_err());
    }

    #[test]
    fn accessors() {
        let data = diagonal_normals();
        let det = PcaDetector::fit(&data, 1, 0.99, 0).unwrap();
        assert_eq!(det.k(), 1);
        assert!(det.threshold() >= 0.0);
        assert_eq!(det.pca().n_components(), 1);
        assert_eq!(det.name(), "pca-residual");
    }

    #[test]
    fn serde_roundtrip() {
        let data = diagonal_normals();
        let det = PcaDetector::fit(&data, 1, 0.99, 0).unwrap();
        let json = serde_json::to_string(&det).unwrap();
        let back: PcaDetector = serde_json::from_str(&json).unwrap();
        assert_eq!(back, det);
    }
}
