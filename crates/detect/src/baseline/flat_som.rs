//! Fixed-grid SOM baseline detector.
//!
//! The comparison tables pit the GHSOM against a flat Kohonen map of
//! comparable unit count: same labeling scheme, same threshold
//! calibration, but no growth and no hierarchy.

use mathkit::Matrix;
use serde::{Deserialize, Serialize};
use som::labeling::UnitLabels;
use som::map::{Som, TrainParams};
use traffic::AttackCategory;

use crate::{Classifier, DetectError, Detector};

/// Flat SOM with unit labels and a calibrated BMU-distance threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatSomDetector {
    som: Som,
    labels: UnitLabels<AttackCategory>,
    threshold: f64,
}

impl FlatSomDetector {
    /// Trains a `rows × cols` map on `train`, labels its units from
    /// `labels`, and calibrates the threshold at `percentile` of the
    /// normal records' BMU distances.
    ///
    /// # Errors
    ///
    /// [`DetectError::DimensionMismatch`] on label-count mismatch;
    /// [`DetectError::InvalidParameter`] for a percentile outside `(0, 1]`;
    /// [`DetectError::EmptyInput`] when there are no normal records;
    /// SOM training errors propagate.
    pub fn fit(
        train: &Matrix,
        labels: &[AttackCategory],
        rows: usize,
        cols: usize,
        percentile: f64,
        seed: u64,
    ) -> Result<Self, DetectError> {
        if labels.len() != train.rows() {
            return Err(DetectError::DimensionMismatch {
                expected: train.rows(),
                found: labels.len(),
            });
        }
        if !(percentile > 0.0 && percentile <= 1.0) {
            return Err(DetectError::InvalidParameter {
                name: "percentile",
                reason: "must lie in (0, 1]",
            });
        }
        let mut som = Som::from_data_sample(rows, cols, train, seed)?;
        som.train_online(
            train,
            &TrainParams {
                epochs: 20,
                shuffle_seed: seed ^ 0xABCD,
                ..Default::default()
            },
        )?;
        let unit_labels = UnitLabels::fit(&som, train, labels)?;
        // Calibrate on the normal slice through the batched BMU engine.
        let normal_rows: Vec<Vec<f64>> = train
            .iter_rows()
            .zip(labels)
            .filter(|(_, &l)| l == AttackCategory::Normal)
            .map(|(x, _)| x.to_vec())
            .collect();
        if normal_rows.is_empty() {
            return Err(DetectError::EmptyInput);
        }
        let normal = Matrix::from_rows(normal_rows)?;
        let normal_distances: Vec<f64> = som
            .bmu_batch(&normal)?
            .into_iter()
            .map(|m| m.distance)
            .collect();
        let threshold = mathkit::stats::quantile(&normal_distances, percentile)?;
        Ok(FlatSomDetector {
            som,
            labels: unit_labels,
            threshold,
        })
    }

    /// The trained map.
    pub fn som(&self) -> &Som {
        &self.som
    }

    /// The calibrated threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The per-unit label calibration.
    pub fn unit_labels(&self) -> &UnitLabels<AttackCategory> {
        &self.labels
    }
}

impl Detector for FlatSomDetector {
    /// Verdict-consistent anomaly score (same convention as the GHSOM
    /// hybrid): attack-labelled/dead units score in `(2, 3]`,
    /// normal-labelled units score by BMU distance relative to the
    /// threshold, with `score > 1 ⇔ anomalous`.
    fn score(&self, x: &[f64]) -> Result<f64, DetectError> {
        let bmu = self.som.bmu(x)?;
        let normal = matches!(self.labels.label(bmu.unit), Some(AttackCategory::Normal));
        Ok(crate::verdict_score(bmu.distance, self.threshold, normal))
    }

    fn is_anomalous(&self, x: &[f64]) -> Result<bool, DetectError> {
        let bmu = self.som.bmu(x)?;
        match self.labels.label(bmu.unit) {
            Some(AttackCategory::Normal) => Ok(bmu.distance > self.threshold),
            // Attack-labelled or dead unit.
            _ => Ok(true),
        }
    }

    fn name(&self) -> &'static str {
        "flat-som"
    }

    /// Batched scoring through [`Som::bmu_batch`] (Gram-trick engine,
    /// parallel under the `rayon` feature).
    fn score_all(&self, data: &Matrix) -> Result<Vec<f64>, DetectError> {
        let matches = self.som.bmu_batch(data)?;
        Ok(matches
            .into_iter()
            .map(|bmu| {
                let normal = matches!(self.labels.label(bmu.unit), Some(AttackCategory::Normal));
                crate::verdict_score(bmu.distance, self.threshold, normal)
            })
            .collect())
    }

    /// Batched verdicts through [`Som::bmu_batch`].
    fn is_anomalous_all(&self, data: &Matrix) -> Result<Vec<bool>, DetectError> {
        Ok(self
            .som
            .bmu_batch(data)?
            .into_iter()
            .map(|bmu| match self.labels.label(bmu.unit) {
                Some(AttackCategory::Normal) => bmu.distance > self.threshold,
                _ => true,
            })
            .collect())
    }
}

impl Classifier for FlatSomDetector {
    fn classify(&self, x: &[f64]) -> Result<Option<AttackCategory>, DetectError> {
        let bmu = self.som.bmu(x)?;
        let label = self.labels.label(bmu.unit).copied();
        if label == Some(AttackCategory::Normal) && bmu.distance > self.threshold {
            return Ok(None);
        }
        Ok(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs() -> (Matrix, Vec<AttackCategory>) {
        let mut rng = StdRng::seed_from_u64(21);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..300 {
            if i % 3 == 0 {
                rows.push(vec![
                    3.0 + rng.gen::<f64>() * 0.2,
                    3.0 + rng.gen::<f64>() * 0.2,
                ]);
                labels.push(AttackCategory::Probe);
            } else {
                rows.push(vec![rng.gen::<f64>() * 0.3, rng.gen::<f64>() * 0.3]);
                labels.push(AttackCategory::Normal);
            }
        }
        (Matrix::from_rows(rows).unwrap(), labels)
    }

    fn detector() -> FlatSomDetector {
        let (data, labels) = blobs();
        FlatSomDetector::fit(&data, &labels, 4, 4, 0.99, 3).unwrap()
    }

    #[test]
    fn classifies_both_blobs() {
        let det = detector();
        assert_eq!(
            det.classify(&[0.15, 0.15]).unwrap(),
            Some(AttackCategory::Normal)
        );
        assert_eq!(
            det.classify(&[3.1, 3.1]).unwrap(),
            Some(AttackCategory::Probe)
        );
        assert!(!det.is_anomalous(&[0.15, 0.15]).unwrap());
        assert!(det.is_anomalous(&[3.1, 3.1]).unwrap());
    }

    #[test]
    fn distant_points_are_anomalous() {
        let det = detector();
        assert!(det.is_anomalous(&[-8.0, 9.0]).unwrap());
    }

    #[test]
    fn score_is_verdict_consistent() {
        let det = detector();
        let (data, _) = blobs();
        for x in data.iter_rows() {
            let score = det.score(x).unwrap();
            assert_eq!(det.is_anomalous(x).unwrap(), score > 1.0);
        }
        // Far points reach the attack band.
        assert!(det.score(&[-8.0, 9.0]).unwrap() > 1.0);
    }

    #[test]
    fn fit_validations() {
        let (data, labels) = blobs();
        assert!(FlatSomDetector::fit(&data, &labels[..2], 4, 4, 0.99, 0).is_err());
        assert!(FlatSomDetector::fit(&data, &labels, 4, 4, 0.0, 0).is_err());
        assert!(FlatSomDetector::fit(&data, &labels, 0, 4, 0.99, 0).is_err());
        let all_attack = vec![AttackCategory::Dos; data.rows()];
        assert_eq!(
            FlatSomDetector::fit(&data, &all_attack, 4, 4, 0.99, 0).unwrap_err(),
            DetectError::EmptyInput
        );
    }

    #[test]
    fn deterministic_fit() {
        let (data, labels) = blobs();
        let a = FlatSomDetector::fit(&data, &labels, 4, 4, 0.99, 7).unwrap();
        let b = FlatSomDetector::fit(&data, &labels, 4, 4, 0.99, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(detector().name(), "flat-som");
    }

    #[test]
    fn serde_roundtrip() {
        let det = detector();
        let json = serde_json::to_string(&det).unwrap();
        let back: FlatSomDetector = serde_json::from_str(&json).unwrap();
        assert_eq!(back, det);
    }
}
