//! Comparison baselines.
//!
//! Each baseline mirrors the GHSOM hybrid detection scheme as closely as
//! its model allows — majority-vote labels on its prototypes plus a
//! score threshold calibrated on normal training traffic — so that the
//! evaluation compares *models*, not detection plumbing:
//!
//! * [`flat_som`] — a fixed-grid Kohonen SOM (the "SOM" column of the
//!   paper's comparison tables).
//! * [`kmeans`] — k-means++ clustering (the "k-means" column).
//! * [`growing`] — a single-layer growing grid: the GHSOM with vertical
//!   growth disabled. This is ablation A1 (value of the hierarchy).
//! * [`pca`] — the classical PCA-residual subspace detector, fitted on
//!   normal traffic only.

pub mod flat_som;
pub mod growing;
pub mod kmeans;
pub mod pca;
