//! The QE-threshold detector: GHSOM leaf quantization error against a
//! percentile threshold calibrated on normal traffic.
//!
//! This is the purest form of the paper's detection idea: the GHSOM is a
//! model of *normal* traffic geometry, so a record that cannot be quantized
//! well anywhere in the hierarchy is anomalous.

use ghsom_core::{GhsomModel, Scorer};
use mathkit::{Matrix, MatrixView};
use serde::{Deserialize, Serialize};

use crate::{DetectError, Detector};

/// GHSOM + calibrated QE threshold.
///
/// Generic over the hierarchy representation: `M` is the training-time
/// tree ([`GhsomModel`], the default) or the compiled serving arena
/// (`ghsom_serve::CompiledGhsom`) — fit on the tree, then move the fitted
/// threshold onto the compiled plane with
/// [`QeThresholdDetector::with_scorer`]. Verdicts are identical on both
/// (projections are bit-identical by construction).
///
/// See the [crate-level example](crate) for end-to-end usage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QeThresholdDetector<M = GhsomModel> {
    model: M,
    threshold: f64,
    percentile: f64,
}

impl<M: Scorer> QeThresholdDetector<M> {
    /// Calibrates the threshold at the given percentile of the leaf-QE
    /// scores of `normal_data` (records known/assumed to be benign).
    ///
    /// `percentile = 0.99` means 1% of genuinely normal traffic will be
    /// flagged — the calibration directly sets the expected false-positive
    /// rate.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidParameter`] for a percentile outside `(0, 1]`;
    /// [`DetectError::EmptyInput`] for empty calibration data; model
    /// errors propagate.
    pub fn fit(model: M, normal_data: &Matrix, percentile: f64) -> Result<Self, DetectError> {
        if !(percentile > 0.0 && percentile <= 1.0) {
            return Err(DetectError::InvalidParameter {
                name: "percentile",
                reason: "must lie in (0, 1]",
            });
        }
        if normal_data.rows() == 0 {
            return Err(DetectError::EmptyInput);
        }
        let scores = model.score_matrix(normal_data)?;
        let threshold = mathkit::stats::quantile(&scores, percentile)?;
        Ok(QeThresholdDetector {
            model,
            threshold,
            percentile,
        })
    }

    /// Builds the detector with an explicit threshold (used by ROC sweeps).
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidParameter`] when `threshold` is not finite
    /// and non-negative.
    pub fn with_threshold(model: M, threshold: f64) -> Result<Self, DetectError> {
        if !threshold.is_finite() || threshold < 0.0 {
            return Err(DetectError::InvalidParameter {
                name: "threshold",
                reason: "must be finite and non-negative",
            });
        }
        Ok(QeThresholdDetector {
            model,
            threshold,
            percentile: f64::NAN,
        })
    }

    /// The underlying trained model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The calibrated threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The calibration percentile (NaN when built with an explicit
    /// threshold).
    pub fn percentile(&self) -> f64 {
        self.percentile
    }

    /// Moves the fitted threshold onto another representation of the
    /// *same* hierarchy (typically `model.compile()`d for serving).
    /// Thresholds transfer unchanged because projections agree bit-for-bit.
    pub fn with_scorer<N: Scorer>(&self, model: N) -> QeThresholdDetector<N> {
        QeThresholdDetector {
            model,
            threshold: self.threshold,
            percentile: self.percentile,
        }
    }

    /// The single definition of the verdict: every scoring shape (single,
    /// owned batch, view batch) thresholds through here, so the paths
    /// cannot diverge.
    #[inline]
    fn flag(&self, score: f64) -> bool {
        score > self.threshold
    }
}

impl<M: Scorer> Detector for QeThresholdDetector<M> {
    fn score(&self, x: &[f64]) -> Result<f64, DetectError> {
        Ok(self.model.project(x)?.leaf_qe())
    }

    fn is_anomalous(&self, x: &[f64]) -> Result<bool, DetectError> {
        Ok(self.flag(self.score(x)?))
    }

    fn name(&self) -> &'static str {
        "ghsom-qe"
    }

    /// One traversal: the verdict is the thresholded score.
    fn score_and_flag(&self, x: &[f64]) -> Result<(f64, bool), DetectError> {
        let score = self.score(x)?;
        Ok((score, self.flag(score)))
    }

    /// Batched scoring through [`GhsomModel::score_matrix`] (one grouped
    /// BMU pass per hierarchy map, parallel under the `rayon` feature).
    fn score_all(&self, data: &Matrix) -> Result<Vec<f64>, DetectError> {
        Ok(self.model.score_matrix(data)?)
    }

    /// Batched verdicts from the batched scores.
    fn is_anomalous_all(&self, data: &Matrix) -> Result<Vec<bool>, DetectError> {
        Ok(self
            .score_all(data)?
            .into_iter()
            .map(|s| self.flag(s))
            .collect())
    }

    /// One traversal: verdicts are thresholded scores. (Stays on the
    /// owned [`Scorer::score_matrix`] rather than delegating through a
    /// view: the tree model's leaf-only scorer override has no view
    /// form, and routing through one would copy the matrix.)
    fn score_and_flag_all(&self, data: &Matrix) -> Result<(Vec<f64>, Vec<bool>), DetectError> {
        let scores = self.score_all(data)?;
        let flags = scores.iter().map(|&s| self.flag(s)).collect();
        Ok((scores, flags))
    }

    /// Zero-copy override: one leaf-only traversal over the borrowed
    /// buffer ([`Scorer::score_matrix_view`]).
    fn score_and_flag_all_view(
        &self,
        data: MatrixView<'_>,
    ) -> Result<(Vec<f64>, Vec<bool>), DetectError> {
        let scores = self.model.score_matrix_view(data)?;
        let flags = scores.iter().map(|&s| self.flag(s)).collect();
        Ok((scores, flags))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghsom_core::GhsomConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn normal_blob(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = (0..n)
            .map(|_| vec![rng.gen::<f64>() * 0.2, rng.gen::<f64>() * 0.2])
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    fn detector() -> QeThresholdDetector {
        let data = normal_blob(300, 1);
        let model = GhsomModel::train(
            &GhsomConfig::default()
                .with_tau1(0.5)
                .with_tau2(0.5)
                .with_seed(2),
            &data,
        )
        .unwrap();
        QeThresholdDetector::fit(model, &data, 0.99).unwrap()
    }

    #[test]
    fn calibration_bounds_false_positives() {
        let det = detector();
        let fresh = normal_blob(1_000, 99);
        let fp = fresh
            .iter_rows()
            .filter(|x| det.is_anomalous(x).unwrap())
            .count();
        // 99th percentile ⇒ ~1% FPR on fresh normal data; allow slack.
        assert!(fp < 60, "false positives: {fp}/1000");
    }

    #[test]
    fn flags_far_away_points() {
        let det = detector();
        assert!(det.is_anomalous(&[5.0, 5.0]).unwrap());
        assert!(det.score(&[5.0, 5.0]).unwrap() > det.threshold());
    }

    #[test]
    fn fit_validates_parameters() {
        let data = normal_blob(50, 3);
        let model = GhsomModel::train(&GhsomConfig::default(), &data).unwrap();
        assert!(QeThresholdDetector::fit(model.clone(), &data, 0.0).is_err());
        assert!(QeThresholdDetector::fit(model.clone(), &data, 1.5).is_err());
        assert!(QeThresholdDetector::with_threshold(model.clone(), -1.0).is_err());
        assert!(QeThresholdDetector::with_threshold(model, f64::NAN).is_err());
    }

    #[test]
    fn explicit_threshold_is_respected() {
        let data = normal_blob(50, 4);
        let model = GhsomModel::train(&GhsomConfig::default(), &data).unwrap();
        let det = QeThresholdDetector::with_threshold(model, 0.0).unwrap();
        // Zero threshold: everything with any quantization error is flagged.
        assert!(det.is_anomalous(&[0.1, 0.11]).unwrap());
        assert!(det.percentile().is_nan());
    }

    #[test]
    fn score_all_matches_score() {
        let det = detector();
        let data = normal_blob(20, 5);
        let all = det.score_all(&data).unwrap();
        for (x, &s) in data.iter_rows().zip(&all) {
            assert_eq!(det.score(x).unwrap(), s);
        }
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(detector().name(), "ghsom-qe");
    }

    #[test]
    fn serde_roundtrip() {
        let det = detector();
        let json = serde_json::to_string(&det).unwrap();
        let back: QeThresholdDetector = serde_json::from_str(&json).unwrap();
        assert_eq!(back.threshold(), det.threshold());
        assert_eq!(
            back.score(&[0.3, 0.3]).unwrap(),
            det.score(&[0.3, 0.3]).unwrap()
        );
    }
}
