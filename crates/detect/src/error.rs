//! Error type shared by all detectors.

use std::fmt;

/// Errors produced by detector fitting and scoring.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DetectError {
    /// Sample width differs from what the detector was fitted on.
    DimensionMismatch {
        /// Fitted width.
        expected: usize,
        /// Received width.
        found: usize,
    },
    /// Fitting needs a non-empty calibration set.
    EmptyInput,
    /// A fitting parameter was out of its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Violated constraint.
        reason: &'static str,
    },
    /// An underlying model operation failed.
    Model(String),
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "dimension mismatch: detector is {expected}-d, sample is {found}-d"
                )
            }
            DetectError::EmptyInput => write!(f, "fitting requires a non-empty calibration set"),
            DetectError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DetectError::Model(msg) => write!(f, "model error: {msg}"),
        }
    }
}

impl std::error::Error for DetectError {}

impl From<ghsom_core::GhsomError> for DetectError {
    fn from(e: ghsom_core::GhsomError) -> Self {
        match e {
            ghsom_core::GhsomError::DimensionMismatch { expected, found } => {
                DetectError::DimensionMismatch { expected, found }
            }
            ghsom_core::GhsomError::EmptyInput => DetectError::EmptyInput,
            other => DetectError::Model(other.to_string()),
        }
    }
}

impl From<som::SomError> for DetectError {
    fn from(e: som::SomError) -> Self {
        match e {
            som::SomError::DimensionMismatch { expected, found } => {
                DetectError::DimensionMismatch { expected, found }
            }
            som::SomError::EmptyInput => DetectError::EmptyInput,
            other => DetectError::Model(other.to_string()),
        }
    }
}

impl From<mathkit::MathError> for DetectError {
    fn from(e: mathkit::MathError) -> Self {
        match e {
            mathkit::MathError::DimensionMismatch { expected, found } => {
                DetectError::DimensionMismatch { expected, found }
            }
            mathkit::MathError::EmptyInput => DetectError::EmptyInput,
            other => DetectError::Model(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DetectError::DimensionMismatch {
                expected: 88,
                found: 2
            }
            .to_string(),
            "dimension mismatch: detector is 88-d, sample is 2-d"
        );
        assert_eq!(
            DetectError::EmptyInput.to_string(),
            "fitting requires a non-empty calibration set"
        );
    }

    #[test]
    fn conversions() {
        let e: DetectError = ghsom_core::GhsomError::EmptyInput.into();
        assert_eq!(e, DetectError::EmptyInput);
        let e: DetectError = som::SomError::DimensionMismatch {
            expected: 2,
            found: 3,
        }
        .into();
        assert!(matches!(e, DetectError::DimensionMismatch { .. }));
        let e: DetectError = mathkit::MathError::NonFinite.into();
        assert!(matches!(e, DetectError::Model(_)));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<DetectError>();
    }
}
