//! The hybrid detector: leaf labels first, QE threshold as a second line
//! of defence.
//!
//! The labelled detector misses attacks that land on normal-labelled units
//! (mimicry, unseen attack types resembling normal traffic); the
//! QE-threshold detector misses attacks that cluster tightly near normal
//! prototypes. The hybrid flags a record if **either** trips: its leaf is
//! attack-labelled/dead, or its leaf quantization error exceeds the
//! calibrated threshold.

use ghsom_core::{GhsomModel, Scorer};
use mathkit::{Matrix, MatrixView};
use serde::{Deserialize, Serialize};
use traffic::AttackCategory;

use crate::labeled::{LabeledGhsomDetector, LabeledState};
use crate::{Classifier, DetectError, Detector};

/// The fitted state of a [`HybridGhsomDetector`], decoupled from the
/// hierarchy representation: the label layer's tables plus the calibrated
/// QE threshold. Extract with [`HybridGhsomDetector::state`], rebind to
/// any [`ghsom_core::Scorer`] over the same hierarchy with
/// [`HybridGhsomDetector::from_state`] — the serving-bundle persistence
/// path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridState {
    /// Fitted label layer.
    pub labeled: LabeledState,
    /// Calibrated QE threshold.
    pub threshold: f64,
}

/// The complete answer for one record from a single hierarchy traversal:
/// anomaly score, binary verdict and predicted category, mutually
/// consistent by construction (`anomalous ⇔ score > 1`, and `category`
/// follows the [`Classifier`] convention — `None` means "anomalous of
/// unknown kind").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridVerdict {
    /// Verdict-consistent anomaly score (see [`Detector::score`] on
    /// [`HybridGhsomDetector`]).
    pub score: f64,
    /// Binary verdict at the fitted threshold.
    pub anomalous: bool,
    /// Predicted category (`None` = anomalous of unknown kind).
    pub category: Option<AttackCategory>,
}

impl HybridVerdict {
    /// Width of the fixed wire encoding produced by
    /// [`HybridVerdict::to_wire`].
    pub const WIRE_LEN: usize = 10;

    /// Wire byte for "anomalous of unknown kind" (`category == None`).
    const WIRE_NO_CATEGORY: u8 = 0xFF;

    /// Encodes the verdict into its fixed little-endian wire form:
    /// `score` as 8 raw IEEE-754 bytes (bit-faithful, so a decode
    /// reproduces the verdict exactly), `anomalous` as one `0`/`1` byte,
    /// and `category` as its index in [`AttackCategory::ALL`] (`0xFF`
    /// for `None`). This is the response encoding network daemons ship
    /// per record; the format is normative in `docs/PROTOCOL.md`.
    pub fn to_wire(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        let (score, tail) = out.split_at_mut(8);
        score.copy_from_slice(&self.score.to_le_bytes());
        if let [anomalous, category] = tail {
            *anomalous = u8::from(self.anomalous);
            *category = match self.category {
                None => Self::WIRE_NO_CATEGORY,
                Some(c) => wire_category_code(c),
            };
        }
        out
    }

    /// Decodes a verdict from its [`HybridVerdict::to_wire`] form.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidParameter`] when the `anomalous` byte is
    /// not `0`/`1` or the category byte names no [`AttackCategory`] —
    /// hostile bytes are a typed error, never a partial verdict.
    pub fn from_wire(bytes: &[u8; Self::WIRE_LEN]) -> Result<Self, DetectError> {
        let (score, tail) = bytes.split_at(8);
        let mut raw = [0u8; 8];
        raw.copy_from_slice(score);
        let (&anomalous, &category) = match tail {
            [a, c] => (a, c),
            // Unreachable by the split width, kept total for the lint.
            _ => {
                return Err(DetectError::InvalidParameter {
                    name: "verdict",
                    reason: "wire verdict has the wrong width",
                })
            }
        };
        let anomalous = match anomalous {
            0 => false,
            1 => true,
            _ => {
                return Err(DetectError::InvalidParameter {
                    name: "anomalous",
                    reason: "wire verdict flag byte must be 0 or 1",
                })
            }
        };
        let category = if category == Self::WIRE_NO_CATEGORY {
            None
        } else {
            Some(
                AttackCategory::ALL
                    .get(usize::from(category))
                    .copied()
                    .ok_or(DetectError::InvalidParameter {
                        name: "category",
                        reason: "wire verdict category byte is out of range",
                    })?,
            )
        };
        Ok(HybridVerdict {
            score: f64::from_le_bytes(raw),
            anomalous,
            category,
        })
    }
}

/// Stable wire code of a category: its index in [`AttackCategory::ALL`].
fn wire_category_code(category: AttackCategory) -> u8 {
    AttackCategory::ALL
        .iter()
        .position(|c| *c == category)
        .map(|i| u8::try_from(i).unwrap_or(HybridVerdict::WIRE_NO_CATEGORY))
        // Unreachable: ALL enumerates every variant; kept total.
        .unwrap_or(HybridVerdict::WIRE_NO_CATEGORY)
}

/// Labels + QE threshold combined.
///
/// Generic over the hierarchy representation `M` like its
/// [`LabeledGhsomDetector`] core: fit on the training tree, then serve
/// from the compiled arena via [`HybridGhsomDetector::with_scorer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridGhsomDetector<M = GhsomModel> {
    inner: LabeledGhsomDetector<M>,
    threshold: f64,
}

impl<M: Scorer> HybridGhsomDetector<M> {
    /// Fits the label layer on `train`/`labels` and calibrates the QE
    /// threshold at `percentile` of the scores of the *normal subset* of
    /// the training data.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidParameter`] for a percentile outside `(0, 1]`;
    /// [`DetectError::EmptyInput`] when there are no records (or no normal
    /// records to calibrate on); model errors propagate.
    pub fn fit(
        model: M,
        train: &Matrix,
        labels: &[AttackCategory],
        percentile: f64,
    ) -> Result<Self, DetectError> {
        if !(percentile > 0.0 && percentile <= 1.0) {
            return Err(DetectError::InvalidParameter {
                name: "percentile",
                reason: "must lie in (0, 1]",
            });
        }
        let inner = LabeledGhsomDetector::fit(model, train, labels)?;
        // Calibrate on the normal slice through the batched scorer (one
        // grouped hierarchy traversal instead of a projection per row).
        let normal_rows: Vec<Vec<f64>> = train
            .iter_rows()
            .zip(labels)
            .filter(|(_, &l)| l == AttackCategory::Normal)
            .map(|(x, _)| x.to_vec())
            .collect();
        if normal_rows.is_empty() {
            return Err(DetectError::EmptyInput);
        }
        let normal = Matrix::from_rows(normal_rows)?;
        let normal_scores = inner.model().score_matrix(&normal)?;
        let threshold = mathkit::stats::quantile(&normal_scores, percentile)?;
        Ok(HybridGhsomDetector { inner, threshold })
    }

    /// The calibrated QE threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The wrapped labelled detector.
    pub fn labeled(&self) -> &LabeledGhsomDetector<M> {
        &self.inner
    }

    /// Moves the fitted labels and threshold onto another representation
    /// of the *same* hierarchy (typically `model.compile()`d for serving).
    pub fn with_scorer<N: Scorer>(&self, model: N) -> HybridGhsomDetector<N> {
        HybridGhsomDetector::from_state(model, self.state())
    }

    /// Extracts the fitted state (labels + threshold) for persistence
    /// independent of the hierarchy.
    pub fn state(&self) -> HybridState {
        HybridState {
            labeled: self.inner.state(),
            threshold: self.threshold,
        }
    }

    /// Rebinds a previously extracted state to a hierarchy
    /// representation. The caller must pair the state with (a
    /// representation of) the hierarchy it was fitted on.
    pub fn from_state(model: M, state: HybridState) -> Self {
        HybridGhsomDetector {
            inner: LabeledGhsomDetector::from_state(model, state.labeled),
            threshold: state.threshold,
        }
    }

    /// The shared verdict core: score, flag and category from an
    /// already-computed leaf key and QE.
    fn verdict_from(&self, key: (usize, usize), qe: f64, x: &[f64]) -> HybridVerdict {
        let classification = self.inner.classify_key(key, x);
        let normal = matches!(classification, Some(AttackCategory::Normal));
        let anomalous = !normal || qe > self.threshold;
        HybridVerdict {
            score: crate::verdict_score(qe, self.threshold, normal),
            anomalous,
            // A "normal" label overturned by the QE layer means
            // "anomalous of unknown kind" — same convention as
            // `Classifier::classify`.
            category: if normal && anomalous {
                None
            } else {
                classification
            },
        }
    }

    /// Score, binary verdict and predicted category from **one**
    /// hierarchy traversal — the single-record serving path (the separate
    /// [`Detector::score`] / [`Detector::is_anomalous`] /
    /// [`Classifier::classify`] calls each project the sample again).
    ///
    /// # Errors
    ///
    /// Projection errors propagate.
    pub fn verdict(&self, x: &[f64]) -> Result<HybridVerdict, DetectError> {
        let p = self.inner.model().project(x)?;
        Ok(self.verdict_from(p.leaf_key(), p.leaf_qe(), x))
    }

    /// [`HybridGhsomDetector::verdict`] for a whole matrix through one
    /// batched hierarchy traversal (chunk-parallel under the `rayon`
    /// feature) — the bulk serving path.
    ///
    /// # Errors
    ///
    /// Projection errors propagate.
    pub fn verdicts_all(&self, data: &Matrix) -> Result<Vec<HybridVerdict>, DetectError> {
        self.verdicts_all_view(data.view())
    }

    /// [`HybridGhsomDetector::verdicts_all`] over a **borrowed** matrix
    /// view — the fused serving path: when the hierarchy is the compiled
    /// arena, the walk runs directly on the caller's flat buffer (e.g. a
    /// reused `featurize` feature matrix) through
    /// [`Scorer::project_batch_view`], with no owned copy in between.
    ///
    /// # Errors
    ///
    /// Projection errors propagate.
    pub fn verdicts_all_view(
        &self,
        data: MatrixView<'_>,
    ) -> Result<Vec<HybridVerdict>, DetectError> {
        let projections = self.inner.model().project_batch_view(data)?;
        Ok(projections
            .iter()
            .zip(data.iter_rows())
            .map(|(p, x)| self.verdict_from(p.leaf_key(), p.leaf_qe(), x))
            .collect())
    }
}

impl<M: Scorer> Detector for HybridGhsomDetector<M> {
    /// Verdict-consistent anomaly score. Attack-labelled leaves score in
    /// `(2, 3]`; normal-labelled leaves score by their QE relative to the
    /// calibrated threshold, mapped into `[0, 2)` such that `score > 1`
    /// exactly when `qe > threshold`. The binary verdict is `score > 1`.
    fn score(&self, x: &[f64]) -> Result<f64, DetectError> {
        let qe = self.inner.model().project(x)?.leaf_qe();
        let normal = matches!(self.inner.classify(x)?, Some(AttackCategory::Normal));
        Ok(crate::verdict_score(qe, self.threshold, normal))
    }

    fn is_anomalous(&self, x: &[f64]) -> Result<bool, DetectError> {
        // Label layer.
        if !matches!(self.inner.classify(x)?, Some(AttackCategory::Normal)) {
            return Ok(true);
        }
        // QE layer: normal-labelled leaf but unusual distance.
        Ok(self.inner.model().project(x)?.leaf_qe() > self.threshold)
    }

    fn name(&self) -> &'static str {
        "ghsom-hybrid"
    }

    /// Score and verdict from **one** hierarchy traversal (the separate
    /// methods each project the sample again) — the streaming per-record
    /// hot path.
    fn score_and_flag(&self, x: &[f64]) -> Result<(f64, bool), DetectError> {
        let v = self.verdict(x)?;
        Ok((v.score, v.anomalous))
    }

    /// Batched scoring: one hierarchy traversal feeds both the label and
    /// the QE layer for every sample.
    fn score_all(&self, data: &Matrix) -> Result<Vec<f64>, DetectError> {
        let projections = self.inner.model().project_batch(data)?;
        Ok(projections
            .iter()
            .zip(data.iter_rows())
            .map(|(p, x)| {
                let classification = self.inner.classify_key(p.leaf_key(), x);
                let normal = matches!(classification, Some(AttackCategory::Normal));
                crate::verdict_score(p.leaf_qe(), self.threshold, normal)
            })
            .collect())
    }

    /// Batched verdicts: the same single hierarchy traversal as
    /// [`Detector::score_all`], applying the label layer then the QE
    /// threshold per sample.
    fn is_anomalous_all(&self, data: &Matrix) -> Result<Vec<bool>, DetectError> {
        let projections = self.inner.model().project_batch(data)?;
        Ok(projections
            .iter()
            .zip(data.iter_rows())
            .map(|(p, x)| {
                let classification = self.inner.classify_key(p.leaf_key(), x);
                !matches!(classification, Some(AttackCategory::Normal))
                    || p.leaf_qe() > self.threshold
            })
            .collect())
    }

    /// Scores and verdicts from **one** hierarchy traversal and one label
    /// lookup per sample — the streaming hot path.
    fn score_and_flag_all(&self, data: &Matrix) -> Result<(Vec<f64>, Vec<bool>), DetectError> {
        self.score_and_flag_all_view(data.view())
    }

    /// Zero-copy override of the view entry point: one hierarchy
    /// traversal directly over the borrowed buffer
    /// ([`Scorer::project_batch_view`]).
    fn score_and_flag_all_view(
        &self,
        data: MatrixView<'_>,
    ) -> Result<(Vec<f64>, Vec<bool>), DetectError> {
        let projections = self.inner.model().project_batch_view(data)?;
        let mut scores = Vec::with_capacity(projections.len());
        let mut flags = Vec::with_capacity(projections.len());
        for (p, x) in projections.iter().zip(data.iter_rows()) {
            let classification = self.inner.classify_key(p.leaf_key(), x);
            let normal = matches!(classification, Some(AttackCategory::Normal));
            let score = crate::verdict_score(p.leaf_qe(), self.threshold, normal);
            scores.push(score);
            flags.push(!normal || p.leaf_qe() > self.threshold);
        }
        Ok((scores, flags))
    }
}

impl<M: Scorer> Classifier for HybridGhsomDetector<M> {
    fn classify(&self, x: &[f64]) -> Result<Option<AttackCategory>, DetectError> {
        let label = self.inner.classify(x)?;
        // A "normal" verdict is overturned when the QE layer trips; the
        // category is unknown in that case.
        if label == Some(AttackCategory::Normal)
            && self.inner.model().project(x)?.leaf_qe() > self.threshold
        {
            return Ok(None);
        }
        Ok(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghsom_core::{GhsomConfig, GhsomModel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (HybridGhsomDetector, Matrix) {
        let mut rng = StdRng::seed_from_u64(77);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..400 {
            if i % 4 == 0 {
                rows.push(vec![
                    6.0 + rng.gen::<f64>() * 0.2,
                    6.0 + rng.gen::<f64>() * 0.2,
                ]);
                labels.push(AttackCategory::Probe);
            } else {
                rows.push(vec![rng.gen::<f64>() * 0.4, rng.gen::<f64>() * 0.4]);
                labels.push(AttackCategory::Normal);
            }
        }
        let data = Matrix::from_rows(rows).unwrap();
        let model = GhsomModel::train(
            &GhsomConfig::default()
                .with_tau1(0.4)
                .with_tau2(0.2)
                .with_seed(9),
            &data,
        )
        .unwrap();
        let det = HybridGhsomDetector::fit(model, &data, &labels, 0.99).unwrap();
        (det, data)
    }

    #[test]
    fn labelled_attacks_are_flagged() {
        let (det, _) = setup();
        assert!(det.is_anomalous(&[6.1, 6.1]).unwrap());
        assert_eq!(
            det.classify(&[6.1, 6.1]).unwrap(),
            Some(AttackCategory::Probe)
        );
    }

    #[test]
    fn normal_core_is_clean() {
        let (det, _) = setup();
        assert!(!det.is_anomalous(&[0.2, 0.2]).unwrap());
    }

    #[test]
    fn qe_layer_catches_normal_labelled_outliers() {
        let (det, _) = setup();
        // A point beyond the normal cluster but much closer to it than to
        // the attack cluster: the leaf label says normal, the QE layer
        // overturns it.
        let x = [1.2, 1.2];
        let label = det.labeled().classify(&x).unwrap();
        if label == Some(AttackCategory::Normal) {
            // Verdict-consistent score: anomalous ⇔ score > 1.
            assert!(det.score(&x).unwrap() > 1.0);
            assert!(det.is_anomalous(&x).unwrap());
            assert_eq!(det.classify(&x).unwrap(), None);
        } else {
            // The hierarchy put it on a dead/attack unit — still anomalous.
            assert!(det.is_anomalous(&x).unwrap());
        }
    }

    #[test]
    fn score_is_verdict_consistent() {
        let (det, data) = setup();
        for x in data.iter_rows() {
            let score = det.score(x).unwrap();
            let verdict = det.is_anomalous(x).unwrap();
            assert_eq!(
                verdict,
                score > 1.0,
                "verdict/score disagree at score {score}"
            );
        }
    }

    #[test]
    fn hybrid_flags_superset_of_labeled() {
        let (det, data) = setup();
        for x in data.iter_rows() {
            let labelled_flag = !matches!(
                det.labeled().classify(x).unwrap(),
                Some(AttackCategory::Normal)
            );
            if labelled_flag {
                assert!(det.is_anomalous(x).unwrap());
            }
        }
    }

    #[test]
    fn fit_validates_percentile() {
        let (det, data) = setup();
        let model = det.labeled().model().clone();
        let labels = vec![AttackCategory::Normal; data.rows()];
        assert!(HybridGhsomDetector::fit(model.clone(), &data, &labels, 0.0).is_err());
        assert!(HybridGhsomDetector::fit(model, &data, &labels, 1.1).is_err());
    }

    #[test]
    fn fit_requires_normal_records() {
        let (det, data) = setup();
        let model = det.labeled().model().clone();
        let all_attack = vec![AttackCategory::Dos; data.rows()];
        assert_eq!(
            HybridGhsomDetector::fit(model, &data, &all_attack, 0.99).unwrap_err(),
            DetectError::EmptyInput
        );
    }

    #[test]
    fn name_is_stable() {
        let (det, _) = setup();
        assert_eq!(det.name(), "ghsom-hybrid");
    }

    #[test]
    fn verdict_agrees_with_the_separate_calls() {
        let (det, data) = setup();
        let batch = det.verdicts_all(&data).unwrap();
        assert_eq!(batch.len(), data.rows());
        for (x, v) in data.iter_rows().zip(&batch) {
            let single = det.verdict(x).unwrap();
            assert_eq!(single, *v, "single/batch verdict disagree");
            assert_eq!(single.score.to_bits(), det.score(x).unwrap().to_bits());
            assert_eq!(single.anomalous, det.is_anomalous(x).unwrap());
            assert_eq!(single.category, det.classify(x).unwrap());
            assert_eq!(single.anomalous, single.score > 1.0);
            // The single-traversal streaming pair agrees too.
            let (score, flag) = det.score_and_flag(x).unwrap();
            assert_eq!(score.to_bits(), single.score.to_bits());
            assert_eq!(flag, single.anomalous);
        }
    }

    #[test]
    fn state_roundtrip_rebinds_to_any_scorer() {
        let (det, data) = setup();
        let state = det.state();
        let json = serde_json::to_string(&state).unwrap();
        let back: HybridState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        let rebuilt = HybridGhsomDetector::from_state(det.labeled().model().clone(), back);
        assert_eq!(rebuilt.threshold(), det.threshold());
        for x in data.iter_rows().take(25) {
            assert_eq!(
                det.verdict(x).unwrap(),
                rebuilt.verdict(x).unwrap(),
                "state roundtrip changed a verdict"
            );
        }
    }

    #[test]
    fn serde_roundtrip() {
        let (det, data) = setup();
        let json = serde_json::to_string(&det).unwrap();
        let back: HybridGhsomDetector = serde_json::from_str(&json).unwrap();
        for x in data.iter_rows().take(10) {
            assert_eq!(det.is_anomalous(x).unwrap(), back.is_anomalous(x).unwrap());
        }
    }
}
