//! Fine-grained classification: leaf units labelled with concrete
//! [`AttackType`]s rather than coarse categories.
//!
//! GHSOM-IDS papers often include a type-level analysis ("which map regions
//! capture smurf vs neptune?"). This classifier provides that view: it
//! reuses the same majority-vote machinery as
//! [`crate::labeled::LabeledGhsomDetector`] but at attack-type granularity,
//! which also powers the per-type classification table of the repro
//! harness.

use std::collections::HashMap;

use ghsom_core::{GhsomModel, Scorer};
use mathkit::Matrix;
use serde::{Deserialize, Serialize};
use traffic::AttackType;

use crate::DetectError;

/// Serialization helper shared with the category-level detector (JSON map
/// keys must be strings).
mod leaf_map {
    use super::HashMap;
    use serde::{Deserialize, Serialize, Value};

    pub fn serialize<V: Serialize>(map: &HashMap<(usize, usize), V>) -> Value {
        let mut entries: Vec<(&(usize, usize), &V)> = map.iter().collect();
        entries.sort_by_key(|(k, _)| **k);
        Value::Seq(
            entries
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }

    pub fn deserialize<V: Deserialize>(
        v: &Value,
    ) -> Result<HashMap<(usize, usize), V>, serde::Error> {
        let entries: Vec<((usize, usize), V)> = Deserialize::from_value(v)?;
        Ok(entries.into_iter().collect())
    }
}

/// GHSOM leaf units labelled with concrete attack types.
///
/// Generic over the hierarchy representation `M` (the [`GhsomModel`] tree
/// by default, or the compiled serving arena via
/// [`TypedGhsomClassifier::with_scorer`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypedGhsomClassifier<M = GhsomModel> {
    model: M,
    #[serde(with = "leaf_map")]
    labels: HashMap<(usize, usize), AttackType>,
}

impl<M: Scorer> TypedGhsomClassifier<M> {
    /// Labels the model's leaves with the majority attack type of the
    /// training records mapped to each.
    ///
    /// # Errors
    ///
    /// [`DetectError::DimensionMismatch`] when `labels.len() !=
    /// train.rows()`; [`DetectError::EmptyInput`] on empty data.
    pub fn fit(model: M, train: &Matrix, labels: &[AttackType]) -> Result<Self, DetectError> {
        if train.rows() == 0 {
            return Err(DetectError::EmptyInput);
        }
        if labels.len() != train.rows() {
            return Err(DetectError::DimensionMismatch {
                expected: train.rows(),
                found: labels.len(),
            });
        }
        let mut tallies: HashMap<(usize, usize), HashMap<AttackType, usize>> = HashMap::new();
        for (projection, &label) in model.project_batch(train)?.iter().zip(labels) {
            let key = projection.leaf_key();
            *tallies.entry(key).or_default().entry(label).or_insert(0) += 1;
        }
        let labels_map = tallies
            .into_iter()
            .map(|(key, tally)| {
                // Ties break toward the smaller type so the fitted
                // classifier is independent of HashMap iteration order.
                let (label, _) = tally
                    .into_iter()
                    .max_by_key(|&(label, c)| (c, std::cmp::Reverse(label)))
                    .expect("tally non-empty"); // LINT-ALLOW(no-panic): tally entries are created only by incrementing a count, so each holds at least one type
                (key, label)
            })
            .collect();
        Ok(TypedGhsomClassifier {
            model,
            labels: labels_map,
        })
    }

    /// The underlying trained model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Moves the fitted type labels onto another representation of the
    /// *same* hierarchy (typically `model.compile()`d for serving).
    pub fn with_scorer<N: Scorer>(&self, model: N) -> TypedGhsomClassifier<N> {
        TypedGhsomClassifier {
            model,
            labels: self.labels.clone(),
        }
    }

    /// Number of labelled leaves.
    pub fn labelled_unit_count(&self) -> usize {
        self.labels.len()
    }

    /// Predicted attack type of a sample. Dead leaves fall back to the
    /// nearest labelled unit of the same map; `None` only when the leaf
    /// map has no labelled units at all.
    ///
    /// # Errors
    ///
    /// Projection errors propagate.
    pub fn classify(&self, x: &[f64]) -> Result<Option<AttackType>, DetectError> {
        let key = self.model.project(x)?.leaf_key();
        Ok(self.classify_key(key, x))
    }

    /// Classifies every row through one batched hierarchy traversal
    /// ([`GhsomModel::project_batch`]); same results as mapping
    /// [`TypedGhsomClassifier::classify`] row by row.
    ///
    /// # Errors
    ///
    /// Projection errors propagate.
    pub fn classify_batch(&self, data: &Matrix) -> Result<Vec<Option<AttackType>>, DetectError> {
        let projections = self.model.project_batch(data)?;
        Ok(projections
            .iter()
            .zip(data.iter_rows())
            .map(|(p, x)| self.classify_key(p.leaf_key(), x))
            .collect())
    }

    /// Classification from a known leaf key — shared by the single and
    /// batched paths.
    fn classify_key(&self, key: (usize, usize), x: &[f64]) -> Option<AttackType> {
        if let Some(&label) = self.labels.get(&key) {
            return Some(label);
        }
        // Nearest labelled unit in the same map.
        let weights = self.model.map_weights(key.0);
        let dim = self.model.dim();
        let mut best: Option<(f64, AttackType)> = None;
        for unit in 0..self.model.map_units(key.0) {
            let Some(&label) = self.labels.get(&(key.0, unit)) else {
                continue;
            };
            let d = mathkit::distance::sq_euclidean(x, &weights[unit * dim..(unit + 1) * dim]);
            match best {
                Some((bd, _)) if d >= bd => {}
                _ => best = Some((d, label)),
            }
        }
        best.map(|(_, l)| l)
    }

    /// How many distinct attack types ended up owning at least one leaf —
    /// a measure of how finely the hierarchy separates attack families.
    pub fn distinct_leaf_types(&self) -> usize {
        let set: std::collections::BTreeSet<AttackType> = self.labels.values().copied().collect();
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghsom_core::GhsomConfig;
    use traffic::synth::{MixSpec, TrafficGenerator};

    fn setup() -> (
        TypedGhsomClassifier,
        Matrix,
        Vec<AttackType>,
        featurize::KddPipeline,
    ) {
        let mut gen = TrafficGenerator::new(MixSpec::kdd_train(), 17).unwrap();
        let train = gen.generate(1_500);
        let pipeline =
            featurize::KddPipeline::fit(&featurize::PipelineConfig::default(), &train).unwrap();
        let x = pipeline.transform_dataset(&train).unwrap();
        let labels: Vec<AttackType> = train.iter().map(|r| r.label).collect();
        let model = GhsomModel::train(
            &GhsomConfig::default()
                .with_tau1(0.3)
                .with_tau2(0.03)
                .with_epochs(3, 2)
                .with_seed(17),
            &x,
        )
        .unwrap();
        let clf = TypedGhsomClassifier::fit(model, &x, &labels).unwrap();
        (clf, x, labels, pipeline)
    }

    #[test]
    fn classifies_dominant_types_well() {
        let (clf, x, labels, _) = setup();
        let mut correct = 0usize;
        let mut dominant_total = 0usize;
        for (row, &truth) in x.iter_rows().zip(&labels) {
            if matches!(
                truth,
                AttackType::Smurf | AttackType::Neptune | AttackType::Normal
            ) {
                dominant_total += 1;
                if clf.classify(row).unwrap() == Some(truth) {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / dominant_total as f64;
        assert!(acc > 0.95, "dominant-type accuracy {acc}");
    }

    #[test]
    fn separates_multiple_attack_families() {
        let (clf, _, _, _) = setup();
        assert!(
            clf.distinct_leaf_types() >= 5,
            "only {} distinct types own leaves",
            clf.distinct_leaf_types()
        );
        assert!(clf.labelled_unit_count() > 10);
    }

    #[test]
    fn unseen_types_classify_to_plausible_families() {
        // mscan never occurs in training; its records should classify as
        // *some* attack type (probe-like), not crash.
        let (clf, _, _, pipeline) = setup();
        let mut gen = TrafficGenerator::new(MixSpec::kdd_test(), 18).unwrap();
        let mut classified = 0usize;
        for _ in 0..20 {
            let rec = gen.sample_of(AttackType::Mscan);
            let x = pipeline.transform(&rec).unwrap();
            if clf.classify(&x).unwrap().is_some() {
                classified += 1;
            }
        }
        assert!(classified >= 18, "only {classified}/20 produced a label");
    }

    #[test]
    fn fit_validates_inputs() {
        let (clf, x, labels, _) = setup();
        let model = clf.model().clone();
        assert!(TypedGhsomClassifier::fit(model, &x, &labels[..5]).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let (clf, x, _, _) = setup();
        let json = serde_json::to_string(&clf).unwrap();
        let back: TypedGhsomClassifier = serde_json::from_str(&json).unwrap();
        for row in x.iter_rows().take(20) {
            assert_eq!(clf.classify(row).unwrap(), back.classify(row).unwrap());
        }
    }
}
