//! Property-based tests for the evaluation kit.

use evalkit::binary::BinaryMetrics;
use evalkit::confusion::ConfusionMatrix;
use evalkit::roc::RocCurve;
use proptest::prelude::*;

proptest! {
    /// Binary metrics are consistent with their defining counts for any
    /// verdict stream.
    #[test]
    fn binary_metrics_are_consistent(pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 1..200)) {
        let m = BinaryMetrics::from_pairs(pairs.iter().copied());
        prop_assert_eq!(m.total() as usize, pairs.len());
        let attacks = pairs.iter().filter(|(t, _)| *t).count() as u64;
        let normals = m.total() - attacks;
        prop_assert_eq!(m.true_positives + m.false_negatives, attacks);
        prop_assert_eq!(m.false_positives + m.true_negatives, normals);
        for v in [m.detection_rate(), m.false_positive_rate(), m.precision(), m.accuracy(), m.f1()] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        prop_assert!((-1.0..=1.0).contains(&m.mcc()));
    }

    /// Merging two metric sets equals computing over the concatenation.
    #[test]
    fn binary_merge_is_concatenation(
        a in prop::collection::vec((any::<bool>(), any::<bool>()), 0..100),
        b in prop::collection::vec((any::<bool>(), any::<bool>()), 0..100)
    ) {
        let mut left = BinaryMetrics::from_pairs(a.iter().copied());
        left.merge(&BinaryMetrics::from_pairs(b.iter().copied()));
        let joint = BinaryMetrics::from_pairs(a.iter().chain(b.iter()).copied());
        prop_assert_eq!(left, joint);
    }

    /// ROC curves are monotone, anchored at (0,0)/(1,1), with AUC in
    /// [0, 1]; and flipping all labels mirrors the AUC around 0.5.
    #[test]
    fn roc_is_well_formed(
        scores in prop::collection::vec(0.0f64..1.0, 4..200),
        flip_threshold in 0.2f64..0.8
    ) {
        // Build truth that has both classes by construction.
        let mut truth: Vec<bool> = scores.iter().map(|&s| s > flip_threshold).collect();
        if truth.iter().all(|&t| t) { truth[0] = false; }
        if truth.iter().all(|&t| !t) { truth[0] = true; }

        let roc = RocCurve::from_scores(&scores, &truth).unwrap();
        prop_assert!((0.0..=1.0).contains(&roc.auc()));
        let pts = roc.points();
        prop_assert_eq!((pts[0].fpr, pts[0].tpr), (0.0, 0.0));
        let last = pts[pts.len() - 1];
        prop_assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
        for w in pts.windows(2) {
            prop_assert!(w[1].fpr >= w[0].fpr - 1e-12);
            prop_assert!(w[1].tpr >= w[0].tpr - 1e-12);
        }

        // Inverting truth mirrors the AUC.
        let inverted: Vec<bool> = truth.iter().map(|t| !t).collect();
        let roc_inv = RocCurve::from_scores(&scores, &inverted).unwrap();
        prop_assert!((roc.auc() + roc_inv.auc() - 1.0).abs() < 1e-9);
    }

    /// tpr_at_fpr is monotone in the FPR budget.
    #[test]
    fn tpr_at_fpr_is_monotone(
        scores in prop::collection::vec(0.0f64..1.0, 4..100),
        b1 in 0.0f64..1.0, b2 in 0.0f64..1.0
    ) {
        let mut truth: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % 2 == 0).collect();
        truth[0] = true;
        truth[1] = false;
        let roc = RocCurve::from_scores(&scores, &truth).unwrap();
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        prop_assert!(roc.tpr_at_fpr(lo) <= roc.tpr_at_fpr(hi) + 1e-12);
    }

    /// Confusion-matrix marginals always reconcile, and accuracy equals
    /// the weighted diagonal.
    #[test]
    fn confusion_marginals_reconcile(
        observations in prop::collection::vec((0usize..4, 0usize..4), 1..300)
    ) {
        let names: Vec<String> = (0..4).map(|i| format!("c{i}")).collect();
        let mut cm = ConfusionMatrix::new(names);
        for &(t, p) in &observations {
            cm.record(t, p).unwrap();
        }
        prop_assert_eq!(cm.total() as usize, observations.len());
        let row_sum: u64 = (0..4).map(|c| cm.truth_total(c)).sum();
        let col_sum: u64 = (0..4).map(|c| cm.predicted_total(c)).sum();
        prop_assert_eq!(row_sum, cm.total());
        prop_assert_eq!(col_sum, cm.total());
        let diag: u64 = (0..4).map(|i| cm.count(i, i)).sum();
        prop_assert!((cm.accuracy() - diag as f64 / cm.total() as f64).abs() < 1e-12);
        for c in 0..4 {
            prop_assert!((0.0..=1.0).contains(&cm.recall(c)));
            prop_assert!((0.0..=1.0).contains(&cm.precision(c)));
            prop_assert!((0.0..=1.0).contains(&cm.f1(c)));
        }
        prop_assert!((0.0..=1.0).contains(&cm.macro_recall()));
    }

    /// A perfect classifier has accuracy, macro recall and macro F1 of 1.
    #[test]
    fn perfect_classifier_metrics(truths in prop::collection::vec(0usize..3, 1..100)) {
        let names: Vec<String> = (0..3).map(|i| format!("c{i}")).collect();
        let mut cm = ConfusionMatrix::new(names);
        for &t in &truths {
            cm.record(t, t).unwrap();
        }
        prop_assert_eq!(cm.accuracy(), 1.0);
        prop_assert_eq!(cm.macro_recall(), 1.0);
        prop_assert_eq!(cm.macro_f1(), 1.0);
    }
}
