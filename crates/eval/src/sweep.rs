//! Parameter grids for sensitivity experiments.

use serde::{Deserialize, Serialize};

use crate::EvalError;

/// One cell of a 2-D parameter sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// First parameter value (e.g. τ₁).
    pub a: f64,
    /// Second parameter value (e.g. τ₂).
    pub b: f64,
    /// The measured outcome.
    pub value: f64,
}

/// A filled 2-D sweep grid (e.g. accuracy over τ₁ × τ₂).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    a_values: Vec<f64>,
    b_values: Vec<f64>,
    cells: Vec<SweepCell>,
}

impl SweepGrid {
    /// Runs `f` over the cartesian product `a_values × b_values`.
    ///
    /// # Errors
    ///
    /// [`EvalError::EmptyInput`] when either axis is empty; errors from `f`
    /// propagate.
    pub fn run<E, F>(a_values: &[f64], b_values: &[f64], mut f: F) -> Result<Self, E>
    where
        E: From<EvalError>,
        F: FnMut(f64, f64) -> Result<f64, E>,
    {
        if a_values.is_empty() || b_values.is_empty() {
            return Err(EvalError::EmptyInput.into());
        }
        let mut cells = Vec::with_capacity(a_values.len() * b_values.len());
        for &a in a_values {
            for &b in b_values {
                cells.push(SweepCell {
                    a,
                    b,
                    value: f(a, b)?,
                });
            }
        }
        Ok(SweepGrid {
            a_values: a_values.to_vec(),
            b_values: b_values.to_vec(),
            cells,
        })
    }

    /// [`SweepGrid::run`] with the cells evaluated concurrently (under the
    /// `rayon` feature; sequential otherwise). `f` must therefore be
    /// `Fn + Sync` rather than `FnMut`. Cell order in the result is
    /// identical to the sequential version.
    ///
    /// # Errors
    ///
    /// [`EvalError::EmptyInput`] when either axis is empty; the first
    /// failing cell's error (in row-major order) propagates.
    pub fn run_par<E, F>(a_values: &[f64], b_values: &[f64], f: F) -> Result<Self, E>
    where
        E: From<EvalError> + Send,
        F: Fn(f64, f64) -> Result<f64, E> + Sync,
    {
        if a_values.is_empty() || b_values.is_empty() {
            return Err(EvalError::EmptyInput.into());
        }
        let pairs: Vec<(f64, f64)> = a_values
            .iter()
            .flat_map(|&a| b_values.iter().map(move |&b| (a, b)))
            .collect();
        let results = mathkit::parallel::par_map(&pairs, |&(a, b)| f(a, b));
        let mut cells = Vec::with_capacity(pairs.len());
        for ((a, b), value) in pairs.into_iter().zip(results) {
            cells.push(SweepCell {
                a,
                b,
                value: value?,
            });
        }
        Ok(SweepGrid {
            a_values: a_values.to_vec(),
            b_values: b_values.to_vec(),
            cells,
        })
    }

    /// Values of the first axis.
    pub fn a_values(&self) -> &[f64] {
        &self.a_values
    }

    /// Values of the second axis.
    pub fn b_values(&self) -> &[f64] {
        &self.b_values
    }

    /// All cells in row-major (`a` outer, `b` inner) order.
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// The measured value at `(a_idx, b_idx)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn value_at(&self, a_idx: usize, b_idx: usize) -> f64 {
        assert!(a_idx < self.a_values.len() && b_idx < self.b_values.len());
        self.cells[a_idx * self.b_values.len() + b_idx].value
    }

    /// The cell with the maximum value.
    pub fn best(&self) -> SweepCell {
        *self
            .cells
            .iter()
            .max_by(|x, y| x.value.partial_cmp(&y.value).expect("finite values"))
            .expect("grids are non-empty by construction")
    }

    /// Renders the grid as an aligned text matrix (rows = `a`, columns =
    /// `b`); the top-left header cell names both axes.
    pub fn render(&self, a_name: &str, b_name: &str) -> String {
        let mut headers: Vec<String> = vec![format!("{a_name}\\{b_name}")];
        headers.extend(self.b_values.iter().map(|b| crate::report::cell(*b)));
        let mut table = crate::report::Table::new(headers);
        for (i, &a) in self.a_values.iter().enumerate() {
            let mut row = vec![crate::report::cell(a)];
            for j in 0..self.b_values.len() {
                row.push(crate::report::cell(self.value_at(i, j)));
            }
            table.add_row(row);
        }
        table.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SweepGrid {
        SweepGrid::run::<EvalError, _>(&[1.0, 2.0], &[10.0, 20.0, 30.0], |a, b| Ok(a * b)).unwrap()
    }

    #[test]
    fn runs_cartesian_product() {
        let g = grid();
        assert_eq!(g.cells().len(), 6);
        assert_eq!(g.value_at(0, 0), 10.0);
        assert_eq!(g.value_at(1, 2), 60.0);
        assert_eq!(g.a_values(), &[1.0, 2.0]);
        assert_eq!(g.b_values(), &[10.0, 20.0, 30.0]);
    }

    #[test]
    fn best_finds_maximum() {
        let g = grid();
        let best = g.best();
        assert_eq!(best.value, 60.0);
        assert_eq!((best.a, best.b), (2.0, 30.0));
    }

    #[test]
    fn empty_axes_error() {
        let r = SweepGrid::run::<EvalError, _>(&[], &[1.0], |_, _| Ok(0.0));
        assert_eq!(r.unwrap_err(), EvalError::EmptyInput);
        let r = SweepGrid::run::<EvalError, _>(&[1.0], &[], |_, _| Ok(0.0));
        assert!(r.is_err());
    }

    #[test]
    fn errors_from_the_closure_propagate() {
        let r = SweepGrid::run::<EvalError, _>(&[1.0], &[1.0], |_, _| {
            Err(EvalError::InvalidParameter {
                name: "x",
                reason: "boom",
            })
        });
        assert!(matches!(r, Err(EvalError::InvalidParameter { .. })));
    }

    #[test]
    fn run_par_matches_sequential_run() {
        let seq = grid();
        let par =
            SweepGrid::run_par::<EvalError, _>(&[1.0, 2.0], &[10.0, 20.0, 30.0], |a, b| Ok(a * b))
                .unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn run_par_propagates_errors_and_validates() {
        let r = SweepGrid::run_par::<EvalError, _>(&[], &[1.0], |_, _| Ok(0.0));
        assert_eq!(r.unwrap_err(), EvalError::EmptyInput);
        let r = SweepGrid::run_par::<EvalError, _>(&[1.0], &[1.0], |_, _| {
            Err(EvalError::InvalidParameter {
                name: "x",
                reason: "boom",
            })
        });
        assert!(matches!(r, Err(EvalError::InvalidParameter { .. })));
    }

    #[test]
    fn render_contains_all_values() {
        let g = grid();
        let text = g.render("tau1", "tau2");
        assert!(text.contains("tau1\\tau2"));
        assert!(text.contains("60"));
        assert!(text.contains("10"));
    }

    #[test]
    fn serde_roundtrip() {
        let g = grid();
        let json = serde_json::to_string(&g).unwrap();
        let back: SweepGrid = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}
