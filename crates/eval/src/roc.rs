//! ROC curves and AUC from raw anomaly scores.

use serde::{Deserialize, Serialize};

use crate::EvalError;

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Score threshold (a record is flagged when `score > threshold`).
    pub threshold: f64,
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate (detection rate) at this threshold.
    pub tpr: f64,
}

/// A ROC curve computed by sweeping the decision threshold over all
/// distinct scores.
///
/// # Example
///
/// ```
/// use evalkit::RocCurve;
///
/// # fn main() -> Result<(), evalkit::EvalError> {
/// // Attacks score high, normals low — a perfect detector.
/// let scores = [0.1, 0.2, 0.9, 0.8];
/// let truth = [false, false, true, true];
/// let roc = RocCurve::from_scores(&scores, &truth)?;
/// assert!((roc.auc() - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    points: Vec<RocPoint>,
    auc: f64,
}

impl RocCurve {
    /// Builds the curve from anomaly scores (higher = more anomalous) and
    /// ground truth (`true` = attack).
    ///
    /// # Errors
    ///
    /// [`EvalError::LengthMismatch`] on unequal lengths;
    /// [`EvalError::EmptyInput`] on empty input;
    /// [`EvalError::InvalidParameter`] when either class is absent (the
    /// curve is undefined without both positives and negatives) or a score
    /// is NaN.
    pub fn from_scores(scores: &[f64], truth: &[bool]) -> Result<Self, EvalError> {
        if scores.len() != truth.len() {
            return Err(EvalError::LengthMismatch {
                left: scores.len(),
                right: truth.len(),
            });
        }
        if scores.is_empty() {
            return Err(EvalError::EmptyInput);
        }
        if scores.iter().any(|s| s.is_nan()) {
            return Err(EvalError::InvalidParameter {
                name: "scores",
                reason: "scores must not contain NaN",
            });
        }
        let positives = truth.iter().filter(|&&t| t).count();
        let negatives = truth.len() - positives;
        if positives == 0 || negatives == 0 {
            return Err(EvalError::InvalidParameter {
                name: "truth",
                reason: "ROC requires both positive and negative examples",
            });
        }

        // Sort by descending score; sweep thresholds between distinct
        // score values.
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("no NaN"));

        let mut points = Vec::with_capacity(scores.len() + 2);
        // Threshold above the maximum: nothing flagged. `f64::MAX` rather
        // than infinity so the curve serializes to JSON losslessly.
        points.push(RocPoint {
            threshold: f64::MAX,
            fpr: 0.0,
            tpr: 0.0,
        });
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut i = 0usize;
        while i < order.len() {
            let s = scores[order[i]];
            // Consume the whole tie group.
            while i < order.len() && scores[order[i]] == s {
                if truth[order[i]] {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push(RocPoint {
                // Flagging rule is `score > threshold`, so the operating
                // point after consuming group `s` corresponds to any
                // threshold just below `s`.
                threshold: s,
                fpr: fp as f64 / negatives as f64,
                tpr: tp as f64 / positives as f64,
            });
        }

        // Trapezoidal AUC over the swept points.
        let mut auc = 0.0;
        for pair in points.windows(2) {
            let dx = pair[1].fpr - pair[0].fpr;
            auc += dx * 0.5 * (pair[0].tpr + pair[1].tpr);
        }

        Ok(RocCurve {
            points,
            auc: auc.clamp(0.0, 1.0),
        })
    }

    /// The operating points, from `(0, 0)` to `(1, 1)`.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the curve.
    pub fn auc(&self) -> f64 {
        self.auc
    }

    /// The point with the highest Youden index (`tpr − fpr`) — a standard
    /// operating-point choice.
    pub fn best_youden(&self) -> RocPoint {
        *self
            .points
            .iter()
            .max_by(|a, b| {
                (a.tpr - a.fpr)
                    .partial_cmp(&(b.tpr - b.fpr))
                    .expect("finite rates")
            })
            .expect("curve has at least two points")
    }

    /// The detection rate achievable at (at most) the given
    /// false-positive rate.
    pub fn tpr_at_fpr(&self, max_fpr: f64) -> f64 {
        self.points
            .iter()
            .filter(|p| p.fpr <= max_fpr)
            .map(|p| p.tpr)
            .fold(0.0, f64::max)
    }

    /// Downsamples the curve to at most `n` evenly spaced points (always
    /// keeping the endpoints) — for plotting.
    pub fn sampled(&self, n: usize) -> Vec<RocPoint> {
        if n >= self.points.len() || n < 2 {
            return self.points.clone();
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let idx = i * (self.points.len() - 1) / (n - 1);
            out.push(self.points[idx]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detector_has_auc_one() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let truth = [true, true, false, false];
        let roc = RocCurve::from_scores(&scores, &truth).unwrap();
        assert!((roc.auc() - 1.0).abs() < 1e-12);
        assert_eq!(roc.tpr_at_fpr(0.0), 1.0);
    }

    #[test]
    fn inverted_detector_has_auc_zero() {
        let scores = [0.1, 0.2, 0.9, 0.8];
        let truth = [true, true, false, false];
        let roc = RocCurve::from_scores(&scores, &truth).unwrap();
        assert!(roc.auc() < 1e-12);
    }

    #[test]
    fn random_scores_give_auc_about_half() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let scores: Vec<f64> = (0..2000).map(|_| rng.gen()).collect();
        let truth: Vec<bool> = (0..2000).map(|_| rng.gen::<bool>()).collect();
        let roc = RocCurve::from_scores(&scores, &truth).unwrap();
        assert!((roc.auc() - 0.5).abs() < 0.05, "auc {}", roc.auc());
    }

    #[test]
    fn curve_is_monotone_and_anchored() {
        let scores = [0.3, 0.7, 0.4, 0.9, 0.1, 0.5];
        let truth = [false, true, false, true, false, true];
        let roc = RocCurve::from_scores(&scores, &truth).unwrap();
        let pts = roc.points();
        assert_eq!(pts[0].fpr, 0.0);
        assert_eq!(pts[0].tpr, 0.0);
        assert_eq!(pts[pts.len() - 1].fpr, 1.0);
        assert_eq!(pts[pts.len() - 1].tpr, 1.0);
        for pair in pts.windows(2) {
            assert!(pair[1].fpr >= pair[0].fpr);
            assert!(pair[1].tpr >= pair[0].tpr);
        }
    }

    #[test]
    fn ties_are_handled_as_one_group() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let truth = [true, false, true, false];
        let roc = RocCurve::from_scores(&scores, &truth).unwrap();
        // One jump from (0,0) to (1,1): AUC = 0.5.
        assert!((roc.auc() - 0.5).abs() < 1e-12);
        assert_eq!(roc.points().len(), 2);
    }

    #[test]
    fn youden_picks_the_knee() {
        let scores = [0.9, 0.8, 0.7, 0.3, 0.2, 0.1];
        let truth = [true, true, true, false, false, false];
        let roc = RocCurve::from_scores(&scores, &truth).unwrap();
        let best = roc.best_youden();
        assert_eq!(best.tpr, 1.0);
        assert_eq!(best.fpr, 0.0);
    }

    #[test]
    fn tpr_at_fpr_budget() {
        let scores = [0.9, 0.6, 0.5, 0.4];
        let truth = [true, false, true, false];
        let roc = RocCurve::from_scores(&scores, &truth).unwrap();
        // At FPR 0: only the 0.9 attack is caught.
        assert!((roc.tpr_at_fpr(0.0) - 0.5).abs() < 1e-12);
        // Allowing 50% FPR catches both.
        assert!((roc.tpr_at_fpr(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            RocCurve::from_scores(&[0.1], &[true, false]).unwrap_err(),
            EvalError::LengthMismatch { .. }
        ));
        assert_eq!(
            RocCurve::from_scores(&[], &[]).unwrap_err(),
            EvalError::EmptyInput
        );
        assert!(RocCurve::from_scores(&[0.5, 0.4], &[true, true]).is_err());
        assert!(RocCurve::from_scores(&[f64::NAN, 0.4], &[true, false]).is_err());
    }

    #[test]
    fn sampled_keeps_endpoints() {
        let scores: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let truth: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let roc = RocCurve::from_scores(&scores, &truth).unwrap();
        let sampled = roc.sampled(10);
        assert_eq!(sampled.len(), 10);
        assert_eq!(sampled[0].fpr, roc.points()[0].fpr);
        let last = roc.points().len() - 1;
        assert_eq!(sampled[9].tpr, roc.points()[last].tpr);
        // Degenerate n returns the full curve.
        assert_eq!(roc.sampled(1).len(), roc.points().len());
    }

    #[test]
    fn serde_roundtrip() {
        let scores = [0.9, 0.1, 0.5, 0.4];
        let truth = [true, false, true, false];
        let roc = RocCurve::from_scores(&scores, &truth).unwrap();
        let json = serde_json::to_string(&roc).unwrap();
        let back: RocCurve = serde_json::from_str(&json).unwrap();
        assert_eq!(back, roc);
    }
}
