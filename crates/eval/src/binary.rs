//! Binary detection metrics.
//!
//! Intrusion-detection papers report **detection rate** (recall on the
//! attack class) against **false-positive rate** (fraction of normal
//! traffic flagged). Both, plus the usual derived scores, are computed from
//! the four outcome counts accumulated here.

use serde::{Deserialize, Serialize};

/// The four binary outcome counts (`true` = attack/anomalous).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BinaryMetrics {
    /// Attacks flagged as attacks.
    pub true_positives: u64,
    /// Normal records flagged as attacks.
    pub false_positives: u64,
    /// Normal records passed as normal.
    pub true_negatives: u64,
    /// Attacks passed as normal.
    pub false_negatives: u64,
}

impl BinaryMetrics {
    /// Empty counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one `(truth, verdict)` pair.
    pub fn record(&mut self, truth: bool, verdict: bool) {
        match (truth, verdict) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Builds counts from an iterator of `(truth, verdict)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (bool, bool)>>(pairs: I) -> Self {
        let mut m = Self::new();
        for (truth, verdict) in pairs {
            m.record(truth, verdict);
        }
        m
    }

    /// Merges another set of counts into this one.
    pub fn merge(&mut self, other: &BinaryMetrics) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Detection rate (attack recall, TPR): `TP / (TP + FN)`; 0 when there
    /// were no attacks.
    pub fn detection_rate(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_negatives,
        )
    }

    /// False-positive rate: `FP / (FP + TN)`; 0 when there was no normal
    /// traffic.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(
            self.false_positives,
            self.false_positives + self.true_negatives,
        )
    }

    /// Precision: `TP / (TP + FP)`; 0 when nothing was flagged.
    pub fn precision(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_positives,
        )
    }

    /// Accuracy over all records.
    pub fn accuracy(&self) -> f64 {
        ratio(self.true_positives + self.true_negatives, self.total())
    }

    /// F1 score (harmonic mean of precision and detection rate).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.detection_rate();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Matthews correlation coefficient in `[−1, 1]`; 0 for degenerate
    /// denominators.
    pub fn mcc(&self) -> f64 {
        let tp = self.true_positives as f64;
        let fp = self.false_positives as f64;
        let tn = self.true_negatives as f64;
        let fnn = self.false_negatives as f64;
        let denom = ((tp + fp) * (tp + fnn) * (tn + fp) * (tn + fnn)).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            (tp * tn - fp * fnn) / denom
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BinaryMetrics {
        BinaryMetrics {
            true_positives: 80,
            false_negatives: 20,
            false_positives: 5,
            true_negatives: 95,
        }
    }

    #[test]
    fn rates_match_hand_computation() {
        let m = sample();
        assert!((m.detection_rate() - 0.8).abs() < 1e-12);
        assert!((m.false_positive_rate() - 0.05).abs() < 1e-12);
        assert!((m.precision() - 80.0 / 85.0).abs() < 1e-12);
        assert!((m.accuracy() - 175.0 / 200.0).abs() < 1e-12);
        assert_eq!(m.total(), 200);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let m = sample();
        let p = m.precision();
        let r = m.detection_rate();
        assert!((m.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn record_routes_all_four_outcomes() {
        let mut m = BinaryMetrics::new();
        m.record(true, true);
        m.record(true, false);
        m.record(false, true);
        m.record(false, false);
        assert_eq!(
            m,
            BinaryMetrics {
                true_positives: 1,
                false_negatives: 1,
                false_positives: 1,
                true_negatives: 1,
            }
        );
    }

    #[test]
    fn from_pairs_and_merge() {
        let a = BinaryMetrics::from_pairs([(true, true), (false, false)]);
        let b = BinaryMetrics::from_pairs([(true, false), (false, true)]);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.total(), 4);
        assert_eq!(merged.true_positives, 1);
        assert_eq!(merged.false_negatives, 1);
    }

    #[test]
    fn degenerate_denominators_yield_zero() {
        let empty = BinaryMetrics::new();
        assert_eq!(empty.detection_rate(), 0.0);
        assert_eq!(empty.false_positive_rate(), 0.0);
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.f1(), 0.0);
        assert_eq!(empty.mcc(), 0.0);
    }

    #[test]
    fn mcc_extremes() {
        let perfect = BinaryMetrics {
            true_positives: 50,
            true_negatives: 50,
            false_positives: 0,
            false_negatives: 0,
        };
        assert!((perfect.mcc() - 1.0).abs() < 1e-12);
        let inverted = BinaryMetrics {
            true_positives: 0,
            true_negatives: 0,
            false_positives: 50,
            false_negatives: 50,
        };
        assert!((inverted.mcc() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: BinaryMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
