//! Plain-text rendering: aligned tables, ASCII histograms and scatter
//! charts. The `repro` binary uses these to print paper-style tables and
//! figures to stdout (and the same strings are written into
//! `EXPERIMENTS.md`).

/// An aligned plain-text table.
///
/// # Example
///
/// ```
/// use evalkit::report::Table;
///
/// let mut t = Table::new(vec!["detector", "DR", "FPR"]);
/// t.add_row(vec!["ghsom".into(), "0.97".into(), "0.02".into()]);
/// t.add_row(vec!["k-means".into(), "0.91".into(), "0.05".into()]);
/// let text = t.to_string();
/// assert!(text.contains("ghsom"));
/// assert!(text.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows are
    /// truncated to the column count.
    pub fn add_row(&mut self, mut row: Vec<String>) {
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a GitHub-flavoured markdown version of the table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push('|');
        for h in &self.headers {
            out.push_str(&format!(" {h} |"));
        }
        out.push('\n');
        out.push('|');
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for cell in row {
                out.push_str(&format!(" {cell} |"));
            }
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "{:<width$}", h, width = widths[i])?;
            if i + 1 < cols {
                write!(f, "  ")?;
            }
        }
        writeln!(f)?;
        let rule_len: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(rule_len))?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "{:<width$}", cell, width = widths[i])?;
                if i + 1 < cols {
                    write!(f, "  ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats a float with 4 significant digits for table cells.
pub fn cell(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders a horizontal ASCII bar histogram of pre-binned counts.
///
/// `labels[i]` annotates `counts[i]`; bars are scaled to `max_width`
/// characters.
///
/// # Panics
///
/// Panics if `labels` and `counts` differ in length.
pub fn ascii_histogram(labels: &[String], counts: &[u64], max_width: usize) -> String {
    assert_eq!(labels.len(), counts.len(), "labels/counts length mismatch");
    let peak = counts.iter().copied().max().unwrap_or(0).max(1);
    let label_width = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, &count) in labels.iter().zip(counts) {
        let bar_len = (count as f64 / peak as f64 * max_width as f64).round() as usize;
        out.push_str(&format!(
            "{label:>label_width$} |{} {count}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Renders an ASCII scatter chart of `(x, y)` points with both axes in
/// `[0, 1]` — sized for ROC curves.
pub fn ascii_chart(points: &[(f64, f64)], width: usize, height: usize) -> String {
    let width = width.max(2);
    let height = height.max(2);
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y) in points {
        let cx = ((x.clamp(0.0, 1.0)) * (width - 1) as f64).round() as usize;
        let cy = ((1.0 - y.clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
        grid[cy][cx] = '*';
    }
    let mut out = String::new();
    out.push_str(&format!("1.0 ┤{}\n", grid[0].iter().collect::<String>()));
    for row in grid.iter().take(height - 1).skip(1) {
        out.push_str(&format!("    │{}\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!(
        "0.0 └{}\n",
        grid[height - 1].iter().collect::<String>()
    ));
    out.push_str(&format!(
        "     0.0{}1.0\n",
        " ".repeat(width.saturating_sub(6))
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.add_row(vec!["a".into(), "1".into()]);
        t.add_row(vec!["long-name".into(), "2".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have the same "value" column offset.
        let col = lines[0].find("value").unwrap();
        assert!(lines[2].chars().nth(col).is_some());
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn table_pads_and_truncates_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["only-one".into()]);
        t.add_row(vec!["x".into(), "y".into(), "extra".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.to_string();
        assert!(!text.contains("extra"));
    }

    #[test]
    fn markdown_has_separator_row() {
        let mut t = Table::new(vec!["h1", "h2"]);
        t.add_row(vec!["a".into(), "b".into()]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| h1 | h2 |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| a | b |");
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    fn cell_formats_by_magnitude() {
        assert_eq!(cell(0.0), "0");
        assert_eq!(cell(0.12345), "0.1235");
        assert_eq!(cell(3.216159), "3.216");
        assert_eq!(cell(12345.6), "12346");
    }

    #[test]
    fn histogram_scales_to_peak() {
        let labels = vec!["a".to_string(), "bb".to_string()];
        let out = ascii_histogram(&labels, &[10, 5], 20);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        let hashes = |s: &str| s.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(lines[0]), 20);
        assert_eq!(hashes(lines[1]), 10);
        assert!(lines[0].ends_with("10"));
    }

    #[test]
    fn histogram_of_zeros_is_empty_bars() {
        let labels = vec!["x".to_string()];
        let out = ascii_histogram(&labels, &[0], 10);
        assert!(!out.contains('#'));
    }

    #[test]
    fn chart_plots_corners() {
        let out = ascii_chart(&[(0.0, 0.0), (1.0, 1.0)], 20, 10);
        let lines: Vec<&str> = out.lines().collect();
        // Top line carries the (1,1) star at the right edge.
        assert!(lines[0].trim_end().ends_with('*'));
        // Bottom data line carries the (0,0) star at the left edge.
        assert!(lines[lines.len() - 2].contains('*'));
    }

    #[test]
    fn chart_clamps_out_of_range() {
        // Should not panic.
        let out = ascii_chart(&[(-1.0, 2.0)], 10, 5);
        assert!(out.contains('*'));
    }
}
