//! Evaluation kit: the metrics and rendering behind every reproduced table
//! and figure.
//!
//! * [`binary`] — detection rate / false-positive rate / precision / F1 /
//!   MCC from binary verdicts ([`binary::BinaryMetrics`]).
//! * [`confusion`] — multi-class confusion matrices with per-class
//!   precision/recall and macro averages.
//! * [`roc`] — ROC curves and AUC from raw scores (threshold sweep).
//! * [`report`] — plain-text table and ASCII chart rendering for the
//!   `repro` binary's paper-style output.
//! * [`sweep`] — cartesian parameter grids for sensitivity experiments.
//! * [`crossval`] — seeded (stratified) k-fold index generation.
//!
//! # Example
//!
//! ```
//! use evalkit::binary::BinaryMetrics;
//!
//! let truth =   [true,  true,  false, false, true ];
//! let verdict = [true,  false, false, true,  true ];
//! let m = BinaryMetrics::from_pairs(truth.iter().copied().zip(verdict.iter().copied()));
//! assert_eq!(m.true_positives, 2);
//! assert_eq!(m.false_negatives, 1);
//! assert!((m.detection_rate() - 2.0 / 3.0).abs() < 1e-12);
//! assert!((m.false_positive_rate() - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod confusion;
pub mod crossval;
pub mod error;
pub mod report;
pub mod roc;
pub mod sweep;

pub use binary::BinaryMetrics;
pub use confusion::ConfusionMatrix;
pub use error::EvalError;
pub use roc::RocCurve;
