//! Cross-validation index generation.
//!
//! Fold assignment is separated from model fitting so any detector can be
//! cross-validated without the evaluation kit depending on model crates.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::EvalError;

/// One fold: indices held out for testing; everything else trains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Training indices.
    pub train: Vec<usize>,
    /// Held-out indices.
    pub test: Vec<usize>,
}

/// Seeded k-fold split of `n` items.
///
/// Every index appears in exactly one test fold; fold sizes differ by at
/// most one.
///
/// # Errors
///
/// [`EvalError::InvalidParameter`] when `k < 2` or `k > n`.
///
/// # Example
///
/// ```
/// use evalkit::crossval::kfold;
///
/// # fn main() -> Result<(), evalkit::EvalError> {
/// let folds = kfold(10, 5, 42)?;
/// assert_eq!(folds.len(), 5);
/// assert!(folds.iter().all(|f| f.test.len() == 2 && f.train.len() == 8));
/// # Ok(())
/// # }
/// ```
pub fn kfold(n: usize, k: usize, seed: u64) -> Result<Vec<Fold>, EvalError> {
    if k < 2 {
        return Err(EvalError::InvalidParameter {
            name: "k",
            reason: "must be at least 2",
        });
    }
    if k > n {
        return Err(EvalError::InvalidParameter {
            name: "k",
            reason: "must not exceed the item count",
        });
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        // Fold f takes every k-th item starting at f — balanced by
        // construction.
        let test: Vec<usize> = order.iter().copied().skip(f).step_by(k).collect();
        let test_set: std::collections::HashSet<usize> = test.iter().copied().collect();
        let train: Vec<usize> = (0..n).filter(|i| !test_set.contains(i)).collect();
        folds.push(Fold { train, test });
    }
    Ok(folds)
}

/// Stratified k-fold: class proportions are preserved per fold (classes
/// are given as one label index per item).
///
/// # Errors
///
/// [`EvalError::InvalidParameter`] as in [`kfold`];
/// [`EvalError::EmptyInput`] when `labels` is empty.
pub fn stratified_kfold(labels: &[usize], k: usize, seed: u64) -> Result<Vec<Fold>, EvalError> {
    if labels.is_empty() {
        return Err(EvalError::EmptyInput);
    }
    if k < 2 {
        return Err(EvalError::InvalidParameter {
            name: "k",
            reason: "must be at least 2",
        });
    }
    if k > labels.len() {
        return Err(EvalError::InvalidParameter {
            name: "k",
            reason: "must not exceed the item count",
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Group indices by class, shuffle within class, deal round-robin.
    let mut by_class: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, &c) in labels.iter().enumerate() {
        by_class.entry(c).or_default().push(i);
    }
    let mut test_sets: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut deal = 0usize;
    for (_, mut members) in by_class {
        members.shuffle(&mut rng);
        for idx in members {
            test_sets[deal % k].push(idx);
            deal += 1;
        }
    }
    let n = labels.len();
    let folds = test_sets
        .into_iter()
        .map(|test| {
            let test_set: std::collections::HashSet<usize> = test.iter().copied().collect();
            Fold {
                train: (0..n).filter(|i| !test_set.contains(i)).collect(),
                test,
            }
        })
        .collect();
    Ok(folds)
}

/// Evaluates `f` on every fold concurrently (under the `rayon` feature;
/// sequential otherwise), returning the per-fold results in fold order.
///
/// Fold model fits are independent, so this parallelizes whole
/// cross-validation runs without touching the fold assignment logic. `f`
/// receives the fold index and the fold.
///
/// # Errors
///
/// The first failing fold's error (in fold order) propagates.
pub fn map_folds<R, E, F>(folds: &[Fold], f: F) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(usize, &Fold) -> Result<R, E> + Sync,
{
    let indexed: Vec<(usize, &Fold)> = folds.iter().enumerate().collect();
    let results = mathkit::parallel::par_map(&indexed, |&(i, fold)| f(i, fold));
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kfold_partitions_exactly() {
        let folds = kfold(23, 4, 1).unwrap();
        assert_eq!(folds.len(), 4);
        let mut seen = [0usize; 23];
        for fold in &folds {
            assert_eq!(fold.train.len() + fold.test.len(), 23);
            for &i in &fold.test {
                seen[i] += 1;
            }
            // Train and test are disjoint.
            let train: std::collections::HashSet<_> = fold.train.iter().collect();
            assert!(fold.test.iter().all(|i| !train.contains(i)));
        }
        assert!(seen.iter().all(|&c| c == 1), "each index in one test fold");
    }

    #[test]
    fn fold_sizes_are_balanced() {
        let folds = kfold(10, 3, 2).unwrap();
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn kfold_is_deterministic() {
        assert_eq!(kfold(20, 4, 9).unwrap(), kfold(20, 4, 9).unwrap());
        assert_ne!(kfold(20, 4, 9).unwrap(), kfold(20, 4, 10).unwrap());
    }

    #[test]
    fn kfold_validates_parameters() {
        assert!(kfold(10, 1, 0).is_err());
        assert!(kfold(3, 4, 0).is_err());
        assert!(kfold(4, 4, 0).is_ok());
    }

    #[test]
    fn stratified_preserves_class_balance() {
        // 40 of class 0, 20 of class 1.
        let labels: Vec<usize> = (0..60).map(|i| usize::from(i % 3 == 0)).collect();
        let folds = stratified_kfold(&labels, 4, 3).unwrap();
        for fold in &folds {
            let ones = fold.test.iter().filter(|&&i| labels[i] == 1).count();
            let zeros = fold.test.len() - ones;
            // Per fold: ~5 of class 1, ~10 of class 0.
            assert!((4..=6).contains(&ones), "class-1 count {ones}");
            assert!((9..=11).contains(&zeros), "class-0 count {zeros}");
        }
    }

    #[test]
    fn stratified_partitions_exactly() {
        let labels: Vec<usize> = (0..31).map(|i| i % 3).collect();
        let folds = stratified_kfold(&labels, 5, 7).unwrap();
        let mut seen = vec![0usize; 31];
        for fold in &folds {
            for &i in &fold.test {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn stratified_validates_inputs() {
        assert!(stratified_kfold(&[], 2, 0).is_err());
        assert!(stratified_kfold(&[0, 1], 1, 0).is_err());
        assert!(stratified_kfold(&[0, 1], 3, 0).is_err());
    }
}
