//! Error type for evaluation routines.

use std::fmt;

/// Errors produced while computing metrics.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EvalError {
    /// Paired inputs had different lengths.
    LengthMismatch {
        /// Length of the first sequence.
        left: usize,
        /// Length of the second sequence.
        right: usize,
    },
    /// A metric that needs at least one observation received none.
    EmptyInput,
    /// A parameter was out of its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Violated constraint.
        reason: &'static str,
    },
    /// A class index exceeded the configured class count.
    ClassOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of classes configured.
        classes: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::LengthMismatch { left, right } => {
                write!(f, "paired inputs differ in length: {left} vs {right}")
            }
            EvalError::EmptyInput => write!(f, "metric requires at least one observation"),
            EvalError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            EvalError::ClassOutOfRange { index, classes } => {
                write!(f, "class index {index} out of range for {classes} classes")
            }
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EvalError::LengthMismatch { left: 3, right: 5 }.to_string(),
            "paired inputs differ in length: 3 vs 5"
        );
        assert_eq!(
            EvalError::ClassOutOfRange {
                index: 7,
                classes: 5
            }
            .to_string(),
            "class index 7 out of range for 5 classes"
        );
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<EvalError>();
    }
}
