//! Multi-class confusion matrices.

use serde::{Deserialize, Serialize};

use crate::EvalError;

/// A `classes × classes` confusion matrix; rows are truth, columns are
/// predictions.
///
/// # Example
///
/// ```
/// use evalkit::ConfusionMatrix;
///
/// # fn main() -> Result<(), evalkit::EvalError> {
/// let mut cm = ConfusionMatrix::new(vec!["normal".into(), "dos".into()]);
/// cm.record(0, 0)?; // normal predicted normal
/// cm.record(1, 1)?; // dos predicted dos
/// cm.record(1, 0)?; // dos missed
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// assert!((cm.recall(1) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    class_names: Vec<String>,
    /// Row-major `counts[truth * n + pred]`.
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for the named classes.
    ///
    /// # Panics
    ///
    /// Panics if `class_names` is empty.
    pub fn new(class_names: Vec<String>) -> Self {
        assert!(!class_names.is_empty(), "at least one class is required");
        let n = class_names.len();
        ConfusionMatrix {
            class_names,
            counts: vec![0; n * n],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.class_names.len()
    }

    /// Class names in index order.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Records one `(truth, prediction)` observation.
    ///
    /// # Errors
    ///
    /// [`EvalError::ClassOutOfRange`] for indices `>= classes()`.
    pub fn record(&mut self, truth: usize, pred: usize) -> Result<(), EvalError> {
        let n = self.classes();
        if truth >= n {
            return Err(EvalError::ClassOutOfRange {
                index: truth,
                classes: n,
            });
        }
        if pred >= n {
            return Err(EvalError::ClassOutOfRange {
                index: pred,
                classes: n,
            });
        }
        self.counts[truth * n + pred] += 1;
        Ok(())
    }

    /// The count at `(truth, pred)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn count(&self, truth: usize, pred: usize) -> u64 {
        let n = self.classes();
        assert!(truth < n && pred < n, "class index out of bounds");
        self.counts[truth * n + pred]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Row sum: observations whose truth is `class`.
    pub fn truth_total(&self, class: usize) -> u64 {
        let n = self.classes();
        (0..n).map(|p| self.count(class, p)).sum()
    }

    /// Column sum: observations predicted as `class`.
    pub fn predicted_total(&self, class: usize) -> u64 {
        let n = self.classes();
        (0..n).map(|t| self.count(t, class)).sum()
    }

    /// Overall accuracy; 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let n = self.classes();
        let correct: u64 = (0..n).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Recall of `class` (`diag / row sum`); 0 when the class never occurs.
    pub fn recall(&self, class: usize) -> f64 {
        let denom = self.truth_total(class);
        if denom == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / denom as f64
        }
    }

    /// Precision of `class` (`diag / column sum`); 0 when never predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let denom = self.predicted_total(class);
        if denom == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / denom as f64
        }
    }

    /// F1 of `class`.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean recall over classes that occur.
    pub fn macro_recall(&self) -> f64 {
        let live: Vec<usize> = (0..self.classes())
            .filter(|&c| self.truth_total(c) > 0)
            .collect();
        if live.is_empty() {
            return 0.0;
        }
        live.iter().map(|&c| self.recall(c)).sum::<f64>() / live.len() as f64
    }

    /// Unweighted mean F1 over classes that occur.
    pub fn macro_f1(&self) -> f64 {
        let live: Vec<usize> = (0..self.classes())
            .filter(|&c| self.truth_total(c) > 0)
            .collect();
        if live.is_empty() {
            return 0.0;
        }
        live.iter().map(|&c| self.f1(c)).sum::<f64>() / live.len() as f64
    }

    /// Merges another matrix with identical class names.
    ///
    /// # Errors
    ///
    /// [`EvalError::InvalidParameter`] when class name lists differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) -> Result<(), EvalError> {
        if self.class_names != other.class_names {
            return Err(EvalError::InvalidParameter {
                name: "other",
                reason: "confusion matrices have different class sets",
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        Ok(())
    }
}

impl std::fmt::Display for ConfusionMatrix {
    /// Renders an aligned table with truth rows and prediction columns.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.classes();
        let name_width = self
            .class_names
            .iter()
            .map(|s| s.len())
            .max()
            .unwrap_or(4)
            .max("truth\\pred".len());
        let cell_width = 9usize;
        write!(f, "{:>name_width$}", "truth\\pred")?;
        for name in &self.class_names {
            write!(f, " {name:>cell_width$}")?;
        }
        writeln!(f)?;
        for t in 0..n {
            write!(f, "{:>name_width$}", self.class_names[t])?;
            for p in 0..n {
                write!(f, " {:>cell_width$}", self.count(t, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["normal".into(), "dos".into(), "probe".into()]
    }

    fn sample() -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(names());
        // truth normal: 8 correct, 2 as dos
        for _ in 0..8 {
            cm.record(0, 0).unwrap();
        }
        cm.record(0, 1).unwrap();
        cm.record(0, 1).unwrap();
        // truth dos: 5 correct
        for _ in 0..5 {
            cm.record(1, 1).unwrap();
        }
        // truth probe: 3 correct, 1 as normal
        for _ in 0..3 {
            cm.record(2, 2).unwrap();
        }
        cm.record(2, 0).unwrap();
        cm
    }

    #[test]
    fn totals_and_counts() {
        let cm = sample();
        assert_eq!(cm.total(), 19);
        assert_eq!(cm.count(0, 1), 2);
        assert_eq!(cm.truth_total(0), 10);
        assert_eq!(cm.predicted_total(1), 7);
        assert_eq!(cm.classes(), 3);
    }

    #[test]
    fn accuracy_recall_precision() {
        let cm = sample();
        assert!((cm.accuracy() - 16.0 / 19.0).abs() < 1e-12);
        assert!((cm.recall(0) - 0.8).abs() < 1e-12);
        assert!((cm.recall(2) - 0.75).abs() < 1e-12);
        assert!((cm.precision(1) - 5.0 / 7.0).abs() < 1e-12);
        assert!((cm.precision(0) - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn macro_metrics_average_live_classes() {
        let cm = sample();
        let expected = (cm.recall(0) + cm.recall(1) + cm.recall(2)) / 3.0;
        assert!((cm.macro_recall() - expected).abs() < 1e-12);
        assert!(cm.macro_f1() > 0.0);
    }

    #[test]
    fn macro_skips_absent_classes() {
        let mut cm = ConfusionMatrix::new(names());
        cm.record(0, 0).unwrap();
        // Classes 1, 2 never occur in truth; macro recall is over class 0.
        assert_eq!(cm.macro_recall(), 1.0);
    }

    #[test]
    fn record_validates_indices() {
        let mut cm = ConfusionMatrix::new(names());
        assert!(cm.record(3, 0).is_err());
        assert!(cm.record(0, 3).is_err());
    }

    #[test]
    fn merge_requires_same_classes() {
        let mut a = sample();
        let b = sample();
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 38);
        let other = ConfusionMatrix::new(vec!["x".into()]);
        assert!(a.merge(&other).is_err());
    }

    #[test]
    fn display_renders_all_cells() {
        let cm = sample();
        let text = cm.to_string();
        assert!(text.contains("truth\\pred"));
        assert!(text.contains("normal"));
        assert!(text.contains("probe"));
        // Count 8 must appear.
        assert!(text.contains('8'));
    }

    #[test]
    fn empty_matrix_metrics_are_zero() {
        let cm = ConfusionMatrix::new(names());
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.macro_recall(), 0.0);
        assert_eq!(cm.recall(0), 0.0);
        assert_eq!(cm.precision(0), 0.0);
        assert_eq!(cm.f1(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_panics() {
        let _ = ConfusionMatrix::new(vec![]);
    }

    #[test]
    fn serde_roundtrip() {
        let cm = sample();
        let json = serde_json::to_string(&cm).unwrap();
        let back: ConfusionMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cm);
    }
}
