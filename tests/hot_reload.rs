//! Acceptance tests of the hot-reload subsystem (PR 5):
//!
//! * the **full loop** — deploy tenant A from a spool, stream past
//!   warmup, drop a retrained bundle into the spool, and have the
//!   watcher swap it in while concurrent `score_record` traffic never
//!   blocks or errors, with the pre-swap adaptive baseline carried onto
//!   the new engine (tracked count and mean survive, not reset);
//! * a **corrupt bundle** dropped into the spool leaves the old engine
//!   serving and surfaces a typed error;
//! * **mid-warmup swaps continue warmup** instead of restarting it;
//! * the **`StreamState` export/import roundtrip** is bit-identical on
//!   the live mean/σ across random streams (proptest), including
//!   through the optional `STREAM` bundle section.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use ghsom_suite::prelude::*;

fn small_engine(seed: u64, n_train: usize, warmup: u64) -> (Engine, Dataset) {
    let (train, test) = traffic::synth::kdd_train_test(n_train, 600, seed).unwrap();
    let config = EngineConfig::default()
        .with_ghsom(GhsomConfig::default().with_epochs(2, 2).with_seed(seed))
        .with_stream(4.0, warmup);
    (Engine::fit(&config, &train).unwrap(), test)
}

fn temp_spool(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ghsom_hot_reload_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Atomic publish: temp name + rename, the workflow the watcher expects.
fn publish(spool: &std::path::Path, tenant: &str, bytes: &[u8]) {
    let tmp = spool.join(format!(".{tenant}.tmp"));
    std::fs::write(&tmp, bytes).unwrap();
    std::fs::rename(&tmp, spool.join(format!("{tenant}.bundle"))).unwrap();
}

/// The registry acceptance loop of ISSUE 5: spool-deploy tenant A,
/// stream until past warmup, drop a retrained bundle in the spool, and
/// prove the watcher swap (a) never blocks or errors concurrent
/// `score_record` traffic, (b) carries the pre-swap baseline onto the
/// new engine, and (c) a corrupt bundle leaves the old engine serving
/// with a typed error.
#[test]
fn watcher_swap_carries_baseline_under_concurrent_traffic() {
    const WARMUP: u64 = 50;
    let spool = temp_spool("acceptance");
    let registry = Arc::new(EngineRegistry::new());
    let mut watcher = SpoolWatcher::new(Arc::clone(&registry), &spool);

    // Deploy tenant A from the spool.
    let (engine_a, test) = small_engine(1, 500, WARMUP);
    publish(&spool, "prod", &engine_a.to_bytes());
    let events = watcher.poll_once().unwrap();
    assert!(
        matches!(&events[..], [SpoolEvent::Deployed { tenant, .. }] if tenant == "prod"),
        "{events:?}"
    );

    // Stream records until the adaptive threshold is warm.
    let records = Arc::new(test.records().to_vec());
    while registry.get("prod").unwrap().stream_stats().tracked <= WARMUP {
        registry.observe_records("prod", &records[..256]).unwrap();
    }
    let before = registry.get("prod").unwrap();
    let baseline = before.stream_state();
    assert!(baseline.tracked > WARMUP);

    // Concurrent scoring traffic: every call must succeed, before,
    // during and after the swap.
    let stop = Arc::new(AtomicBool::new(false));
    let scored = Arc::new(AtomicU64::new(0));
    let scorers: Vec<_> = (0..3)
        .map(|t| {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let scored = Arc::clone(&scored);
            let records = Arc::clone(&records);
            std::thread::spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    registry
                        .score_record("prod", &records[i % records.len()])
                        .expect("scoring must never fail across a hot swap");
                    scored.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            })
        })
        .collect();

    // Drop a retrained bundle into the spool; the watcher swaps it in.
    let (retrained, _) = small_engine(2, 500, WARMUP);
    publish(&spool, "prod", &retrained.to_bytes());
    let swap_events = watcher.poll_once().unwrap();
    match &swap_events[..] {
        [SpoolEvent::Swapped {
            tenant, carried, ..
        }] => {
            assert_eq!(tenant, "prod");
            assert_eq!(carried.tracked, baseline.tracked);
        }
        other => panic!("expected a swap, got {other:?}"),
    }

    // Scoring kept making progress across the swap (non-blocking), and
    // the swap is observable.
    let after = registry.get("prod").unwrap();
    assert!(!Arc::ptr_eq(&before, &after), "swap must be observable");
    let progress_mark = scored.load(Ordering::Relaxed);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while scored.load(Ordering::Relaxed) <= progress_mark {
        assert!(
            std::time::Instant::now() < deadline,
            "scoring stalled across the hot swap"
        );
        std::thread::yield_now();
    }

    // The pre-swap baseline was carried: tracked count and mean are the
    // old engine's (bit-identical), not a cold start. (`score_record`
    // traffic is stateless, so the transplanted state is still exactly
    // the exported one.)
    let carried = after.stream_state();
    assert_eq!(
        carried.tracked, baseline.tracked,
        "tracked count was reset by the swap"
    );
    assert_eq!(
        carried.mean.to_bits(),
        baseline.mean.to_bits(),
        "baseline mean was not carried bit-identically"
    );
    assert_eq!(carried.seen, baseline.seen);
    // And the threshold is warm: the very next streamed record gets a
    // finite adaptive threshold instead of re-entering warmup.
    let v = after.observe(&records[0]).unwrap();
    assert!(
        v.threshold.is_finite(),
        "adaptive threshold cold-started after the swap"
    );

    // A corrupt bundle must never evict the serving engine.
    let mut corrupt = retrained.to_bytes();
    let at = corrupt.len() - 13;
    corrupt[at] ^= 0x08;
    publish(&spool, "prod", &corrupt);
    let events = watcher.poll_once().unwrap();
    match &events[..] {
        [SpoolEvent::Rejected { error, .. }] => {
            assert!(
                matches!(error, ServeError::ChecksumMismatch { .. }),
                "expected a checksum rejection, got {error:?}"
            );
        }
        other => panic!("expected a rejection, got {other:?}"),
    }
    assert!(
        Arc::ptr_eq(&after, &registry.get("prod").unwrap()),
        "a corrupt bundle evicted the serving engine"
    );

    stop.store(true, Ordering::Relaxed);
    for h in scorers {
        h.join().unwrap();
    }
    assert!(scored.load(Ordering::Relaxed) > 0);
    std::fs::remove_dir_all(&spool).ok();
}

/// A swap that lands mid-warmup must continue the warmup from where the
/// old engine was — not restart it, not skip it.
#[test]
fn mid_warmup_swap_continues_warmup() {
    const WARMUP: u64 = 60;
    let registry = EngineRegistry::new();
    let (engine, test) = small_engine(5, 500, WARMUP);
    registry.deploy("t", engine);

    // Stream only part of the warmup.
    registry
        .observe_records("t", &test.records()[..30])
        .unwrap();
    let partial = registry.get("t").unwrap().stream_state();
    assert!(partial.tracked < WARMUP, "fixture must still be warming up");

    let (fresh, _) = small_engine(6, 500, WARMUP);
    registry.swap_carrying("t", fresh).unwrap();
    let engine = registry.get("t").unwrap();
    assert_eq!(engine.stream_state().tracked, partial.tracked);

    // Keep streaming: the threshold must adapt once the *combined*
    // tracked count crosses the warmup — i.e. warmup continued. Track
    // the verdicts one by one so we see the transition.
    let mut became_adaptive = false;
    for rec in test.records()[30..].iter() {
        let stats_before = engine.stream_stats();
        let v = engine.observe(rec).unwrap();
        if v.threshold.is_finite() {
            assert!(
                stats_before.tracked >= WARMUP,
                "threshold adapted before warmup completed (tracked {})",
                stats_before.tracked
            );
            became_adaptive = true;
            break;
        }
        // Still warming up: the combined count must keep growing from
        // the transplanted baseline, proving warmup was not restarted.
        assert!(engine.stream_stats().tracked >= partial.tracked);
    }
    assert!(became_adaptive, "warmup never completed after the swap");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// StreamState export → import roundtrips bit-identically on the
    /// live mean/σ for arbitrary observation streams, both directly and
    /// through the optional STREAM bundle section.
    #[test]
    fn stream_state_roundtrip_is_bit_identical(
        n_obs in 1usize..400,
        warmup in 1u64..100,
        seed in 0u64..1_000,
    ) {
        let (train, test) = traffic::synth::kdd_train_test(300, 400, seed).unwrap();
        let config = EngineConfig::default()
            .with_ghsom(GhsomConfig::default().with_epochs(1, 1).with_seed(seed))
            .with_stream(3.0, warmup);
        let engine = Engine::fit(&config, &train).unwrap();
        engine.observe_records(&test.records()[..n_obs]).unwrap();
        let state = engine.stream_state();

        // Direct transplant.
        let (fresh, _) = {
            let config = config.clone();
            let (train2, _) = traffic::synth::kdd_train_test(300, 10, seed ^ 0xA5).unwrap();
            (Engine::fit(&config, &train2).unwrap(), ())
        };
        fresh.restore_stream(state).unwrap();
        prop_assert_eq!(fresh.stream_state(), state);
        let a = fresh.stream_stats();
        let b = engine.stream_stats();
        prop_assert_eq!(a.score_mean.to_bits(), b.score_mean.to_bits());
        prop_assert_eq!(a.score_std.to_bits(), b.score_std.to_bits());
        prop_assert_eq!(a.tracked, b.tracked);

        // Through the STREAM section.
        let resumed = Engine::from_bytes(&engine.to_bytes_with_stream()).unwrap();
        prop_assert_eq!(resumed.stream_state(), state);
        // And the continuation is bit-identical: same verdicts, same
        // evolving threshold on the records after the cut.
        for rec in test.records()[n_obs..].iter().take(40) {
            let x = engine.observe(rec).unwrap();
            let y = resumed.observe(rec).unwrap();
            prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
            prop_assert_eq!(x.threshold.to_bits(), y.threshold.to_bits());
            prop_assert_eq!(x.anomalous, y.anomalous);
        }
    }
}

/// The acceptance loop of ISSUE 6's sharding criterion: the hot-reload
/// subsystem works **unchanged** through the sharded serving plane. A
/// daemon that re-resolves a `ShardedEngine` view per batch
/// (`EngineRegistry::sharded`) keeps serving across a `SpoolWatcher`
/// swap under concurrent sharded traffic, and the carried baseline
/// continues bit-identically through the sharded view — counters, mean,
/// and a warm (finite) adaptive threshold on the very next burst.
#[test]
fn watcher_swap_serves_sharded_traffic_with_carried_baseline() {
    const WARMUP: u64 = 40;
    const SHARDS: usize = 4;
    let spool = temp_spool("sharded");
    let registry = Arc::new(EngineRegistry::new());
    let mut watcher = SpoolWatcher::new(Arc::clone(&registry), &spool);

    let (engine_a, test) = small_engine(11, 500, WARMUP);
    publish(&spool, "prod", &engine_a.to_bytes());
    let events = watcher.poll_once().unwrap();
    assert!(
        matches!(&events[..], [SpoolEvent::Deployed { tenant, .. }] if tenant == "prod"),
        "{events:?}"
    );

    // Stream sharded bursts until the threshold is warm, re-resolving
    // the sharded view per batch exactly like a serving daemon.
    let records = Arc::new(test.records().to_vec());
    while registry.get("prod").unwrap().stream_stats().tracked <= WARMUP {
        registry
            .sharded("prod", SHARDS)
            .unwrap()
            .observe_records(&records[..256])
            .unwrap();
    }
    let baseline = registry.get("prod").unwrap().stream_state();
    assert!(baseline.tracked > WARMUP);

    // Concurrent *sharded* scoring traffic: every burst must succeed and
    // stay complete, before, during and after the swap.
    let stop = Arc::new(AtomicBool::new(false));
    let scored = Arc::new(AtomicU64::new(0));
    let scorers: Vec<_> = (0..2)
        .map(|_| {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let scored = Arc::clone(&scored);
            let records = Arc::clone(&records);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let verdicts = registry
                        .sharded("prod", SHARDS)
                        .expect("tenant must stay resolvable across a hot swap")
                        .score_records(&records[..200])
                        .expect("sharded scoring must never fail across a hot swap");
                    assert_eq!(verdicts.len(), 200);
                    scored.fetch_add(verdicts.len() as u64, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Retrain and swap through the spool while sharded traffic flows.
    let (retrained, _) = small_engine(12, 500, WARMUP);
    publish(&spool, "prod", &retrained.to_bytes());
    let swap_events = watcher.poll_once().unwrap();
    match &swap_events[..] {
        [SpoolEvent::Swapped {
            tenant, carried, ..
        }] => {
            assert_eq!(tenant, "prod");
            assert_eq!(carried.tracked, baseline.tracked);
        }
        other => panic!("expected a swap, got {other:?}"),
    }

    // Sharded scoring kept making progress across the swap.
    let progress_mark = scored.load(Ordering::Relaxed);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while scored.load(Ordering::Relaxed) <= progress_mark {
        assert!(
            std::time::Instant::now() < deadline,
            "sharded scoring stalled across the hot swap"
        );
        std::thread::yield_now();
    }

    // The sharded view over the swapped engine serves the carried
    // baseline bit-identically, and the very next sharded burst streams
    // with a warm adaptive threshold instead of re-entering warmup.
    let sharded = registry.sharded("prod", SHARDS).unwrap();
    let carried = sharded.stream_state();
    assert_eq!(carried.tracked, baseline.tracked);
    assert_eq!(carried.seen, baseline.seen);
    assert_eq!(carried.mean.to_bits(), baseline.mean.to_bits());
    assert_eq!(carried.m2.to_bits(), baseline.m2.to_bits());
    let verdicts = sharded.observe_records(&records[..256]).unwrap();
    assert!(
        verdicts[0].threshold.is_finite(),
        "adaptive threshold cold-started through the sharded view"
    );

    stop.store(true, Ordering::Relaxed);
    for h in scorers {
        h.join().unwrap();
    }
    std::fs::remove_dir_all(&spool).ok();
}
