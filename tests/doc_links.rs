//! Documentation link checker (ISSUE 10): every relative link and
//! intra-document anchor in the operator documentation set must
//! resolve. Scope: `README.md`, `ARCHITECTURE.md`, `ROADMAP.md` and
//! everything under `docs/`. External (`http(s)`/`mailto`) targets are
//! skipped — the build container is offline — but their syntax still
//! has to parse.
//!
//! Anchors are matched against GitHub-style heading slugs (lowercase,
//! punctuation stripped, spaces to hyphens, duplicate slugs suffixed
//! `-1`, `-2`, …), computed from the target file's headings outside
//! fenced code blocks.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn doc_set() -> Vec<PathBuf> {
    let root = repo_root();
    let mut docs: Vec<PathBuf> = ["README.md", "ARCHITECTURE.md", "ROADMAP.md"]
        .iter()
        .map(|n| root.join(n))
        .filter(|p| p.exists())
        .collect();
    let docs_dir = root.join("docs");
    if let Ok(entries) = std::fs::read_dir(&docs_dir) {
        let mut extra: Vec<_> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "md"))
            .collect();
        extra.sort();
        docs.extend(extra);
    }
    assert!(docs.len() >= 4, "documentation set went missing: {docs:?}");
    docs
}

/// Lines of `text` with fenced code blocks blanked out (the fence
/// markers themselves included), so links and headings inside examples
/// don't count.
fn without_fences(text: &str) -> Vec<String> {
    let mut fenced = false;
    text.lines()
        .map(|line| {
            let trimmed = line.trim_start();
            if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
                fenced = !fenced;
                String::new()
            } else if fenced {
                String::new()
            } else {
                line.to_string()
            }
        })
        .collect()
}

/// Blanks `inline code spans` so bracket characters inside them don't
/// look like link syntax.
fn without_code_spans(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_code = false;
    for c in line.chars() {
        if c == '`' {
            in_code = !in_code;
            out.push(' ');
        } else if in_code {
            out.push(' ');
        } else {
            out.push(c);
        }
    }
    out
}

/// GitHub-style anchor slug for a heading text.
fn slugify(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' || c == '-' {
                Some(if c == ' ' { '-' } else { c })
            } else {
                None
            }
        })
        .collect()
}

/// All anchor slugs defined by a markdown file, duplicates suffixed.
fn anchors_of(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut anchors = Vec::new();
    for line in without_fences(&text) {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('#') {
            continue;
        }
        let heading = trimmed.trim_start_matches('#');
        if !heading.starts_with(' ') && !heading.is_empty() {
            continue; // not a heading (e.g. "#1" in prose)
        }
        let base = slugify(&heading.replace('`', ""));
        let n = counts.entry(base.clone()).or_insert(0);
        if *n == 0 {
            anchors.push(base.clone());
        } else {
            anchors.push(format!("{base}-{n}"));
        }
        *n += 1;
    }
    anchors
}

/// Extracts inline link targets `[text](target)` from one
/// fence-stripped line.
fn link_targets(line: &str) -> Vec<String> {
    let clean = without_code_spans(line);
    let bytes = clean.as_bytes();
    let mut targets = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = clean[i + 2..].find(')') {
                targets.push(clean[i + 2..i + 2 + end].trim().to_string());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    targets
}

#[test]
fn every_relative_link_and_anchor_resolves() {
    let root = repo_root();
    let mut anchor_cache: HashMap<PathBuf, Vec<String>> = HashMap::new();
    let mut broken: Vec<String> = Vec::new();

    for doc in doc_set() {
        let text = std::fs::read_to_string(&doc).unwrap();
        let dir = doc.parent().unwrap_or(&root).to_path_buf();
        for (lineno, line) in without_fences(&text).iter().enumerate() {
            for target in link_targets(line) {
                let at = format!("{}:{}", doc.display(), lineno + 1);
                if target.is_empty() {
                    broken.push(format!("{at}: empty link target"));
                    continue;
                }
                if target.starts_with("http://")
                    || target.starts_with("https://")
                    || target.starts_with("mailto:")
                {
                    continue;
                }
                // Strip an optional markdown title: [x](path "title").
                let target = target.split_whitespace().next().unwrap_or("");
                let (path_part, fragment) = match target.split_once('#') {
                    Some((p, f)) => (p, Some(f)),
                    None => (target, None),
                };
                let file = if path_part.is_empty() {
                    doc.clone()
                } else {
                    dir.join(path_part)
                };
                if !file.exists() {
                    broken.push(format!("{at}: missing file '{path_part}'"));
                    continue;
                }
                if let Some(frag) = fragment {
                    if file.extension().is_some_and(|x| x == "md") {
                        let anchors = anchor_cache
                            .entry(file.clone())
                            .or_insert_with(|| anchors_of(&file));
                        if !anchors.iter().any(|a| a == frag) {
                            broken
                                .push(format!("{at}: anchor '#{frag}' not in {}", file.display()));
                        }
                    }
                }
            }
        }
    }

    assert!(
        broken.is_empty(),
        "broken documentation links:\n  {}",
        broken.join("\n  ")
    );
}

#[test]
fn slugs_follow_github_rules() {
    assert_eq!(slugify("Wire format"), "wire-format");
    assert_eq!(slugify("GHSF v1 — frame grammar"), "ghsf-v1--frame-grammar");
    assert_eq!(slugify("What's `in` here?"), "whats-in-here");
}
