//! Failure-injection tests: malformed inputs, degenerate data and
//! pathological configurations must produce errors (or graceful
//! degradation) — never panics or silent nonsense.

use ghsom_suite::prelude::*;
use mathkit::Matrix;

fn tiny_train() -> (Dataset, KddPipeline, Matrix, Vec<AttackCategory>) {
    let mut gen =
        traffic::synth::TrafficGenerator::new(traffic::synth::MixSpec::kdd_train(), 1).unwrap();
    let train = gen.generate(120);
    let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
    let x = pipeline.transform_dataset(&train).unwrap();
    let labels: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
    (train, pipeline, x, labels)
}

#[test]
fn nan_and_infinite_training_data_is_rejected() {
    let bad_nan = Matrix::from_flat(2, 3, vec![0.0, f64::NAN, 0.1, 0.2, 0.3, 0.4]).unwrap();
    let bad_inf = Matrix::from_flat(2, 3, vec![0.0, f64::INFINITY, 0.1, 0.2, 0.3, 0.4]).unwrap();
    for bad in [bad_nan, bad_inf] {
        let err = GhsomModel::train(&GhsomConfig::default(), &bad).unwrap_err();
        assert!(matches!(err, ghsom_suite::core::GhsomError::NonFinite));
    }
}

#[test]
fn wrong_dimension_inputs_error_at_every_layer() {
    let (_, _, x, labels) = tiny_train();
    let model = GhsomModel::train(&GhsomConfig::default(), &x).unwrap();
    let det = HybridGhsomDetector::fit(model.clone(), &x, &labels, 0.99).unwrap();

    assert!(model.project(&[1.0, 2.0]).is_err());
    assert!(det.score(&[1.0]).is_err());
    assert!(det.is_anomalous(&[1.0]).is_err());
    assert!(det.classify(&[1.0]).is_err());
}

#[test]
fn empty_dataset_errors_are_clean() {
    let empty = Dataset::new();
    assert!(KddPipeline::fit(&PipelineConfig::default(), &empty).is_err());
    assert!(empty.split_at_fraction(0.5, 0).is_err());
    assert!(empty.stratified_split(0.5, 0).is_err());
}

#[test]
fn single_class_training_data_still_trains() {
    // All-normal data (the anomaly-detection setting): the model trains
    // and the QE detector calibrates; the labelled detector labels every
    // unit normal and never flags the training data.
    let mut gen =
        traffic::synth::TrafficGenerator::new(traffic::synth::MixSpec::normal_only(), 2).unwrap();
    let train = gen.generate(200);
    let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
    let x = pipeline.transform_dataset(&train).unwrap();
    let labels = vec![AttackCategory::Normal; train.len()];
    let model = GhsomModel::train(&GhsomConfig::default().with_epochs(2, 1), &x).unwrap();
    let qe = QeThresholdDetector::fit(model.clone(), &x, 0.99).unwrap();
    let labelled = LabeledGhsomDetector::fit(model, &x, &labels).unwrap();
    let mut flagged = 0;
    for row in x.iter_rows() {
        assert!(!labelled.is_anomalous(row).unwrap());
        if qe.is_anomalous(row).unwrap() {
            flagged += 1;
        }
    }
    // 99th percentile calibration ⇒ ≈1% of calibration data above.
    assert!(flagged <= 10, "{flagged}/200 flagged");
}

#[test]
fn constant_feature_data_degenerates_gracefully() {
    // Every record identical: mqe0 = 0, single 2x2 map, zero scores.
    let row = vec![0.5; 10];
    let data = Matrix::from_rows(vec![row.clone(); 50]).unwrap();
    let model = GhsomModel::train(&GhsomConfig::default(), &data).unwrap();
    assert_eq!(model.map_count(), 1);
    assert_eq!(model.project(&row).unwrap().leaf_qe(), 0.0);
    let qe = QeThresholdDetector::fit(model, &data, 0.99).unwrap();
    assert!(!qe.is_anomalous(&row).unwrap());
    // Any deviation from the constant is flagged (threshold is 0).
    let mut other = row.clone();
    other[0] = 0.9;
    assert!(qe.is_anomalous(&other).unwrap());
}

#[test]
fn pathological_tau_values_are_rejected_not_looped() {
    let (_, _, x, _) = tiny_train();
    for (tau1, tau2) in [
        (0.0, 0.03),
        (1.0, 0.03),
        (0.3, 0.0),
        (0.3, 1.01),
        (f64::NAN, 0.5),
    ] {
        let config = GhsomConfig::default().with_tau1(tau1).with_tau2(tau2);
        assert!(
            GhsomModel::train(&config, &x).is_err(),
            "tau1={tau1} tau2={tau2} accepted"
        );
    }
}

#[test]
fn malformed_csv_is_reported_with_line_numbers() {
    let good = {
        let mut gen =
            traffic::synth::TrafficGenerator::new(traffic::synth::MixSpec::kdd_train(), 3).unwrap();
        traffic::csv::to_line(&gen.sample())
    };
    // Field-count error on line 2.
    let text = format!("{good}\nbad,line\n");
    match traffic::csv::read_dataset(text.as_bytes()) {
        Err(traffic::TrafficError::FieldCount { line, .. }) => assert_eq!(line, 2),
        other => panic!("expected FieldCount, got {other:?}"),
    }
    // Numeric garbage on line 1.
    let garbled = good.replacen(&good[..1], "x", 1);
    assert!(traffic::csv::read_dataset(garbled.as_bytes()).is_err());
}

#[test]
fn detector_fitting_with_mismatched_labels_fails() {
    let (_, _, x, labels) = tiny_train();
    let model = GhsomModel::train(&GhsomConfig::default(), &x).unwrap();
    let short = &labels[..10];
    assert!(LabeledGhsomDetector::fit(model.clone(), &x, short).is_err());
    assert!(HybridGhsomDetector::fit(model.clone(), &x, short, 0.99).is_err());
    assert!(FlatSomDetector::fit(&x, short, 4, 4, 0.99, 0).is_err());
    assert!(KMeansDetector::fit(&x, short, 4, 0.99, 0).is_err());
}

#[test]
fn out_of_range_calibration_percentiles_fail() {
    let (_, _, x, labels) = tiny_train();
    let model = GhsomModel::train(&GhsomConfig::default(), &x).unwrap();
    for p in [0.0, -0.5, 1.5, f64::NAN] {
        assert!(
            HybridGhsomDetector::fit(model.clone(), &x, &labels, p).is_err(),
            "percentile {p} accepted"
        );
    }
}

#[test]
fn zero_weight_mixes_are_rejected() {
    use traffic::synth::MixSpec;
    assert!(MixSpec::custom(vec![]).is_err());
    assert!(MixSpec::custom(vec![(AttackType::Smurf, 0.0)]).is_err());
    assert!(MixSpec::custom(vec![(AttackType::Smurf, -2.0)]).is_err());
}

#[test]
fn streaming_detector_propagates_scoring_errors_without_state_change() {
    let (_, _, x, labels) = tiny_train();
    let model = GhsomModel::train(&GhsomConfig::default(), &x).unwrap();
    let det = HybridGhsomDetector::fit(model, &x, &labels, 0.99).unwrap();
    let stream = detect::online::StreamingDetector::new(det, 3.0, 10);
    assert!(stream.observe(&[1.0, 2.0]).is_err());
    assert_eq!(stream.stats().seen, 0, "failed observation must not count");
    // A valid observation still works afterwards.
    stream.observe(x.row(0)).unwrap();
    assert_eq!(stream.stats().seen, 1);
}
