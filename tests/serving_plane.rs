//! End-to-end test of the serving plane: train → fit detectors → compile
//! → snapshot → reload → serve, verifying the compiled arena and the
//! binary snapshot reproduce the training-time detector exactly.

use ghsom_suite::prelude::*;
use ghsom_suite::serve::ServeError;

fn setup() -> (
    GhsomModel,
    KddPipeline,
    mathkit::Matrix,
    mathkit::Matrix,
    Vec<AttackCategory>,
) {
    let (train, test) = traffic::synth::kdd_train_test(1_200, 600, 33).unwrap();
    let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
    let x_train = pipeline.transform_dataset(&train).unwrap();
    let x_test = pipeline.transform_dataset(&test).unwrap();
    let labels: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
    let model = GhsomModel::train(
        &GhsomConfig::default()
            .with_tau1(0.3)
            .with_tau2(0.05)
            .with_epochs(3, 2)
            .with_seed(33),
        &x_train,
    )
    .unwrap();
    (model, pipeline, x_train, x_test, labels)
}

#[test]
fn compiled_plane_reproduces_training_projections() {
    let (model, _, x_train, x_test, _) = setup();
    let compiled = model.compile().unwrap();
    assert!(compiled.map_count() >= 2, "expected a real hierarchy");
    for data in [&x_train, &x_test] {
        let tree = model.project_batch(data).unwrap();
        let flat = compiled.project_batch(data).unwrap();
        for (t, f) in tree.iter().zip(&flat) {
            assert_eq!(t.leaf_key(), f.leaf_key());
            assert_eq!(t.leaf_qe().to_bits(), f.leaf_qe().to_bits());
        }
    }
}

#[test]
fn snapshot_survives_the_filesystem_and_serves_detectors() {
    let (model, _, x_train, x_test, labels) = setup();
    let detector = HybridGhsomDetector::fit(model, &x_train, &labels, 0.99).unwrap();

    // Compile and persist the model as a binary snapshot.
    let compiled = detector.labeled().model().compile().unwrap();
    let path = std::env::temp_dir().join("ghsom_serving_plane_e2e.ghsom");
    compiled.save(&path).unwrap();
    let reloaded = CompiledGhsom::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded, compiled);

    // The reloaded arena serves the fitted detector with identical
    // verdicts and scores.
    let served = detector.with_scorer(reloaded);
    let tree_scores = detector.score_all(&x_test).unwrap();
    let flat_scores = served.score_all(&x_test).unwrap();
    let tree_verdicts = detector.is_anomalous_all(&x_test).unwrap();
    let flat_verdicts = served.is_anomalous_all(&x_test).unwrap();
    for i in 0..x_test.rows() {
        assert_eq!(tree_scores[i].to_bits(), flat_scores[i].to_bits());
        assert_eq!(tree_verdicts[i], flat_verdicts[i]);
    }
    // Classification agrees record by record too.
    for x in x_test.iter_rows().take(100) {
        assert_eq!(detector.classify(x).unwrap(), served.classify(x).unwrap());
    }
}

#[test]
fn streaming_detector_runs_on_the_compiled_plane() {
    let (model, _, x_train, x_test, labels) = setup();
    let detector = HybridGhsomDetector::fit(model, &x_train, &labels, 0.99).unwrap();
    let compiled = detector.labeled().model().compile().unwrap();
    let tree_stream = StreamingDetector::new(detector.clone(), 4.0, 200);
    let flat_stream = StreamingDetector::new(detector.with_scorer(compiled), 4.0, 200);
    let tree_verdicts = tree_stream.observe_batch(&x_test).unwrap();
    let flat_verdicts = flat_stream.observe_batch(&x_test).unwrap();
    assert_eq!(tree_verdicts.len(), flat_verdicts.len());
    for (a, b) in tree_verdicts.iter().zip(&flat_verdicts) {
        assert_eq!(a.anomalous, b.anomalous);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
    let (ts, fs) = (tree_stream.stats(), flat_stream.stats());
    assert_eq!(ts.seen, fs.seen);
    assert_eq!(ts.flagged, fs.flagged);
    assert_eq!(ts.score_mean.to_bits(), fs.score_mean.to_bits());
}

#[test]
fn explanations_agree_across_representations() {
    let (model, pipeline, _, x_test, _) = setup();
    let compiled = model.compile().unwrap();
    for x in x_test.iter_rows().take(25) {
        let from_tree = explain(&model, pipeline.schema(), x).unwrap();
        let from_arena = explain(&compiled, pipeline.schema(), x).unwrap();
        assert_eq!(from_tree, from_arena);
    }
}

#[test]
fn snapshot_view_serves_without_copying() {
    let (model, _, _, x_test, _) = setup();
    let compiled = model.compile().unwrap();
    let raw = compiled.to_bytes();
    // Copy to a provably 8-byte-aligned position (a bare Vec<u8> has no
    // alignment guarantee).
    let mut buf = vec![0u8; raw.len() + 8];
    let off = buf.as_ptr().align_offset(8);
    buf[off..off + raw.len()].copy_from_slice(&raw);
    let view = SnapshotView::parse(&buf[off..off + raw.len()]).unwrap();
    let a = compiled.score_all(&x_test).unwrap();
    let b = view.score_all(&x_test).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn hostile_snapshot_bytes_yield_typed_errors() {
    let (model, _, _, _, _) = setup();
    let raw = model.compile().unwrap().to_bytes();
    // Truncated.
    assert!(matches!(
        CompiledGhsom::from_bytes(&raw[..raw.len() / 2]).unwrap_err(),
        ServeError::Truncated { .. }
    ));
    // Corrupted payload.
    let mut bad = raw.clone();
    let at = bad.len() - 1;
    bad[at] ^= 0x01;
    assert!(matches!(
        CompiledGhsom::from_bytes(&bad).unwrap_err(),
        ServeError::ChecksumMismatch { .. }
    ));
    // Wrong version.
    let mut bad = raw;
    bad[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(
        CompiledGhsom::from_bytes(&bad).unwrap_err(),
        ServeError::UnsupportedVersion { found: 7, .. }
    ));
}
