//! End-to-end acceptance tests of the one-artifact serving surface:
//!
//! * the bundle round-trip property — fit → save → load → **bit-identical
//!   verdicts on 1 000 held-out records**, with no training objects in
//!   reach of the reloaded engine;
//! * hostile-bytes behaviour of the bundle decoder (truncation, bit
//!   flips, wrong versions) — typed errors, never panics;
//! * legacy compatibility — version-1 model-only snapshots still load and
//!   serve, and are version-gated out of the bundle path;
//! * the registry concurrency contract — [`EngineRegistry::swap`] is
//!   observable mid-stream without blocking concurrent
//!   [`Engine::score_record`] traffic.

use proptest::prelude::*;

use ghsom_suite::prelude::*;

fn small_engine(seed: u64, n_train: usize) -> (Engine, Dataset) {
    let (train, test) = traffic::synth::kdd_train_test(n_train, 1_000, seed).unwrap();
    let config = EngineConfig::default()
        .with_ghsom(GhsomConfig::default().with_epochs(2, 2).with_seed(seed))
        .with_stream(4.0, 100);
    (Engine::fit(&config, &train).unwrap(), test)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// fit → save → load → identical verdicts on 1k records, across
    /// random training seeds (each case fits a fresh engine).
    #[test]
    fn bundle_roundtrip_verdicts_are_bit_identical(seed in 0u64..1000) {
        let (engine, test) = small_engine(seed, 1_200);
        prop_assert_eq!(test.len(), 1_000);
        let path = std::env::temp_dir().join(format!("ghsom_bundle_prop_{seed}.bundle"));
        engine.save(&path).unwrap();
        let reloaded = Engine::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // The reloaded engine has no access to the original pipeline,
        // model or detector objects — only the bundle bytes.
        let a = engine.score_records(test.records()).unwrap();
        let b = reloaded.score_records(test.records()).unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
            prop_assert_eq!(x.anomalous, y.anomalous);
            prop_assert_eq!(x.category, y.category);
        }
        // And the bundle re-serializes byte-identically.
        prop_assert_eq!(reloaded.to_bytes(), engine.to_bytes());
    }

    /// Single-byte corruption anywhere in a bundle is always caught with
    /// a typed error (checksum for payload flips, header checks for the
    /// preamble) — never a panic, never a silently different verdict.
    #[test]
    fn bundle_corruption_is_always_typed(at_frac in 0usize..100, bit in 0u8..8) {
        // One shared engine: the property ranges over corruption sites.
        let (engine, _) = small_engine(7, 400);
        let bundle = engine.to_bytes();
        let at = (bundle.len() - 1) * at_frac / 100;
        let mut bad = bundle.clone();
        bad[at] ^= 1 << bit;
        prop_assert!(
            Engine::from_bytes(&bad).is_err(),
            "flip at byte {} bit {} was not detected", at, bit
        );
    }
}

#[test]
fn truncation_and_versions_are_typed() {
    let (engine, _) = small_engine(3, 400);
    let bundle = engine.to_bytes();
    for cut in (0..bundle.len()).step_by(997) {
        assert!(matches!(
            Engine::from_bytes(&bundle[..cut]).unwrap_err(),
            ServeError::Truncated { .. }
        ));
    }
    let mut future = bundle.clone();
    future[8..12].copy_from_slice(&77u32.to_le_bytes());
    assert!(matches!(
        Engine::from_bytes(&future).unwrap_err(),
        ServeError::UnsupportedVersion { found: 77, .. }
    ));
}

/// A version-1 model-only snapshot (the PR 2 artifact) still loads
/// everywhere it used to, and the Engine path version-gates it with a
/// typed error instead of serving a model without its input transform.
#[test]
fn legacy_model_only_snapshots_still_load() {
    let (engine, test) = small_engine(5, 600);
    // Write the legacy artifact exactly as PR 2 code would have.
    let legacy = engine.compiled().to_bytes();
    assert_eq!(ghsom_serve::snapshot::VERSION, 1);
    let path = std::env::temp_dir().join("ghsom_legacy_model_only.ghsom");
    std::fs::write(&path, &legacy).unwrap();

    // 1. The arena loader accepts it unchanged.
    let arena = CompiledGhsom::load(&path).unwrap();
    assert_eq!(&arena, engine.compiled());

    // 2. The zero-copy view accepts it unchanged (via mmap, as a real
    //    server would).
    let mapped = MappedFile::open(&path).unwrap();
    let view = SnapshotView::parse(&mapped).unwrap();
    assert_eq!(view.total_units(), engine.compiled().total_units());

    // 3. The engine path refuses it with the typed gate…
    assert!(matches!(
        Engine::load(&path).unwrap_err(),
        ServeError::NotABundle { version: 1 }
    ));

    // 4. …and the builder is the documented escape hatch: legacy arena +
    //    separately shipped pipeline/detector still make a full engine
    //    with identical verdicts.
    let rebuilt = Engine::builder()
        .pipeline(engine.pipeline().clone())
        .compiled(arena)
        .detector(engine.detector())
        .build()
        .unwrap();
    for rec in test.iter().take(200) {
        assert_eq!(
            engine.score_record(rec).unwrap(),
            rebuilt.score_record(rec).unwrap()
        );
    }
    std::fs::remove_file(&path).ok();
}

/// The registry's rollover contract: while scoring threads hammer
/// `score_record` through the registry, a control thread swaps the
/// tenant's engine repeatedly. Every score call must succeed (no
/// downtime), scoring must keep making progress *during* swaps (no
/// blocking), and the swaps must become visible to readers mid-stream.
#[test]
fn registry_swap_is_observable_and_non_blocking_mid_stream() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    let (engine, test) = small_engine(9, 500);
    let registry = Arc::new(EngineRegistry::new());
    registry.deploy("tenant", engine);

    let stop = Arc::new(AtomicBool::new(false));
    let scored = Arc::new(AtomicU64::new(0));
    let generations_seen = Arc::new(std::sync::Mutex::new(std::collections::HashSet::new()));
    let records = Arc::new(test.records().to_vec());

    let mut handles = Vec::new();
    for t in 0..3 {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        let scored = Arc::clone(&scored);
        let generations = Arc::clone(&generations_seen);
        let records = Arc::clone(&records);
        handles.push(std::thread::spawn(move || {
            let mut i = t;
            while !stop.load(Ordering::Relaxed) {
                // Resolve per record: swaps must become visible here.
                let engine = registry.get("tenant").unwrap();
                generations
                    .lock()
                    .unwrap()
                    .insert(Arc::as_ptr(&engine) as usize);
                engine.score_record(&records[i % records.len()]).unwrap();
                scored.fetch_add(1, Ordering::Relaxed);
                i += 1;
            }
        }));
    }

    // Control plane: swap engines mid-stream and verify scoring makes
    // progress across every swap.
    let mut swapped = 0u32;
    for seed in 0..4u64 {
        let before = scored.load(Ordering::Relaxed);
        let (fresh, _) = small_engine(100 + seed, 400);
        let old = registry.swap("tenant", fresh).unwrap();
        drop(old); // last in-registry reference to the retired engine
        swapped += 1;
        // Scoring continues after (and despite) the swap.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while scored.load(Ordering::Relaxed) <= before {
            assert!(
                std::time::Instant::now() < deadline,
                "scoring stalled across swap {swapped}"
            );
            std::thread::yield_now();
        }
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    // The readers saw multiple engine generations — the swap was
    // observable mid-stream, not just after the readers drained.
    let generations = generations_seen.lock().unwrap().len();
    assert!(
        generations >= 2,
        "readers observed only {generations} engine generation(s) across {swapped} swaps"
    );
    assert!(scored.load(Ordering::Relaxed) > 0);
}
