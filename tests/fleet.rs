//! Deterministic in-process mini-fleet (ISSUE 10): three daemons, each
//! with its own spool and a GHSF fleet endpoint, fed by a
//! `SpoolPublisher` and routed by a `FleetClient`. The invariants:
//!
//! * **replication-to-swap** — one publisher poll replicates the bundle
//!   into all three node spools (checksum-verified, visible only after
//!   the atomic rename), and every node is serving the tenant within
//!   the watcher's next poll;
//! * **bit-identical fan-out** — verdicts routed across the fleet in
//!   contiguous chunks equal a single reference engine scoring the
//!   whole batch, verdict for verdict;
//! * **typed degradation** — a node killed mid-stream yields
//!   `FleetError::Partial` naming the exact unserved record ranges with
//!   failover off, a full bit-identical result with failover on, and
//!   `AllNodesDown` when nothing is left; observe batches are never
//!   retried and name the node that failed;
//! * **exact baseline reduction** — the fleet-wide `StreamState` merged
//!   from the nodes' GHSF state exports equals, bit for bit,
//!   `StreamState::merge_all` over reference engines fed the same
//!   per-node sub-streams.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use ghsom_comms::{PublishEvent, SpoolPublisher};
use ghsom_daemon::{Daemon, DaemonClient, DaemonConfig, FleetClient, FleetEndpoint, FleetError};
use ghsom_serve::publish_bundle;
use ghsom_suite::prelude::*;

const DEPLOY_DEADLINE: Duration = Duration::from_secs(20);

fn small_engine(seed: u64) -> (Engine, Vec<ConnectionRecord>) {
    let (train, test) = traffic::synth::kdd_train_test(400, 512, seed).unwrap();
    let config = EngineConfig::default()
        .with_ghsom(GhsomConfig::default().with_epochs(2, 2).with_seed(seed))
        .with_stream(4.0, 50);
    (
        Engine::fit(&config, &train).unwrap(),
        test.records().to_vec(),
    )
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ghsom_fleet_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_node(spool: &std::path::Path) -> Daemon {
    Daemon::start(
        DaemonConfig::new(spool)
            .with_poll_interval(Duration::from_millis(50))
            .with_fleet_addr("127.0.0.1:0"),
    )
    .unwrap()
}

fn endpoint(daemon: &Daemon) -> FleetEndpoint {
    FleetEndpoint {
        ingest: daemon.ingest_addr(),
        fleet: daemon.fleet_addr(),
    }
}

/// Blocks until the node serves `tenant`, panicking past the deadline.
fn await_serving(ingest: SocketAddr, tenant: &str, probe: &[ConnectionRecord]) {
    let deadline = Instant::now() + DEPLOY_DEADLINE;
    loop {
        let attempt = DaemonClient::connect(ingest).and_then(|mut client| {
            client.set_read_timeout(Some(Duration::from_secs(5)))?;
            client.score(tenant, probe)
        });
        match attempt {
            Ok(_) => return,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "node {ingest} did not serve '{tenant}' before the deadline (last: {e})"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[test]
fn publisher_replicates_and_fleet_routes_bit_identically() {
    let source = scratch_dir("src");
    let (engine, records) = small_engine(71);
    let bundle = engine.to_bytes();
    publish_bundle(&source, "edge", &bundle).unwrap();

    let spools: Vec<_> = (0..3).map(|i| scratch_dir(&format!("node{i}"))).collect();
    let nodes: Vec<_> = spools.iter().map(|s| start_node(s)).collect();
    let fleet_addrs: Vec<SocketAddr> = nodes.iter().map(|n| n.fleet_addr().unwrap()).collect();

    // -- one publisher poll replicates into all three node spools.
    let mut publisher = SpoolPublisher::new(&source, fleet_addrs);
    let events = publisher.poll_once();
    let synced = events
        .iter()
        .filter(|e| matches!(e, PublishEvent::NodeSynced { .. }))
        .count();
    assert_eq!(synced, 3, "one poll must sync all three nodes: {events:?}");
    assert_eq!(publisher.poll_once().len(), 0, "converged fleet is quiet");

    // -- every node swaps the bundle in within the watcher poll.
    let probe = &records[..1];
    for node in &nodes {
        await_serving(node.ingest_addr(), "edge", probe);
    }

    // -- fleet-routed verdicts are bit-identical to one engine.
    let reference = Engine::from_bytes(&bundle).unwrap();
    let batch = &records[..300]; // 3 chunks of 100 across 3 nodes
    let expected = reference.score_records(batch).unwrap();
    let mut fleet = FleetClient::new(nodes.iter().map(endpoint).collect()).unwrap();
    let verdicts = fleet.score("edge", batch).unwrap();
    assert_eq!(verdicts, expected, "fleet verdicts differ from reference");

    // A sub-chunk batch stays on one node and still matches.
    let small = &records[5..45];
    assert_eq!(
        fleet.score("edge", small).unwrap(),
        reference.score_records(small).unwrap(),
    );

    // -- observe fan-out reconciles exactly: round-robin routes batch i
    // to node i, so feed the same sub-streams to reference engines and
    // compare the merged baselines bit for bit.
    let refs: Vec<_> = (0..3)
        .map(|_| Engine::from_bytes(&bundle).unwrap())
        .collect();
    for (i, reference) in refs.iter().enumerate() {
        let sub = &records[i * 60..(i + 1) * 60];
        let local = reference.observe_records(sub).unwrap();
        let remote = fleet.observe("edge", sub).unwrap();
        assert_eq!(remote.len(), local.len());
        for (j, (r, l)) in remote.iter().zip(&local).enumerate() {
            // Bitwise, not PartialEq: warmup verdicts carry a NaN
            // threshold, and NaN != NaN would fail an identical pair.
            assert!(
                r.score.to_bits() == l.score.to_bits()
                    && r.anomalous == l.anomalous
                    && r.threshold.to_bits() == l.threshold.to_bits(),
                "observe verdict {j} differs on node {i}: remote {r:?} local {l:?}"
            );
        }
    }
    let states: Vec<StreamState> = refs.iter().map(|r| r.stream_state()).collect();
    let expected_state = StreamState::merge_all(&states).unwrap();
    let fleet_state = fleet.fleet_state("edge").unwrap();
    assert_eq!(
        fleet_state.to_wire(),
        expected_state.to_wire(),
        "merged fleet baseline is not bit-identical to the reference reduction"
    );

    for node in nodes {
        node.shutdown();
    }
    std::fs::remove_dir_all(&source).ok();
    for s in &spools {
        std::fs::remove_dir_all(s).ok();
    }
}

#[test]
fn node_failure_is_typed_partial_then_recovers() {
    let (engine, records) = small_engine(72);
    let bundle = engine.to_bytes();
    let reference = Engine::from_bytes(&bundle).unwrap();

    let spool_a = scratch_dir("fail_a");
    let spool_b = scratch_dir("fail_b");
    publish_bundle(&spool_a, "edge", &bundle).unwrap();
    let node_a = start_node(&spool_a);
    let node_b = start_node(&spool_b);
    let addr_b = node_b.ingest_addr();
    let probe = &records[..1];
    await_serving(node_a.ingest_addr(), "edge", probe);

    let endpoints = vec![endpoint(&node_a), endpoint(&node_b)];
    let batch = &records[..256]; // 2 chunks of 128
    let expected = reference.score_records(batch).unwrap();

    // -- rolling deploy: node B has no 'edge' yet. Its reject fails
    // over to A without tarring B as down; with failover off it is a
    // typed partial naming exactly B's chunk.
    let mut fleet = FleetClient::new(endpoints.clone())
        .unwrap()
        .with_backoff(Duration::ZERO);
    assert_eq!(fleet.score("edge", batch).unwrap(), expected);
    assert_eq!(
        fleet.healthy_nodes(),
        2,
        "a tenant reject is not node death"
    );
    let mut rigid = FleetClient::new(endpoints.clone())
        .unwrap()
        .with_backoff(Duration::ZERO)
        .with_failover(false);
    match rigid.score("edge", batch) {
        Err(FleetError::Partial { total, missing, .. }) => {
            assert_eq!(total, 256);
            assert_eq!(missing, vec![(128, 256)]);
        }
        other => panic!("expected Partial for undeployed node, got {other:?}"),
    }

    // -- deploy B, then kill it mid-stream.
    publish_bundle(&spool_b, "edge", &bundle).unwrap();
    await_serving(node_b.ingest_addr(), "edge", probe);
    assert_eq!(rigid.score("edge", batch).unwrap(), expected);
    node_b.shutdown();

    match rigid.score("edge", batch) {
        Err(FleetError::Partial { total, missing, .. }) => {
            assert_eq!(total, 256);
            assert_eq!(missing, vec![(128, 256)]);
        }
        other => panic!("expected Partial after node death, got {other:?}"),
    }

    // -- with failover the surviving node serves the whole batch,
    // still bit-identical.
    let mut fleet = FleetClient::new(endpoints.clone())
        .unwrap()
        .with_backoff(Duration::ZERO);
    assert_eq!(fleet.score("edge", batch).unwrap(), expected);

    // -- observe is single-node and never retried: when round-robin
    // lands on the dead node the error names it instead of silently
    // double-feeding a baseline elsewhere.
    let sub = &records[..40];
    let first = fleet.observe("edge", sub);
    let second = fleet.observe("edge", sub);
    let died_on_b = [first, second]
        .into_iter()
        .filter_map(|r| r.err())
        .map(|e| match e {
            FleetError::Node { node, .. } => node,
            other => panic!("observe failure must be FleetError::Node, got {other:?}"),
        })
        .collect::<Vec<_>>();
    assert_eq!(
        died_on_b,
        vec![addr_b],
        "exactly one round-robin turn hits B"
    );

    // -- nothing left: typed AllNodesDown, not a hang.
    node_a.shutdown();
    let mut fleet = FleetClient::new(endpoints)
        .unwrap()
        .with_backoff(Duration::ZERO);
    match fleet.score("edge", batch) {
        Err(FleetError::AllNodesDown { tenant }) => assert_eq!(tenant, "edge"),
        other => panic!("expected AllNodesDown, got {other:?}"),
    }

    std::fs::remove_dir_all(&spool_a).ok();
    std::fs::remove_dir_all(&spool_b).ok();
}
