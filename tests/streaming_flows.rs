//! Integration tests of the live-deployment path: raw flow simulation →
//! window aggregation → feature pipeline → streaming detector.

use detect::online::StreamingDetector;
use ghsom_suite::prelude::*;
use traffic::flows::{AttackEpisode, EpisodeKind, FlowSimConfig, FlowSimulator};
use traffic::window::derive_dataset;

/// Trains on records derived from a *flow trace* via the same window
/// aggregation used at detection time — matching the training distribution
/// to the deployment distribution, as a real NetFlow deployment must.
fn trained_detector(seed: u64) -> (KddPipeline, HybridGhsomDetector) {
    let mut sim = FlowSimulator::new(
        FlowSimConfig {
            duration_secs: 120.0,
            background_rate: 60.0,
            server_count: 32,
            client_count: 128,
            episodes: vec![
                AttackEpisode {
                    kind: EpisodeKind::SynFlood {
                        target: 0xC0A8_0001,
                    },
                    start: 40.0,
                    duration: 15.0,
                    rate: 400.0,
                },
                AttackEpisode {
                    kind: EpisodeKind::PortScan {
                        target: 0xC0A8_0002,
                    },
                    start: 80.0,
                    duration: 15.0,
                    rate: 100.0,
                },
            ],
        },
        seed ^ 0xF10,
    );
    let train = derive_dataset(&sim.generate());
    let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
    let x_train = pipeline.transform_dataset(&train).unwrap();
    let labels: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
    let model = GhsomModel::train(
        &GhsomConfig::default()
            .with_tau1(0.3)
            .with_tau2(0.03)
            .with_epochs(3, 3)
            .with_seed(seed),
        &x_train,
    )
    .unwrap();
    let det = HybridGhsomDetector::fit(model, &x_train, &labels, 0.995).unwrap();
    (pipeline, det)
}

fn simulate(seed: u64) -> (Vec<traffic::flows::FlowEvent>, Dataset) {
    let mut sim = FlowSimulator::new(
        FlowSimConfig {
            duration_secs: 60.0,
            background_rate: 60.0,
            server_count: 32,
            client_count: 128,
            episodes: vec![AttackEpisode {
                kind: EpisodeKind::SynFlood {
                    target: 0xC0A8_0001,
                },
                start: 30.0,
                duration: 20.0,
                rate: 400.0,
            }],
        },
        seed,
    );
    let flows = sim.generate();
    let derived = derive_dataset(&flows);
    (flows, derived)
}

#[test]
fn windowed_records_flow_through_the_pipeline() {
    let (pipeline, _) = trained_detector(1);
    let (_, derived) = simulate(2);
    // Every derived record transforms without error and stays bounded.
    for rec in derived.iter().take(500) {
        let x = pipeline.transform(rec).unwrap();
        assert_eq!(x.len(), pipeline.output_dim());
        assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
    }
}

#[test]
fn streaming_detector_catches_the_flood_window() {
    let (pipeline, det) = trained_detector(3);
    let stream = StreamingDetector::new(det, 4.0, 100);
    let (flows, derived) = simulate(4);

    let mut quiet_flagged = 0usize;
    let mut quiet_total = 0usize;
    let mut attack_flagged = 0usize;
    let mut attack_total = 0usize;
    for (flow, rec) in flows.iter().zip(derived.iter()) {
        let x = pipeline.transform(rec).unwrap();
        let verdict = stream.observe(&x).unwrap();
        // Skip the earliest seconds while windows warm up.
        if flow.time < 5.0 {
            continue;
        }
        if flow.label.is_attack() {
            attack_total += 1;
            if verdict.anomalous {
                attack_flagged += 1;
            }
        } else if flow.time < 30.0 {
            quiet_total += 1;
            if verdict.anomalous {
                quiet_flagged += 1;
            }
        }
    }
    assert!(
        attack_total > 1_000,
        "flood should dominate: {attack_total}"
    );
    let attack_rate = attack_flagged as f64 / attack_total as f64;
    let quiet_rate = quiet_flagged as f64 / quiet_total.max(1) as f64;
    assert!(
        attack_rate > 0.9,
        "flood flows flagged at only {attack_rate}"
    );
    assert!(quiet_rate < 0.2, "quiet traffic flagged at {quiet_rate}");
    assert!(attack_rate > 4.0 * quiet_rate);
}

#[test]
fn entropy_series_separates_attack_windows() {
    let (flows, _) = simulate(5);
    let series = featurize::entropywin::entropy_series(&flows, 5.0).unwrap();
    // Windows overlapping the flood have high ground-truth attack fraction
    // and show the flood entropy signature (dispersed sources).
    let attack_windows: Vec<_> = series.iter().filter(|w| w.attack_fraction > 0.5).collect();
    let quiet_windows: Vec<_> = series.iter().filter(|w| w.attack_fraction == 0.0).collect();
    assert!(!attack_windows.is_empty());
    assert!(!quiet_windows.is_empty());
    let mean = |ws: &[&featurize::entropywin::EntropyWindow],
                f: fn(&featurize::entropywin::EntropyWindow) -> f64| {
        ws.iter().map(|w| f(w)).sum::<f64>() / ws.len() as f64
    };
    assert!(
        mean(&attack_windows, |w| w.src_ip_entropy) > mean(&quiet_windows, |w| w.src_ip_entropy)
    );
}

#[test]
fn stream_state_is_isolated_between_sessions() {
    let (pipeline, det) = trained_detector(6);
    let stream = StreamingDetector::new(det, 4.0, 10);
    let (_, derived) = simulate(7);
    for rec in derived.iter().take(50) {
        stream.observe(&pipeline.transform(rec).unwrap()).unwrap();
    }
    assert_eq!(stream.stats().seen, 50);
    stream.reset();
    assert_eq!(stream.stats().seen, 0);
    for rec in derived.iter().take(10) {
        stream.observe(&pipeline.transform(rec).unwrap()).unwrap();
    }
    assert_eq!(stream.stats().seen, 10);
}
