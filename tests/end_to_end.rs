//! End-to-end integration tests spanning every crate: raw data → features
//! → GHSOM → detection → evaluation.

use ghsom_suite::prelude::*;

/// Builds a complete small pipeline once, shared by several assertions.
fn build() -> (
    Dataset,
    Dataset,
    KddPipeline,
    mathkit::Matrix,
    mathkit::Matrix,
    HybridGhsomDetector,
) {
    let (train, test) = traffic::synth::kdd_train_test(1_500, 1_000, 2024).unwrap();
    let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
    let x_train = pipeline.transform_dataset(&train).unwrap();
    let x_test = pipeline.transform_dataset(&test).unwrap();
    let labels: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
    let model = GhsomModel::train(
        &GhsomConfig::default()
            .with_tau1(0.3)
            .with_tau2(0.03)
            .with_epochs(3, 3)
            .with_seed(2024),
        &x_train,
    )
    .unwrap();
    let detector = HybridGhsomDetector::fit(model, &x_train, &labels, 0.99).unwrap();
    (train, test, pipeline, x_train, x_test, detector)
}

#[test]
fn full_pipeline_beats_chance_and_bounds_false_positives() {
    let (_, test, _, _, x_test, detector) = build();
    let mut metrics = evalkit::BinaryMetrics::new();
    for (x, rec) in x_test.iter_rows().zip(test.iter()) {
        metrics.record(rec.is_attack(), detector.is_anomalous(x).unwrap());
    }
    assert!(
        metrics.detection_rate() > 0.80,
        "detection rate {}",
        metrics.detection_rate()
    );
    assert!(
        metrics.false_positive_rate() < 0.15,
        "false positive rate {}",
        metrics.false_positive_rate()
    );
    assert!(metrics.accuracy() > 0.80, "accuracy {}", metrics.accuracy());
}

#[test]
fn dos_floods_are_nearly_always_caught() {
    let (_, test, _, _, x_test, detector) = build();
    let mut caught = 0usize;
    let mut total = 0usize;
    for (x, rec) in x_test.iter_rows().zip(test.iter()) {
        if rec.category() == AttackCategory::Dos {
            total += 1;
            if detector.is_anomalous(x).unwrap() {
                caught += 1;
            }
        }
    }
    assert!(total > 0);
    let rate = caught as f64 / total as f64;
    assert!(rate > 0.9, "DoS detection rate {rate}");
}

#[test]
fn unseen_attack_types_are_still_detected() {
    let (_, test, _, _, x_test, detector) = build();
    let mut caught = 0usize;
    let mut total = 0usize;
    for (x, rec) in x_test.iter_rows().zip(test.iter()) {
        if rec.label.is_test_only() {
            total += 1;
            if detector.is_anomalous(x).unwrap() {
                caught += 1;
            }
        }
    }
    assert!(
        total > 20,
        "test set should contain unseen attacks, got {total}"
    );
    let rate = caught as f64 / total as f64;
    // Unseen types are harder; still require well above chance.
    assert!(rate > 0.5, "unseen-attack detection rate {rate}");
}

#[test]
fn whole_pipeline_is_deterministic_under_fixed_seeds() {
    let (_, _, _, _, x_test_a, det_a) = build();
    let (_, _, _, _, x_test_b, det_b) = build();
    assert_eq!(x_test_a, x_test_b);
    for (xa, xb) in x_test_a.iter_rows().zip(x_test_b.iter_rows()).take(200) {
        assert_eq!(
            det_a.is_anomalous(xa).unwrap(),
            det_b.is_anomalous(xb).unwrap()
        );
        assert_eq!(det_a.score(xa).unwrap(), det_b.score(xb).unwrap());
    }
}

#[test]
fn trained_detector_roundtrips_through_json() {
    let (_, _, _, _, x_test, detector) = build();
    let json = serde_json::to_string(&detector).unwrap();
    let restored: HybridGhsomDetector = serde_json::from_str(&json).unwrap();
    for x in x_test.iter_rows().take(100) {
        assert_eq!(
            detector.is_anomalous(x).unwrap(),
            restored.is_anomalous(x).unwrap()
        );
        assert_eq!(detector.classify(x).unwrap(), restored.classify(x).unwrap());
    }
}

#[test]
fn csv_roundtrip_preserves_detection_results() {
    let (_, test, pipeline, _, _, detector) = build();
    // Write the test set to CSV and read it back (simulating use of the
    // real KDD files).
    let mut buf = Vec::new();
    traffic::csv::write_dataset(&test, &mut buf).unwrap();
    let reloaded = traffic::csv::read_dataset(buf.as_slice()).unwrap();
    assert_eq!(reloaded.len(), test.len());
    // Rates are rounded to 2 decimals in CSV, so verdicts may flip only
    // for borderline records; require > 99% agreement.
    let mut agree = 0usize;
    for (orig, reload) in test.iter().zip(reloaded.iter()) {
        let vo = detector
            .is_anomalous(&pipeline.transform(orig).unwrap())
            .unwrap();
        let vr = detector
            .is_anomalous(&pipeline.transform(reload).unwrap())
            .unwrap();
        if vo == vr {
            agree += 1;
        }
    }
    assert!(
        agree as f64 / test.len() as f64 > 0.99,
        "only {agree}/{} verdicts agree after CSV roundtrip",
        test.len()
    );
}

#[test]
fn roc_of_ghsom_scores_has_meaningful_auc() {
    let (_, test, _, _, x_test, detector) = build();
    let scores = detector.score_all(&x_test).unwrap();
    let truth: Vec<bool> = test.iter().map(|r| r.is_attack()).collect();
    let roc = evalkit::RocCurve::from_scores(&scores, &truth).unwrap();
    assert!(roc.auc() > 0.9, "AUC {}", roc.auc());
}

#[test]
fn hybrid_score_is_verdict_consistent() {
    let (_, _, _, _, x_test, detector) = build();
    for x in x_test.iter_rows().take(500) {
        let score = detector.score(x).unwrap();
        assert_eq!(detector.is_anomalous(x).unwrap(), score > 1.0);
    }
}

#[test]
fn raw_qe_inverts_on_mixed_training_data() {
    // Documented property: a GHSOM trained on the attack-dominated KDD mix
    // quantizes the tight DoS clusters better than diverse normal traffic,
    // so raw leaf QE ranks attacks *below* normal records. This is why the
    // detection layer uses labels (and why Figure 3 uses a
    // normal-only-trained model).
    let (_, test, _, _, x_test, detector) = build();
    let qe_scores: Vec<f64> = x_test
        .iter_rows()
        .map(|x| detector.labeled().model().project(x).unwrap().leaf_qe())
        .collect();
    let truth: Vec<bool> = test.iter().map(|r| r.is_attack()).collect();
    let roc = evalkit::RocCurve::from_scores(&qe_scores, &truth).unwrap();
    assert!(
        roc.auc() < 0.5,
        "expected inverted raw-QE ranking, AUC {}",
        roc.auc()
    );
}
