//! Integration tests of the baseline detectors on the same data the GHSOM
//! sees — the qualitative claims of the comparison tables, as assertions.

use ghsom_suite::prelude::*;

struct Bench {
    test: Dataset,
    x_test: mathkit::Matrix,
    ghsom: HybridGhsomDetector,
    flat: FlatSomDetector,
    kmeans: KMeansDetector,
    grid: GrowingGridDetector,
    pca: PcaDetector,
}

fn build() -> Bench {
    let (train, test) = traffic::synth::kdd_train_test(1_500, 1_000, 77).unwrap();
    let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
    let x_train = pipeline.transform_dataset(&train).unwrap();
    let x_test = pipeline.transform_dataset(&test).unwrap();
    let labels: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
    let model = GhsomModel::train(
        &GhsomConfig::default()
            .with_tau1(0.3)
            .with_tau2(0.03)
            .with_epochs(3, 3)
            .with_seed(77),
        &x_train,
    )
    .unwrap();
    let units = model.total_units();
    let side = ((units as f64).sqrt().round() as usize).clamp(4, 16);
    let ghsom = HybridGhsomDetector::fit(model, &x_train, &labels, 0.99).unwrap();
    let flat = FlatSomDetector::fit(&x_train, &labels, side, side, 0.99, 78).unwrap();
    let kmeans = KMeansDetector::fit(&x_train, &labels, units.clamp(8, 64), 0.99, 79).unwrap();
    let grid = GrowingGridDetector::fit(&x_train, &labels, 0.3, 0.99, 80).unwrap();
    let normal_rows: Vec<Vec<f64>> = x_train
        .iter_rows()
        .zip(&labels)
        .filter(|(_, &l)| l == AttackCategory::Normal)
        .map(|(r, _)| r.to_vec())
        .collect();
    let x_normal = mathkit::Matrix::from_rows(normal_rows).unwrap();
    let pca = PcaDetector::fit(&x_normal, 10, 0.99, 81).unwrap();
    Bench {
        test,
        x_test,
        ghsom,
        flat,
        kmeans,
        grid,
        pca,
    }
}

fn evaluate(bench: &Bench, det: &dyn Detector) -> evalkit::BinaryMetrics {
    let mut m = evalkit::BinaryMetrics::new();
    for (x, rec) in bench.x_test.iter_rows().zip(bench.test.iter()) {
        m.record(rec.is_attack(), det.is_anomalous(x).unwrap());
    }
    m
}

#[test]
fn every_detector_beats_chance() {
    let bench = build();
    let detectors: Vec<(&str, &dyn Detector)> = vec![
        ("ghsom", &bench.ghsom),
        ("flat-som", &bench.flat),
        ("kmeans", &bench.kmeans),
        ("growing-grid", &bench.grid),
        ("pca", &bench.pca),
    ];
    for (name, det) in detectors {
        let m = evaluate(&bench, det);
        assert!(
            m.detection_rate() > 0.5,
            "{name}: detection rate {}",
            m.detection_rate()
        );
        assert!(
            m.false_positive_rate() < 0.5,
            "{name}: FPR {}",
            m.false_positive_rate()
        );
        assert!(m.mcc() > 0.2, "{name}: MCC {}", m.mcc());
    }
}

#[test]
fn ghsom_is_at_least_competitive_with_every_baseline() {
    let bench = build();
    let ghsom_f1 = evaluate(&bench, &bench.ghsom).f1();
    let baselines: Vec<(&str, &dyn Detector)> = vec![
        ("flat-som", &bench.flat),
        ("kmeans", &bench.kmeans),
        ("pca", &bench.pca),
    ];
    for (name, det) in baselines {
        let f1 = evaluate(&bench, det).f1();
        // The paper's qualitative claim: GHSOM wins or ties. Allow a small
        // tolerance — on some seeds a baseline lands within a point.
        assert!(
            ghsom_f1 >= f1 - 0.03,
            "{name} F1 {f1} clearly beats ghsom {ghsom_f1}"
        );
    }
}

#[test]
fn classifiers_agree_with_detectors_on_normal_verdicts() {
    let bench = build();
    let classifiers: Vec<(&str, &dyn Classifier)> = vec![
        ("ghsom", &bench.ghsom),
        ("flat-som", &bench.flat),
        ("kmeans", &bench.kmeans),
        ("growing-grid", &bench.grid),
    ];
    for (name, clf) in classifiers {
        for x in bench.x_test.iter_rows().take(300) {
            let is_anomalous = clf.is_anomalous(x).unwrap();
            let label = clf.classify(x).unwrap();
            // Contract: "not anomalous" implies a Normal classification.
            if !is_anomalous {
                assert_eq!(
                    label,
                    Some(AttackCategory::Normal),
                    "{name}: clean verdict with non-normal label"
                );
            } else {
                assert_ne!(
                    label,
                    Some(AttackCategory::Normal),
                    "{name}: anomalous verdict with normal label"
                );
            }
        }
    }
}

#[test]
fn confusion_matrix_of_ghsom_classifier_is_diagonal_heavy() {
    let bench = build();
    let class_names: Vec<String> = AttackCategory::ALL.iter().map(|c| c.to_string()).collect();
    // Index 5 = "unknown" predictions (dead leaves / QE overrides).
    let mut names = class_names.clone();
    names.push("unknown".into());
    let mut cm = evalkit::ConfusionMatrix::new(names);
    let cat_index = |c: AttackCategory| AttackCategory::ALL.iter().position(|&x| x == c).unwrap();
    for (x, rec) in bench.x_test.iter_rows().zip(bench.test.iter()) {
        let truth = cat_index(rec.category());
        let pred = match bench.ghsom.classify(x).unwrap() {
            Some(c) => cat_index(c),
            None => 5,
        };
        cm.record(truth, pred).unwrap();
    }
    assert_eq!(cm.total() as usize, bench.test.len());
    // The dominant classes must be recalled well.
    assert!(cm.recall(cat_index(AttackCategory::Dos)) > 0.85);
    assert!(cm.recall(cat_index(AttackCategory::Normal)) > 0.80);
}
