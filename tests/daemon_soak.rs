//! Deterministic soak of the serving daemon (ISSUE 9): three steady
//! clients stream score batches for tenant `alpha` while (a) a
//! retrained bundle swap lands in the spool mid-stream and (b) a
//! flooding client pipelines oversized bursts at tenant `burst` until
//! it draws `Overloaded` rejects. The invariants checked at the end:
//!
//! * **zero dropped verdicts** — every admitted batch produced exactly
//!   one verdict frame (steady clients are lock-step and must never see
//!   an error; the flooder's verdicts + rejects account for every batch
//!   it sent);
//! * **bounded queues** — per-tenant queue high-water never exceeds the
//!   configured capacity, and depth returns to zero at quiesce;
//! * **metrics reconcile exactly** — per-tenant records/batches/flagged/
//!   reject counters equal the client-side ledgers, and the swap shows
//!   up as a spool event.
//!
//! The final metrics scrape is written to `target/daemon-soak-metrics.txt`
//! (override with `GHSOM_SOAK_METRICS_OUT`) so CI can upload it as an
//! artifact.

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ghsom_daemon::protocol::{Response, VerdictPayload};
use ghsom_daemon::{Daemon, DaemonClient, DaemonConfig, DaemonError, RejectCode};
use ghsom_suite::prelude::*;

const STEADY_CLIENTS: usize = 3;
const STEADY_ROUNDS: usize = 50;
const STEADY_BATCH: usize = 128;
/// Steady round after which the retrained bundle must have swapped in —
/// clients stall there until it has, guaranteeing post-swap traffic.
const SWAP_GATE: usize = 40;
const FLOOD_PIPELINE: usize = 24;
const FLOOD_BATCH: usize = 256;
const FLOOD_MAX_ROUNDS: usize = 40;
const QUEUE_CAPACITY: usize = 4;

fn small_engine(seed: u64) -> (Engine, Vec<ConnectionRecord>) {
    let (train, test) = traffic::synth::kdd_train_test(400, 512, seed).unwrap();
    let config = EngineConfig::default()
        .with_ghsom(GhsomConfig::default().with_epochs(2, 2).with_seed(seed))
        .with_stream(4.0, 50);
    (
        Engine::fit(&config, &train).unwrap(),
        test.records().to_vec(),
    )
}

fn publish(spool: &std::path::Path, tenant: &str, bytes: &[u8]) {
    let tmp = spool.join(format!(".{tenant}.tmp"));
    std::fs::write(&tmp, bytes).unwrap();
    std::fs::rename(&tmp, spool.join(format!("{tenant}.bundle"))).unwrap();
}

fn scrape(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    text
}

fn metric(text: &str, line_start: &str) -> Option<f64> {
    text.lines()
        .find_map(|l| l.strip_prefix(line_start)?.trim().parse().ok())
}

fn tenant_metric(text: &str, name: &str, tenant: &str) -> f64 {
    metric(
        text,
        &format!("ghsomd_tenant_{name}{{tenant=\"{tenant}\"}}"),
    )
    .unwrap_or_else(|| panic!("metric ghsomd_tenant_{name} missing for {tenant}"))
}

#[derive(Default)]
struct SteadyLedger {
    batches: u64,
    records: u64,
    flagged: u64,
}

#[test]
fn soak_swap_and_flood_reconcile_exactly() {
    // -- setup: engines first, so training time doesn't sit inside the soak.
    let spool = std::env::temp_dir().join(format!("ghsom_daemon_soak_{}", std::process::id()));
    std::fs::remove_dir_all(&spool).ok();
    std::fs::create_dir_all(&spool).unwrap();
    let (alpha_v1, alpha_records) = small_engine(61);
    let (burst_engine, burst_records) = small_engine(62);
    let (alpha_v2, _) = small_engine(63);
    publish(&spool, "alpha", &alpha_v1.to_bytes());
    publish(&spool, "burst", &burst_engine.to_bytes());

    let daemon = Daemon::start(
        DaemonConfig::new(&spool)
            .with_queue_capacity(QUEUE_CAPACITY)
            .with_poll_interval(Duration::from_millis(100)),
    )
    .unwrap();
    let ingest = daemon.ingest_addr();
    let metrics_addr = daemon.metrics_addr();

    let swap_done = Arc::new(AtomicBool::new(false));
    let steady_batches_done = Arc::new(AtomicU64::new(0));
    let alpha_records = Arc::new(alpha_records);

    // -- steady clients: lock-step, must never see an error.
    let steady: Vec<_> = (0..STEADY_CLIENTS)
        .map(|c| {
            let records = Arc::clone(&alpha_records);
            let swap_done = Arc::clone(&swap_done);
            let done = Arc::clone(&steady_batches_done);
            std::thread::spawn(move || {
                let mut client = DaemonClient::connect(ingest).unwrap();
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                let mut ledger = SteadyLedger::default();
                for round in 0..STEADY_ROUNDS {
                    if round == SWAP_GATE {
                        // Don't let a fast run finish before the swap
                        // lands: the last rounds must cross it.
                        while !swap_done.load(Ordering::Acquire) {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                    let start = (c * 31 + round * 17) % (records.len() - STEADY_BATCH);
                    let batch = &records[start..start + STEADY_BATCH];
                    let verdicts = client
                        .score("alpha", batch)
                        .expect("steady client must never fail across a swap");
                    assert_eq!(verdicts.len(), STEADY_BATCH, "partial verdict batch");
                    ledger.batches += 1;
                    ledger.records += STEADY_BATCH as u64;
                    ledger.flagged += verdicts.iter().filter(|v| v.anomalous).count() as u64;
                    done.fetch_add(1, Ordering::Relaxed);
                }
                ledger
            })
        })
        .collect();

    // -- flooder: pipelines bursts until it has drawn Overloaded blood.
    let flooder = {
        let records = burst_records;
        std::thread::spawn(move || {
            let mut client = DaemonClient::connect(ingest).unwrap();
            client
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            let mut sent = 0u64;
            let mut verdict_batches = 0u64;
            let mut verdict_records = 0u64;
            let mut overloaded = 0u64;
            for _ in 0..FLOOD_MAX_ROUNDS {
                for _ in 0..FLOOD_PIPELINE {
                    client
                        .send_score_batch("burst", &records[..FLOOD_BATCH])
                        .unwrap();
                    sent += 1;
                }
                for _ in 0..FLOOD_PIPELINE {
                    match client.recv_response().unwrap() {
                        Response::Verdicts { verdicts, .. } => {
                            let VerdictPayload::Hybrid(v) = verdicts else {
                                panic!("score batch answered with stream verdicts");
                            };
                            assert_eq!(v.len(), FLOOD_BATCH, "partial verdict batch");
                            verdict_batches += 1;
                            verdict_records += v.len() as u64;
                        }
                        Response::Reject(reject) => {
                            assert_eq!(
                                reject.code,
                                RejectCode::Overloaded,
                                "flooder drew a non-overload reject: {reject:?}"
                            );
                            overloaded += 1;
                        }
                        Response::Pong => panic!("unsolicited pong"),
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
                if overloaded > 0 {
                    break;
                }
            }
            (sent, verdict_batches, verdict_records, overloaded)
        })
    };

    // -- mid-stream swap: wait for real traffic, then land the bundle.
    let deadline = Instant::now() + Duration::from_secs(60);
    while steady_batches_done.load(Ordering::Relaxed) < (STEADY_CLIENTS * 10) as u64 {
        assert!(Instant::now() < deadline, "steady clients made no progress");
        std::thread::sleep(Duration::from_millis(10));
    }
    publish(&spool, "alpha", &alpha_v2.to_bytes());
    let swap_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let text = scrape(metrics_addr);
        if metric(
            &text,
            "ghsomd_tenant_spool_events_total{tenant=\"alpha\",kind=\"swapped\"}",
        )
        .is_some_and(|v| v >= 1.0)
        {
            break;
        }
        assert!(Instant::now() < swap_deadline, "swap never landed:\n{text}");
        std::thread::sleep(Duration::from_millis(25));
    }
    swap_done.store(true, Ordering::Release);

    // -- drain the soak.
    let mut steady_total = SteadyLedger::default();
    for handle in steady {
        let ledger = handle.join().expect("steady client panicked");
        steady_total.batches += ledger.batches;
        steady_total.records += ledger.records;
        steady_total.flagged += ledger.flagged;
    }
    let (flood_sent, flood_verdicts, flood_records, flood_overloaded) =
        flooder.join().expect("flooder panicked");

    // -- quiesce: queues empty, connections drained.
    let quiesce_deadline = Instant::now() + Duration::from_secs(15);
    let final_text = loop {
        let text = scrape(metrics_addr);
        let drained = tenant_metric(&text, "queue_depth", "alpha") == 0.0
            && tenant_metric(&text, "queue_depth", "burst") == 0.0
            && metric(&text, "ghsomd_connections_open").unwrap_or(f64::NAN) == 0.0;
        if drained {
            break text;
        }
        assert!(
            Instant::now() < quiesce_deadline,
            "daemon never quiesced:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };

    // -- the artifact CI uploads.
    let out = std::env::var("GHSOM_SOAK_METRICS_OUT")
        .unwrap_or_else(|_| "target/daemon-soak-metrics.txt".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&out, &final_text).unwrap();

    // -- invariant 1: zero dropped verdicts.
    assert_eq!(
        steady_total.batches,
        (STEADY_CLIENTS * STEADY_ROUNDS) as u64,
        "a steady batch went missing"
    );
    assert_eq!(
        flood_verdicts + flood_overloaded,
        flood_sent,
        "flooder batches unaccounted for: {flood_verdicts} verdicts + \
         {flood_overloaded} rejects != {flood_sent} sent"
    );
    assert!(
        flood_overloaded > 0,
        "the flooder was never load-shed — admission control untested"
    );

    // -- invariant 2: bounded queues.
    let alpha_hw = tenant_metric(&final_text, "queue_high_water", "alpha");
    let burst_hw = tenant_metric(&final_text, "queue_high_water", "burst");
    assert!(
        alpha_hw <= QUEUE_CAPACITY as f64,
        "alpha queue high-water {alpha_hw} exceeds capacity {QUEUE_CAPACITY}"
    );
    assert!(
        burst_hw <= QUEUE_CAPACITY as f64,
        "burst queue high-water {burst_hw} exceeds capacity {QUEUE_CAPACITY}"
    );
    assert!(burst_hw >= 1.0, "flooded lane never queued anything");

    // -- invariant 3: metrics reconcile exactly with the client ledgers.
    assert_eq!(
        tenant_metric(&final_text, "records_total", "alpha"),
        steady_total.records as f64,
        "\n{final_text}"
    );
    assert_eq!(
        tenant_metric(&final_text, "batches_total", "alpha"),
        steady_total.batches as f64
    );
    assert_eq!(
        tenant_metric(&final_text, "flagged_total", "alpha"),
        steady_total.flagged as f64
    );
    assert_eq!(
        metric(
            &final_text,
            "ghsomd_tenant_rejects_total{tenant=\"alpha\",code=\"overloaded\"}"
        ),
        Some(0.0),
        "steady lock-step traffic must never be load-shed"
    );
    assert_eq!(
        tenant_metric(&final_text, "records_total", "burst"),
        flood_records as f64
    );
    assert_eq!(
        tenant_metric(&final_text, "batches_total", "burst"),
        flood_verdicts as f64
    );
    assert_eq!(
        metric(
            &final_text,
            "ghsomd_tenant_rejects_total{tenant=\"burst\",code=\"overloaded\"}"
        ),
        Some(flood_overloaded as f64)
    );
    assert_eq!(
        metric(
            &final_text,
            "ghsomd_tenant_rejected_records_total{tenant=\"burst\",code=\"overloaded\"}"
        ),
        Some((flood_overloaded * FLOOD_BATCH as u64) as f64)
    );
    assert_eq!(
        metric(&final_text, "ghsomd_rejects_unknown_tenant_total"),
        Some(0.0)
    );
    assert_eq!(metric(&final_text, "ghsomd_malformed_total"), Some(0.0));

    // A retained connection still works after the soak (nothing wedged).
    let mut client = DaemonClient::connect(ingest).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match client.score("alpha", &alpha_records[..8]) {
        Ok(verdicts) => assert_eq!(verdicts.len(), 8),
        Err(e) => panic!("post-soak scoring failed: {e}"),
    }
    drop(client);

    daemon.shutdown();
    std::fs::remove_dir_all(&spool).ok();
}

/// The flooder's rejects must be typed `Overloaded`, not `Internal` or a
/// closed connection — spot-check the lock-step client surface too.
#[test]
fn lock_step_overload_surfaces_as_typed_reject() {
    let spool = std::env::temp_dir().join(format!("ghsom_daemon_soak2_{}", std::process::id()));
    std::fs::remove_dir_all(&spool).ok();
    std::fs::create_dir_all(&spool).unwrap();
    let (engine, records) = small_engine(71);
    publish(&spool, "solo", &engine.to_bytes());

    // Queue capacity 1 and a pipelining client: some batch will bounce.
    let daemon = Daemon::start(
        DaemonConfig::new(&spool)
            .with_queue_capacity(1)
            .with_poll_interval(Duration::from_millis(100)),
    )
    .unwrap();
    let mut client = DaemonClient::connect(daemon.ingest_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let mut overloaded = 0u64;
    let mut verdicts = 0u64;
    for _ in 0..10 {
        let mut sent = 0;
        for _ in 0..16 {
            client.send_score_batch("solo", &records[..256]).unwrap();
            sent += 1;
        }
        for _ in 0..sent {
            match client.recv_response().unwrap() {
                Response::Verdicts { .. } => verdicts += 1,
                Response::Reject(reject) => {
                    assert_eq!(reject.code, RejectCode::Overloaded);
                    assert!(reject.req_id > 0, "reject must echo the batch req_id");
                    overloaded += 1;
                }
                Response::Pong => panic!("unsolicited pong"),
                other => panic!("unexpected response: {other:?}"),
            }
        }
        if overloaded > 0 {
            break;
        }
    }
    assert!(
        overloaded > 0,
        "capacity-1 queue never shed a 16-deep burst"
    );
    assert!(verdicts > 0, "admitted batches must still be answered");

    // The same connection serves lock-step traffic afterwards.
    let ok = client.score("solo", &records[..8]).unwrap();
    assert_eq!(ok.len(), 8);

    // And a genuinely unknown tenant is its own typed reject.
    let err = client.score("nobody", &records[..8]).unwrap_err();
    assert!(matches!(
        &err,
        DaemonError::Rejected {
            code: RejectCode::UnknownTenant,
            ..
        }
    ));

    daemon.shutdown();
    std::fs::remove_dir_all(&spool).ok();
}
