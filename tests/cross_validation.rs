//! Cross-validated evaluation: ties `evalkit::crossval` to the full
//! detector stack and checks that detection quality is stable across
//! folds (no single lucky split).

use evalkit::crossval::stratified_kfold;
use ghsom_suite::prelude::*;

#[test]
fn stratified_cv_of_the_hybrid_detector_is_stable() {
    // One mixed dataset; CV splits it into train/test folds.
    let mut gen =
        traffic::synth::TrafficGenerator::new(traffic::synth::MixSpec::kdd_train(), 31).unwrap();
    let all = gen.generate(1_800);
    let cat_index = |c: AttackCategory| AttackCategory::ALL.iter().position(|&x| x == c).unwrap();
    let labels_idx: Vec<usize> = all.iter().map(|r| cat_index(r.category())).collect();

    let folds = stratified_kfold(&labels_idx, 3, 7).unwrap();
    let mut f1s = Vec::new();
    for (fold_no, fold) in folds.iter().enumerate() {
        let train: Dataset = fold
            .train
            .iter()
            .map(|&i| all.records()[i].clone())
            .collect();
        let test: Dataset = fold
            .test
            .iter()
            .map(|&i| all.records()[i].clone())
            .collect();

        let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train).unwrap();
        let x_train = pipeline.transform_dataset(&train).unwrap();
        let x_test = pipeline.transform_dataset(&test).unwrap();
        let cats: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
        let model = GhsomModel::train(
            &GhsomConfig::default()
                .with_tau1(0.3)
                .with_tau2(0.03)
                .with_epochs(2, 2)
                .with_seed(31 + fold_no as u64),
            &x_train,
        )
        .unwrap();
        let det = HybridGhsomDetector::fit(model, &x_train, &cats, 0.99).unwrap();

        let mut m = evalkit::BinaryMetrics::new();
        for (x, rec) in x_test.iter_rows().zip(test.iter()) {
            m.record(rec.is_attack(), det.is_anomalous(x).unwrap());
        }
        f1s.push(m.f1());
    }

    // Every fold performs well, and the spread across folds is small.
    for (i, &f1) in f1s.iter().enumerate() {
        assert!(f1 > 0.95, "fold {i} F1 {f1}");
    }
    let mean = f1s.iter().sum::<f64>() / f1s.len() as f64;
    let spread = f1s.iter().map(|f| (f - mean).abs()).fold(0.0f64, f64::max);
    assert!(spread < 0.03, "fold F1 spread {spread} (values {f1s:?})");
}

#[test]
fn cv_folds_respect_class_stratification_end_to_end() {
    let mut gen =
        traffic::synth::TrafficGenerator::new(traffic::synth::MixSpec::kdd_train(), 32).unwrap();
    let all = gen.generate(900);
    let cat_index = |c: AttackCategory| AttackCategory::ALL.iter().position(|&x| x == c).unwrap();
    let labels_idx: Vec<usize> = all.iter().map(|r| cat_index(r.category())).collect();
    let folds = stratified_kfold(&labels_idx, 3, 9).unwrap();

    let overall_normal =
        labels_idx.iter().filter(|&&c| c == 0).count() as f64 / labels_idx.len() as f64;
    for fold in &folds {
        let fold_normal = fold.test.iter().filter(|&&i| labels_idx[i] == 0).count() as f64
            / fold.test.len() as f64;
        assert!(
            (fold_normal - overall_normal).abs() < 0.05,
            "fold normal fraction {fold_normal} vs overall {overall_normal}"
        );
    }
}
