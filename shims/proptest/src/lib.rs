//! Offline stand-in for the `proptest` crate.
//!
//! Provides the API surface this workspace's property tests use — the
//! [`Strategy`] trait, range/`Just`/tuple/`prop::collection::vec`
//! strategies, `prop_oneof!`, `any::<T>()`, the [`proptest!`] macro and the
//! `prop_assert*` family — implemented as plain random sampling over a
//! deterministic RNG. Failing cases are reported by panic with the sampled
//! case number; there is **no shrinking**, which keeps the shim tiny at the
//! cost of less minimal counterexamples.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The deterministic RNG driving every test case.
#[derive(Debug, Clone)]
pub struct TestRng(pub StdRng);

impl TestRng {
    /// A fixed-seed RNG: property tests are reproducible run-to-run.
    pub fn deterministic() -> Self {
        TestRng(StdRng::seed_from_u64(0x70726F70_74657374))
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated value through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds the generated value into a strategy-producing `f` and samples
    /// the result (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                rng.0.gen_range(lo..=hi)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.0.gen_range(-300.0..300.0f64);
        let sign = if rng.0.gen::<bool>() { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

/// Mirror of `proptest::bool`.
pub mod bool {
    /// The uniform `bool` strategy, as a constant.
    pub const ANY: crate::Any<core::primitive::bool> = crate::Any(std::marker::PhantomData);
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice between boxed alternatives — the engine of
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.0.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Element-count specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.0.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The usual glob import for tests.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
        Union,
    };
}

/// Asserts a condition inside a property; panics with the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$( $crate::Strategy::boxed($strat) ),+])
    };
}

/// Declares property tests: each `fn` runs its body over `cases` sampled
/// inputs (default 64, override with `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unused_variables, unused_mut)]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic();
                for __case in 0..__cfg.cases {
                    let ($($pat,)*) =
                        ($( $crate::Strategy::sample(&($strat), &mut __rng), )*);
                    $body
                }
            }
        )*
    };
}
