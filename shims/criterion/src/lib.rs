//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset of the criterion API this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, throughput
//! annotations, `bench_function`/`bench_with_input`, `Bencher::iter`).
//! Measurement is deliberately simple: an adaptive warm-up picks an
//! iteration count targeting a fixed sample duration, then a fixed number
//! of samples are timed and summarized by median. Results print to stdout
//! and append to `target/shim-criterion/<group>.json` for downstream
//! tooling (e.g. `BENCH_1.json` perf trajectories).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration measurement driver passed to bench closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, storing the median ns/iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: find an iteration count that takes ≥ ~25 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(25) || iters >= 1 << 24 {
                break;
            }
            let scale = if elapsed.as_nanos() == 0 {
                100
            } else {
                (Duration::from_millis(30).as_nanos() / elapsed.as_nanos()).max(2) as u64
            };
            iters = iters.saturating_mul(scale).min(1 << 24);
        }
        // Sampling.
        const SAMPLES: usize = 7;
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = samples[SAMPLES / 2];
    }
}

/// Throughput annotation for a group (reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One measured result.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    id: String,
    ns_per_iter: f64,
    throughput: Option<Throughput>,
}

/// The top-level harness state.
#[derive(Debug, Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        run_one(self, String::new(), id.to_string(), None, f);
    }

    /// Prints the summary table and writes the JSON sidecar files.
    pub fn final_summary(&self) {
        let mut by_group: std::collections::BTreeMap<&str, Vec<&Record>> = Default::default();
        for r in &self.records {
            by_group.entry(r.group.as_str()).or_default().push(r);
        }
        for (group, records) in by_group {
            let path = sidecar_path(group);
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let mut json = String::from("[\n");
            for (i, r) in records.iter().enumerate() {
                if i > 0 {
                    json.push_str(",\n");
                }
                json.push_str(&format!(
                    "  {{\"group\": \"{}\", \"id\": \"{}\", \"ns_per_iter\": {:.1}{}}}",
                    r.group,
                    r.id,
                    r.ns_per_iter,
                    match r.throughput {
                        Some(Throughput::Elements(n)) => format!(
                            ", \"elements\": {n}, \"elements_per_sec\": {:.1}",
                            n as f64 / (r.ns_per_iter * 1e-9)
                        ),
                        Some(Throughput::Bytes(n)) => format!(", \"bytes\": {n}"),
                        None => String::new(),
                    }
                ));
            }
            json.push_str("\n]\n");
            let _ = std::fs::write(&path, json);
            println!("# results written to {}", path.display());
        }
    }
}

fn sidecar_path(group: &str) -> std::path::PathBuf {
    let safe: String = group
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let name = if safe.is_empty() {
        "ungrouped".to_string()
    } else {
        safe
    };
    std::path::PathBuf::from("target/shim-criterion").join(format!("{name}.json"))
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &mut Criterion,
    group: String,
    id: String,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        ns_per_iter: f64::NAN,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.clone()
    } else {
        format!("{group}/{id}")
    };
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3} Melem/s)", n as f64 / (b.ns_per_iter * 1e-9) / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.3} MiB/s)",
                n as f64 / (b.ns_per_iter * 1e-9) / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("{label:<48} {:>14.1} ns/iter{extra}", b.ns_per_iter);
    criterion.records.push(Record {
        group,
        id,
        ns_per_iter: b.ns_per_iter,
        throughput,
    });
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benches with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for criterion compatibility; the shim's sample count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility; the shim's timing is adaptive.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benches a function within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(
            self.criterion,
            self.name.clone(),
            id.into().id,
            self.throughput,
            f,
        );
        self
    }

    /// Benches a function parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            self.criterion,
            self.name.clone(),
            id.into().id,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (results are flushed by `final_summary`).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}
