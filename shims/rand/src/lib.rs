//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Implements the subset this workspace uses: a seedable [`rngs::StdRng`]
//! (xoshiro256++ seeded through SplitMix64, like rand's `seed_from_u64`),
//! the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits with `gen`, `gen_range`
//! and `gen_bool`, and [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The streams are *not* bit-compatible with the real `rand` crate — the
//! workspace only relies on determinism under a fixed seed and on sound
//! uniform distributions, both of which hold.

#![forbid(unsafe_code)]

/// Low-level entropy source: 64 uniformly random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from a generator's "standard" distribution:
/// uniform over `[0, 1)` for floats, uniform over all values for integers
/// and `bool`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1) on the dyadic grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over a half-open or inclusive range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Rejection-free 128-bit multiply-shift keeps bias below
                // 2^-64 — more than uniform enough here.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that can be sampled uniformly, producing values of type `T`.
///
/// A single blanket impl per range shape (as in real rand) so that call
/// sites like `centers[rng.gen_range(0..4)]` infer the element type from
/// the surrounding context.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Fast, tiny, passes BigCrush; seeded through SplitMix64 so that
    /// similar seeds produce unrelated streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u64;
                let j = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let i = rng.gen_range(0..10usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1_000 {
            let x = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle changed order");
    }
}
