//! Offline stand-in for the `serde` crate.
//!
//! The build container has no access to crates.io, so this workspace ships a
//! small self-contained serialization framework under the same crate name.
//! It keeps the parts of serde's *surface* the workspace uses — the
//! [`Serialize`]/[`Deserialize`] traits, `#[derive(Serialize, Deserialize)]`
//! (including `#[serde(with = "module")]` on fields), and externally-tagged
//! enum representation — but the data model is a simple owned [`Value`]
//! tree instead of serde's visitor machinery. `serde_json` (also shimmed)
//! renders that tree to and from JSON text.
//!
//! The representation is intentionally compatible with what real serde +
//! serde_json would produce for the derives this workspace contains:
//! structs become JSON objects, unit enum variants become strings, and
//! data-carrying variants become `{"Variant": {...}}` objects.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, enum tags).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `true` when this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization/deserialization error: a message describing the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a required struct field in a serialized map.
pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field `{key}`")))
}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the value tree.
    ///
    /// # Errors
    ///
    /// [`Error`] when the tree does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("integer {n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("integer {n} out of range"))),
                    _ => Err(Error(format!("expected integer, got {v:?}"))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("integer {n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("integer {n} out of range"))),
                    _ => Err(Error(format!("expected integer, got {v:?}"))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error(format!("expected number, got {v:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error(format!("expected sequence, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_seq()
                    .ok_or_else(|| Error(format!("expected tuple sequence, got {v:?}")))?;
                let expected = [$( stringify!($n) ),+].len();
                if items.len() != expected {
                    return Err(Error(format!(
                        "expected tuple of {expected}, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
