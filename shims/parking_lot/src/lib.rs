//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches parking_lot's ergonomics where they differ from std: `lock()`
//! returns the guard directly (no poisoning `Result`). A poisoned std
//! mutex is recovered transparently, mirroring parking_lot's behaviour of
//! not poisoning at all.

#![forbid(unsafe_code)]

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader–writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
