//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! shim.
//!
//! The container this workspace builds in has no crates.io access, so this
//! macro is written against `proc_macro` alone — no `syn`, no `quote`. It
//! parses the subset of Rust item grammar the workspace actually contains:
//!
//! * structs with named fields (optionally generic over type parameters),
//! * unit structs,
//! * enums whose variants are unit or struct-like (named fields),
//! * `#[serde(with = "module")]` on named fields, which routes the field
//!   through `module::serialize(&field) -> serde::Value` and
//!   `module::deserialize(&serde::Value) -> Result<T, serde::Error>`.
//!
//! Tuple structs and tuple enum variants are rejected with a compile error
//! naming the offending item, so unsupported shapes fail loudly instead of
//! silently misserializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    with: Option<String>,
}

#[derive(Debug)]
struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

#[derive(Debug)]
enum Shape {
    Struct(Vec<Field>),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated code parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated code parses")
}

// --- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other}"),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i);

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                generics,
                shape: Shape::Struct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                generics,
                shape: Shape::UnitStruct,
            },
            _ => panic!("serde derive: tuple struct `{name}` is not supported"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                generics,
                shape: Shape::Enum(parse_variants(g.stream())),
            },
            _ => panic!("serde derive: malformed enum `{name}`"),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

/// Skips leading outer attributes (`#[...]`) and visibility (`pub`,
/// `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                match tokens.get(*i) {
                    Some(TokenTree::Group(_)) => *i += 1,
                    _ => panic!("serde derive: malformed attribute"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `<T, U>` type parameters (lifetimes/const generics unsupported).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return params,
    }
    *i += 1;
    let mut depth = 1usize;
    let mut expect_param = true;
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => expect_param = true,
            Some(TokenTree::Ident(id)) if expect_param && depth == 1 => {
                params.push(id.to_string());
                expect_param = false;
            }
            Some(_) => {}
            None => panic!("serde derive: unterminated generics"),
        }
        *i += 1;
    }
    params
}

/// Parses the body of a braced struct / struct variant into fields.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let mut with = None;
        // Attributes: capture #[serde(with = "...")], skip everything else.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    i += 1;
                    match tokens.get(i) {
                        Some(TokenTree::Group(g)) => {
                            if let Some(w) = parse_serde_with(g.stream()) {
                                with = Some(w);
                            }
                            i += 1;
                        }
                        _ => panic!("serde derive: malformed field attribute"),
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, found {other}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle = 0i64;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, with });
    }
    fields
}

/// Extracts `with = "path"` from the inside of a `#[serde(...)]` attribute,
/// if this attribute is one.
fn parse_serde_with(stream: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) => g.stream().into_iter().collect::<Vec<_>>(),
        _ => return None,
    };
    match (inner.first(), inner.get(1), inner.get(2)) {
        (
            Some(TokenTree::Ident(key)),
            Some(TokenTree::Punct(eq)),
            Some(TokenTree::Literal(lit)),
        ) if key.to_string() == "with" && eq.as_char() == '=' => {
            let s = lit.to_string();
            Some(s.trim_matches('"').to_string())
        }
        _ => panic!(
            "serde derive: only `#[serde(with = \"module\")]` is supported, got `{:?}`",
            inner.iter().map(ToString::to_string).collect::<Vec<_>>()
        ),
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde derive: tuple variant `{name}` is not supported")
            }
            _ => None,
        };
        // Skip an optional discriminant `= expr` and the trailing comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// --- code generation -------------------------------------------------------

fn generics_decl(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let decl = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect::<Vec<_>>()
            .join(", ");
        let use_ = item.generics.join(", ");
        (format!("<{decl}>"), format!("<{use_}>"))
    }
}

fn ser_field_expr(field: &Field, access: &str) -> String {
    match &field.with {
        Some(path) => format!("{path}::serialize({access})"),
        None => format!("::serde::Serialize::to_value({access})"),
    }
}

fn de_field_expr(field: &Field, map_var: &str) -> String {
    let name = &field.name;
    match &field.with {
        Some(path) => {
            format!("{name}: {path}::deserialize(::serde::map_get({map_var}, \"{name}\")?)?")
        }
        None => format!(
            "{name}: ::serde::Deserialize::from_value(::serde::map_get({map_var}, \"{name}\")?)?"
        ),
    }
}

fn generate_serialize(item: &Item) -> String {
    let (impl_g, ty_g) = generics_decl(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Struct(fields) => {
            let mut s = String::from("let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                let expr = ser_field_expr(f, &format!("&self.{}", f.name));
                s.push_str(&format!(
                    "__m.push((\"{}\".to_string(), {expr}));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Map(__m)");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    Some(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            let expr = ser_field_expr(f, &f.name);
                            pushes.push_str(&format!(
                                "__m.push((\"{}\".to_string(), {expr}));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Value::Map(__m))])\n\
                             }}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_g} ::serde::Serialize for {name}{ty_g} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let (impl_g, ty_g) = generics_decl(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Struct(fields) => {
            let inits = fields
                .iter()
                .map(|f| de_field_expr(f, "__m"))
                .collect::<Vec<_>>()
                .join(",\n");
            format!(
                "let __m = __v.as_map().ok_or_else(|| \
                 ::serde::Error::custom(\"expected map for {name}\"))?;\n\
                 Ok({name} {{\n{inits}\n}})"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.fields {
                    None => {
                        unit_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n", v = v.name))
                    }
                    Some(fields) => {
                        let inits = fields
                            .iter()
                            .map(|f| de_field_expr(f, "__m"))
                            .collect::<Vec<_>>()
                            .join(",\n");
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __m = __inner.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"expected map for {name}::{v}\"))?;\n\
                             Ok({name}::{v} {{\n{inits}\n}})\n\
                             }}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant `{{__other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant `{{__other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::Error::custom(format!(\
                 \"expected {name}, got {{__other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_g} ::serde::Deserialize for {name}{ty_g} {{\n\
         fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
