//! Offline stand-in for `serde_json`: renders the serde shim's
//! [`serde::Value`] tree to JSON text and parses it back.
//!
//! Numbers print via Rust's shortest-roundtrip float formatting, so a
//! serialize → deserialize cycle reproduces every finite `f64` bit-exactly
//! (non-finite floats serialize as `null`, matching real serde_json).

use serde::{Deserialize, Error, Serialize, Value};

/// The error type (shared with the serde shim).
pub use serde::Error as JsonError;

/// Serializes any [`Serialize`] value to compact JSON text.
///
/// # Errors
///
/// Never fails for the shim's value tree; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the shim's value tree.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error(format!("trailing characters at byte {}", p.i)));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest representation that parses back to the
        // same bits, and always contains `.` or `e` so the parser keeps the
        // value a float.
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && matches!(self.s[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found `{:?}`",
                b as char,
                self.i,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.i
            ))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.i)))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'-' | b'+' | b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| Error("invalid utf8 in number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|n| Value::I64(-(n as i64)))
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.s.len() {
                                return Err(Error("truncated \\u escape".to_string()));
                            }
                            let hex = std::str::from_utf8(&self.s[self.i + 1..self.i + 5])
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".to_string()))?,
                            );
                            self.i += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape `{:?}`", other)));
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| Error("invalid utf8 in string".to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.i
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.i
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert!(from_str::<bool>("true").unwrap());
        let x = 0.1f64 + 0.2;
        let s = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![1.0f64, -2.5, 3.25];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
        let t: (usize, f64) = (7, 0.5);
        let s = to_string(&t).unwrap();
        assert_eq!(from_str::<(usize, f64)>(&s).unwrap(), t);
        let o: Option<String> = Some("a \"quoted\" string\n".to_string());
        let s = to_string(&o).unwrap();
        assert_eq!(from_str::<Option<String>>(&s).unwrap(), o);
        assert_eq!(from_str::<Option<String>>("null").unwrap(), None);
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u64> = from_str(" [ 1 , 2 ,\n 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
