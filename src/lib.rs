//! # ghsom-suite
//!
//! A full Rust reproduction of *"Network traffic anomaly detection based on
//! growing hierarchical SOM"* (DSN 2013): the GHSOM algorithm, the network
//! traffic substrate it is evaluated on, the detection layer, the
//! comparison baselines, and the evaluation harness that regenerates the
//! paper-style tables and figures.
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`core`](mod@core) | `ghsom-core` | the GHSOM itself (τ₁/τ₂ growth, hierarchy, projection) |
//! | [`serve`] | `ghsom-serve` | compiled serving arena + versioned binary model snapshots |
//! | [`som`] | `som` | Kohonen SOM substrate (grids, kernels, training) |
//! | [`traffic`] | `traffic` | KDD-style records, attack generators, flows, CSV |
//! | [`featurize`] | `featurize` | encoders, scalers, record→vector pipeline |
//! | [`detect`] | `detect` | GHSOM detectors + flat-SOM/k-means/growing-grid/PCA baselines |
//! | [`evalkit`] | `evalkit` | metrics, ROC/AUC, confusion matrices, tables |
//! | [`mathkit`] | `mathkit` | vectors, matrices, stats, samplers, PCA |
//!
//! # Quickstart
//!
//! The [`serve::Engine`] facade owns the whole record → vector →
//! hierarchy-walk → verdict path:
//!
//! ```
//! use ghsom_suite::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (train, test) = traffic::synth::kdd_train_test(1_000, 500, 42)?;
//! let engine = Engine::fit(&EngineConfig::default(), &train)?;
//! let verdict = engine.score_record(&test.records()[0])?;
//! # let _ = (verdict.score, verdict.anomalous, verdict.category);
//! # Ok(())
//! # }
//! ```
//!
//! `verdict` carries the anomaly score, the binary flag and the predicted
//! attack category from one hierarchy traversal. From the same engine:
//! [`serve::Engine::score_records`] batches whole record slices,
//! [`serve::Engine::observe`] streams with an adaptive `mean + k·σ`
//! threshold, and [`serve::Engine::save`]/[`serve::Engine::load`] persist
//! **one bundle artifact** (fitted pipeline + compiled arena + detector
//! state, checksummed and validated on load) that a serving process loads
//! with no access to the training objects. [`serve::EngineRegistry`] runs
//! many named engines side by side with zero-downtime
//! [`serve::EngineRegistry::swap`] rollover.
//!
//! Each stage (pipeline, model, detector) remains independently usable —
//! fit them yourself and assemble with
//! `Engine::builder().pipeline(p).model(&m).detector(&d).build()`; see
//! the crate docs of [`featurize`], [`core`](mod@core) and [`detect`].
//!
//! See `examples/` for runnable end-to-end scenarios (including the
//! multi-tenant `serve_daemon`) and `crates/bench/src/bin/repro.rs` for
//! the table/figure reproduction harness. Two repo-level documents
//! complement these API docs: **`docs/ARCHITECTURE.md`** (crate map and
//! the record→matrix→arena-walk→verdict serving data flow) and
//! **`docs/SNAPSHOT_FORMAT.md`** (the normative binary snapshot/bundle
//! wire-format spec).
//!
//! # Performance: the batched BMU engine
//!
//! Best-matching-unit search dominates both training and detection. Every
//! bulk path in this workspace — batch SOM training, GHSOM growth,
//! hierarchy projection, detector scoring, sweeps and cross-validation —
//! runs on a batched engine ([`mathkit::batch`], [`som::map::Som::bmu_batch`],
//! `ghsom_core::GhsomModel::project_batch`) that uses the Gram identity
//! `‖x−w‖² = ‖x‖² − 2·x·w + ‖w‖²` over a tiled, transposed codebook with
//! cached row norms. On the 32×32-map / 41-dim / 10k-sample benchmark the
//! batched engine is ~9.5× the seed's naive per-row loop single-threaded
//! (`cargo bench -p ghsom-bench --bench bmu_scaling`; tracked in
//! `BENCH_1.json`).
//!
//! # Serving: the compiled inference plane
//!
//! Training and serving use different representations. A trained
//! [`core::GhsomModel`] compiles into a [`serve::CompiledGhsom`] — one
//! flat, immutable arena (group-tiled transposed codebooks with baked-in
//! half-norms, flat index tables instead of a node tree) whose
//! projections are **bit-identical** to the tree's. The arena persists as
//! a versioned, checksummed **binary snapshot**
//! ([`serve::CompiledGhsom::save`]/[`serve::CompiledGhsom::load`], plus
//! the zero-copy [`serve::SnapshotView`] for mmap-ed model files; JSON
//! serde remains the debug/interchange path). Every GHSOM detector is
//! generic over the representation through [`core::Scorer`] — fit on the
//! tree, move the fitted thresholds/labels to the compiled plane with
//! `with_scorer`, and the hot paths (`score_all`,
//! `StreamingDetector::observe_batch`) run on the arena. See
//! `BENCH_2.json` for the measured tree-vs-compiled serving numbers and
//! `BENCH_3.json` for end-to-end engine throughput and bundle load
//! latency (cold read vs memory-mapped).
//!
//! # Featurization: the batched columnar plane
//!
//! The record→vector boundary is batched too: serving paths transform
//! whole record slices into a reused [`featurize::FeatureMatrix`]
//! ([`featurize::KddPipeline::transform_batch`] — per-stage column
//! kernels, no per-record allocation) and hand the buffer to the arena
//! walk as a borrowed [`mathkit::MatrixView`], fusing transform and
//! traversal with no owned intermediate. Batched output is
//! **bit-identical** to the per-record transform (property-tested).
//! `BENCH_4.json` tracks the end-to-end effect on
//! [`serve::Engine::score_records`].
//!
//! The **`rayon` cargo feature** (default on) additionally parallelizes
//! those paths over sample chunks and sibling maps using std scoped
//! threads (the offline build container has no rayon crate; the feature
//! name is kept for familiarity). Parallelism is *bit-deterministic*:
//! work is split into fixed-size chunks merged in submission order, so
//! results are identical at any thread count. For strictly single-thread
//! runs either build with `--no-default-features` or set the
//! `GHSOM_THREADS=1` environment variable at runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use detect;
pub use evalkit;
pub use featurize;
pub use ghsom_core as core;
pub use ghsom_serve as serve;
pub use mathkit;
pub use som;
pub use traffic;

/// The most common imports for building a detection pipeline.
pub mod prelude {
    pub use detect::prelude::*;
    pub use featurize::{FeatureMatrix, KddPipeline, PipelineConfig, ScalingKind};
    pub use ghsom_core::{GhsomConfig, GhsomModel, Scorer};
    pub use ghsom_serve::{
        Compile, CompiledGhsom, Engine, EngineBuilder, EngineConfig, EngineRegistry, MappedFile,
        ServeError, ShardedEngine, SnapshotView, SpoolEvent, SpoolWatcher,
    };
    pub use traffic::{self, AttackCategory, AttackType, ConnectionRecord, Dataset};
}
