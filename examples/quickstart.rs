//! Quickstart: train a GHSOM on synthetic KDD-style traffic and detect
//! anomalies in a held-out test set.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ghsom_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: KDD-99-style training mix and corrected-test mix (the test
    //    mix contains attack types that never occur in training).
    println!("generating synthetic KDD-style traffic …");
    let (train, test) = traffic::synth::kdd_train_test(4_000, 2_000, 42)?;
    println!(
        "  train: {} records ({} attacks), test: {} records ({} attacks)",
        train.len(),
        train.attack_count(),
        test.len(),
        test.attack_count()
    );

    // 2. Features: 38 scaled continuous features + one-hot categoricals.
    let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train)?;
    let x_train = pipeline.transform_dataset(&train)?;
    let x_test = pipeline.transform_dataset(&test)?;
    println!("  feature vectors: {} dimensions", pipeline.output_dim());

    // 3. Model: grow the hierarchical SOM.
    println!("training GHSOM (tau1 = 0.3, tau2 = 0.03) …");
    let config = GhsomConfig::default()
        .with_tau1(0.3)
        .with_tau2(0.03)
        .with_seed(42);
    let model = GhsomModel::train(&config, &x_train)?;
    let stats = model.topology_stats();
    println!(
        "  grown: {} maps, {} units, depth {}",
        stats.maps, stats.total_units, stats.max_depth
    );

    // 4. Detector: unit labels + QE threshold at the 99th percentile of
    //    normal training scores.
    let labels: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
    let detector = HybridGhsomDetector::fit(model, &x_train, &labels, 0.99)?;

    // 5. Evaluate on the held-out test set.
    let mut metrics = evalkit::BinaryMetrics::new();
    for (x, record) in x_test.iter_rows().zip(test.iter()) {
        metrics.record(record.is_attack(), detector.is_anomalous(x)?);
    }
    println!("\nresults on {} held-out records:", metrics.total());
    println!("  detection rate       {:.4}", metrics.detection_rate());
    println!(
        "  false positive rate  {:.4}",
        metrics.false_positive_rate()
    );
    println!("  precision            {:.4}", metrics.precision());
    println!("  F1                   {:.4}", metrics.f1());
    println!("  accuracy             {:.4}", metrics.accuracy());
    Ok(())
}
