//! A miniature multi-tenant detection daemon: the deployment shape the
//! serving plane was built for.
//!
//! The example plays both sides of the artifact boundary:
//!
//! 1. **Training side** — fits one [`Engine`] per tenant (different
//!    traffic mixes/seeds) and writes each as a **bundle** file
//!    (`<tenant>.bundle`: fitted pipeline + compiled arena + detector
//!    state in one checksummed snapshot) into a spool directory.
//! 2. **Daemon side** — scans the directory, **memory-maps** every
//!    bundle ([`MappedFile`]), validates it zero-copy
//!    ([`SnapshotView::parse`]) before committing to a heap decode, and
//!    deploys the engines into an [`EngineRegistry`]. It then scores an
//!    interleaved record stream against per-tenant engines, and —
//!    mid-stream — retrains one tenant and [`EngineRegistry::swap`]s the
//!    new engine in with traffic still flowing (zero downtime: in-flight
//!    batches finish on the engine they started with).
//!
//! ```text
//! cargo run --release --example serve_daemon
//! ```

use std::time::Instant;

use ghsom_suite::prelude::*;

/// Tenants with deliberately different traffic profiles.
const TENANTS: [(&str, u64); 3] = [("edge-eu", 11), ("edge-us", 23), ("core-dc", 37)];

fn fit_tenant_engine(seed: u64, n_train: usize) -> Result<Engine, Box<dyn std::error::Error>> {
    let (train, _) = traffic::synth::kdd_train_test(n_train, 10, seed)?;
    let config = EngineConfig::default()
        .with_ghsom(GhsomConfig::default().with_epochs(3, 3).with_seed(seed))
        .with_stream(4.0, 200);
    Ok(Engine::fit(&config, &train)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Training side: one bundle artifact per tenant -------------------
    let spool = std::env::temp_dir().join("ghsom_serve_daemon_spool");
    std::fs::create_dir_all(&spool)?;
    println!(
        "fitting and spooling tenant bundles to {} …",
        spool.display()
    );
    for (tenant, seed) in TENANTS {
        let engine = fit_tenant_engine(seed, 2_000)?;
        let path = spool.join(format!("{tenant}.bundle"));
        engine.save(&path)?;
        println!(
            "  {tenant}: {} maps / {} units, {:.2} MiB bundle",
            engine.compiled().map_count(),
            engine.compiled().total_units(),
            std::fs::metadata(&path)?.len() as f64 / (1024.0 * 1024.0),
        );
    }

    // --- Daemon side: mmap + validate + deploy ---------------------------
    println!("\ndaemon start: scanning spool directory …");
    let registry = EngineRegistry::new();
    for entry in std::fs::read_dir(&spool)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("bundle") {
            continue;
        }
        let tenant = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or("bundle file without a stem")?
            .to_string();
        let t0 = Instant::now();
        // Map the artifact and validate it in place (zero-copy, page
        // cache shared with every other process serving this bundle)…
        let mapped = MappedFile::open(&path)?;
        let view = SnapshotView::parse(&mapped)?;
        let validated_us = t0.elapsed().as_micros();
        // …then decode the full engine (pipeline + detector + arena) out
        // of the same mapped bytes.
        let engine = Engine::from_bytes(&mapped)?;
        let loaded_us = t0.elapsed().as_micros();
        println!(
            "  deployed `{tenant}`: {} units validated in {validated_us} µs, engine up in {loaded_us} µs",
            view.total_units(),
        );
        registry.deploy(&tenant, engine);
    }
    assert_eq!(registry.len(), TENANTS.len());

    // --- Serve an interleaved stream -------------------------------------
    let (_, stream_data) = traffic::synth::kdd_train_test(10, 6_000, 99)?;
    let records = stream_data.records();
    println!(
        "\nscoring {} records round-robin across tenants …",
        records.len()
    );
    let t0 = Instant::now();
    let mut flagged = 0usize;
    for (i, chunk) in records.chunks(512).enumerate() {
        let tenant = TENANTS[i % TENANTS.len()].0;
        // Re-resolve per batch: this is what makes swaps visible.
        let engine = registry.get(tenant)?;
        flagged += engine
            .observe_records(chunk)?
            .iter()
            .filter(|v| v.anomalous)
            .count();

        // Mid-stream rollover for one tenant: retrain on "fresh" traffic
        // and swap with zero downtime.
        if i == 5 {
            let retrained = fit_tenant_engine(TENANTS[0].1 ^ 0xFF, 1_500)?;
            let old = registry.swap(TENANTS[0].0, retrained)?;
            println!(
                "  swapped `{}` mid-stream (old engine had seen {} records; swap did not stall scoring)",
                TENANTS[0].0,
                old.stream_stats().seen,
            );
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    println!(
        "  {} records in {:.3} s ({:.0} records/s through full record→verdict engines), {} flagged",
        records.len(),
        elapsed,
        records.len() as f64 / elapsed,
        flagged,
    );

    for tenant in registry.tenants() {
        let stats = registry.get(&tenant)?.stream_stats();
        println!(
            "  `{tenant}`: seen {} flagged {} (baseline over {} tracked scores)",
            stats.seen, stats.flagged, stats.tracked,
        );
    }

    // Retire everything and clean up the spool.
    for (tenant, _) in TENANTS {
        registry.retire(tenant)?;
    }
    assert!(registry.is_empty());
    std::fs::remove_dir_all(&spool).ok();
    println!("\ndaemon shut down cleanly");
    Ok(())
}
