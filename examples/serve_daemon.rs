//! A miniature hot-reloading multi-tenant detection daemon: the
//! deployment shape the serving plane was built for.
//!
//! The example plays both sides of the artifact boundary:
//!
//! 1. **Training side** — fits one [`Engine`] per tenant and publishes
//!    each as a **bundle** file into a spool directory (atomically:
//!    temp file + rename, the workflow the watcher expects).
//! 2. **Daemon side** — runs a [`SpoolWatcher`] on a background thread.
//!    The watcher discovers the bundles, validates each **zero-copy and
//!    exactly once** ([`MappedFile`] + `SnapshotView` +
//!    `Engine::from_view`), and keeps an [`EngineRegistry`] in sync
//!    while the main thread streams traffic through it. Mid-stream, a
//!    tenant is **retrained and its new bundle dropped into the spool**:
//!    the watcher swaps it in with zero downtime and — via the
//!    [`StreamState`] baseline transplant — a **warm adaptive
//!    threshold** (the session counters and `mean + k·σ` baseline carry
//!    over instead of re-entering warmup). A corrupt bundle dropped into
//!    the spool is rejected with a typed error and the old engine keeps
//!    serving. Finally the daemon "restarts": the engine is saved with
//!    its live baseline (`save_with_stream`, the optional `STREAM`
//!    bundle section) and reloaded warm.
//!
//! Every wait in this example is bounded by a deadline, so a wedged
//! watcher turns into a loud failure rather than a hang — CI runs this
//! binary under a hard `timeout` as the hot-reload soak test.
//!
//! ```text
//! cargo run --release --example serve_daemon
//! ```

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use ghsom_suite::prelude::*;

/// Tenants with deliberately different traffic profiles.
const TENANTS: [(&str, u64); 3] = [("edge-eu", 11), ("edge-us", 23), ("core-dc", 37)];

/// Streaming warmup: short enough that the example gets past it.
const WARMUP: u64 = 200;

/// Shard width for the serving loop: `GHSOM_SHARDS` if set, else the
/// host's core count. Width 1 degenerates to the plain inline engine,
/// so the knob is safe to leave unset on small machines.
fn shard_width() -> usize {
    std::env::var("GHSOM_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

fn fit_tenant_engine(seed: u64, n_train: usize) -> Result<Engine, Box<dyn std::error::Error>> {
    let (train, _) = traffic::synth::kdd_train_test(n_train, 10, seed)?;
    let config = EngineConfig::default()
        .with_ghsom(GhsomConfig::default().with_epochs(3, 3).with_seed(seed))
        .with_stream(4.0, WARMUP);
    Ok(Engine::fit(&config, &train)?)
}

/// Publish a bundle the way a production writer should: write to a temp
/// name in the same directory, then atomically rename into place. The
/// watcher never sees a half-written file this way (and if one slips
/// through anyway, the checksum rejects it without touching the
/// serving engine).
fn publish(spool: &Path, tenant: &str, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = spool.join(format!(".{tenant}.bundle.tmp"));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, spool.join(format!("{tenant}.bundle")))
}

/// Wait (bounded) for a condition, failing loudly on timeout — the
/// hot-reload soak contract: a wedged watcher fails, it does not hang.
fn await_or_die(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !done() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Training side: one bundle artifact per tenant -------------------
    let spool =
        std::env::temp_dir().join(format!("ghsom_serve_daemon_spool_{}", std::process::id()));
    std::fs::remove_dir_all(&spool).ok();
    std::fs::create_dir_all(&spool)?;
    println!(
        "fitting and spooling tenant bundles to {} …",
        spool.display()
    );
    for (tenant, seed) in TENANTS {
        let engine = fit_tenant_engine(seed, 2_000)?;
        publish(&spool, tenant, &engine.to_bytes())?;
        println!(
            "  {tenant}: {} maps / {} units, {:.2} MiB bundle",
            engine.compiled().map_count(),
            engine.compiled().total_units(),
            std::fs::metadata(spool.join(format!("{tenant}.bundle")))?.len() as f64
                / (1024.0 * 1024.0),
        );
    }

    // --- Daemon side: watcher discovers and deploys ----------------------
    println!("\ndaemon start: watching the spool directory …");
    let registry = Arc::new(EngineRegistry::new());
    let stop = Arc::new(AtomicBool::new(false));
    let (events_tx, events) = mpsc::channel();
    let watcher_thread = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        let spool = spool.clone();
        std::thread::spawn(move || {
            let mut watcher =
                SpoolWatcher::new(registry, spool).with_interval(Duration::from_millis(50));
            watcher.run(&stop, |event| {
                // The channel only closes when main is done with us.
                events_tx.send(event).ok();
            });
        })
    };
    await_or_die("initial deploys", Duration::from_secs(30), || {
        registry.len() == TENANTS.len()
    });
    for _ in 0..TENANTS.len() {
        match events.recv()? {
            SpoolEvent::Deployed { tenant, .. } => println!("  deployed `{tenant}`"),
            other => panic!("expected a deploy, got {other:?}"),
        }
    }

    // --- Serve an interleaved stream -------------------------------------
    let (_, stream_data) = traffic::synth::kdd_train_test(10, 6_000, 99)?;
    let records = stream_data.records();
    let shards = shard_width();
    println!(
        "\nscoring {} records round-robin across tenants ({shards}-shard serving plane) …",
        records.len()
    );
    let t0 = Instant::now();
    let mut flagged = 0usize;
    let mut swap_seen_at: Option<StreamStats> = None;
    for (i, chunk) in records.chunks(512).enumerate() {
        let tenant = TENANTS[i % TENANTS.len()].0;
        // One batch = one engine generation: `sharded` pins the current
        // generation behind a cheap per-batch view, so re-resolving per
        // batch is what makes hot swaps visible mid-stream — exactly as
        // with the plain `registry.observe_records` path, but the
        // stateless scoring pass fans out across `shards` workers.
        flagged += registry
            .sharded(tenant, shards)?
            .observe_records(chunk)?
            .iter()
            .filter(|v| v.anomalous)
            .count();

        // Mid-stream rollover for tenant 0 — but unlike the pre-watcher
        // daemon, nobody calls `swap`: retraining just drops a new
        // bundle into the spool and the watcher does the rest.
        if i == 8 {
            let stats = registry.get(TENANTS[0].0)?.stream_stats();
            assert!(
                stats.tracked > WARMUP,
                "fixture must be past warmup before the swap"
            );
            println!(
                "  retraining `{}` (baseline before swap: seen {}, tracked {}, mean {:.4})",
                TENANTS[0].0, stats.seen, stats.tracked, stats.score_mean,
            );
            let before = registry.get(TENANTS[0].0)?;
            let retrained = fit_tenant_engine(TENANTS[0].1 ^ 0xFF, 1_500)?;
            publish(&spool, TENANTS[0].0, &retrained.to_bytes())?;
            await_or_die("hot swap", Duration::from_secs(30), || {
                !Arc::ptr_eq(&before, &registry.get(TENANTS[0].0).unwrap())
            });
            swap_seen_at = Some(stats);
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    println!(
        "  {} records in {:.3} s ({:.0} records/s through full record→verdict engines), {} flagged",
        records.len(),
        elapsed,
        records.len() as f64 / elapsed,
        flagged,
    );

    // The swap event carried the old engine's final baseline, and the
    // new engine resumed from it: the session counters kept growing
    // across the swap instead of resetting — a warm `mean + k·σ`
    // threshold, no second warmup.
    let pre_swap = swap_seen_at.expect("the stream must have crossed the swap point");
    let swapped = match events.recv_timeout(Duration::from_secs(10))? {
        SpoolEvent::Swapped {
            tenant, carried, ..
        } => {
            assert_eq!(tenant, TENANTS[0].0);
            carried
        }
        other => panic!("expected the swap event, got {other:?}"),
    };
    let after = registry.get(TENANTS[0].0)?.stream_stats();
    assert!(
        swapped.tracked >= pre_swap.tracked,
        "baseline shrank across the swap"
    );
    assert!(
        after.tracked >= swapped.tracked,
        "baseline was not carried onto the new engine"
    );
    println!(
        "  hot-swapped `{}` with a warm threshold: tracked {} → {} across the swap (never reset)",
        TENANTS[0].0, pre_swap.tracked, after.tracked,
    );

    // --- A corrupt artifact must never evict a serving engine ------------
    println!("\ndropping a corrupt bundle for `{}` …", TENANTS[1].0);
    let serving = registry.get(TENANTS[1].0)?;
    let mut corrupt = fit_tenant_engine(77, 400)?.to_bytes();
    let at = corrupt.len() - 9;
    corrupt[at] ^= 0x20;
    publish(&spool, TENANTS[1].0, &corrupt)?;
    let error = match events.recv_timeout(Duration::from_secs(10))? {
        SpoolEvent::Rejected { error, .. } => error,
        other => panic!("expected a rejection, got {other:?}"),
    };
    println!("  rejected with a typed error: {error}");
    assert!(matches!(error, ServeError::ChecksumMismatch { .. }));
    assert!(
        Arc::ptr_eq(&serving, &registry.get(TENANTS[1].0)?),
        "a bad bundle must never evict the serving engine"
    );
    registry.score_record(TENANTS[1].0, &records[0])?; // still serving

    // --- Daemon restart: resume with a warm baseline ---------------------
    println!("\nsimulating a daemon restart for `{}` …", TENANTS[0].0);
    let engine = registry.get(TENANTS[0].0)?;
    let shutdown_stats = engine.stream_stats();
    let resume_path = spool.join("resume.snapshot");
    engine.save_with_stream(&resume_path)?; // bundle + optional STREAM section
    let resumed = Engine::load(&resume_path)?;
    assert_eq!(resumed.stream_stats(), shutdown_stats);
    println!(
        "  reloaded with the STREAM section: resumed at seen {}, tracked {} (no cold start)",
        resumed.stream_stats().seen,
        resumed.stream_stats().tracked,
    );

    // --- Shut down -------------------------------------------------------
    stop.store(true, Ordering::Relaxed);
    watcher_thread.join().expect("watcher thread panicked");
    for tenant in registry.tenants() {
        let stats = registry.get(&tenant)?.stream_stats();
        println!(
            "  `{tenant}`: seen {} flagged {} (baseline over {} tracked scores)",
            stats.seen, stats.flagged, stats.tracked,
        );
        registry.retire(&tenant)?;
    }
    assert!(registry.is_empty());
    std::fs::remove_dir_all(&spool).ok();
    println!("\ndaemon shut down cleanly");
    Ok(())
}
