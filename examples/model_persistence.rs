//! Model persistence: train once, ship the model as a **binary
//! snapshot**, reload it in a "fresh process" and verify the projections
//! are bit-identical — the ship-a-trained-model workflow, one layer below
//! the `Engine` facade.
//!
//! > For deployments, prefer the one-artifact **engine bundle**
//! > (`Engine::save`/`Engine::load`, see `examples/serve_daemon.rs`): it
//! > carries the pipeline, arena and detector state in a single
//! > checksummed file. This example shows the two-artifact split the
//! > bundle packages up — useful when the pipeline/detector state must
//! > stay human-editable or ship on a different cadence than the model.
//!
//! Two artifacts are written:
//!
//! * `ghsom_model.ghsom` — the compiled hierarchy in the versioned binary
//!   snapshot format (magic + checksummed aligned sections; see
//!   `ghsom_serve::snapshot`). This is the serving artifact: compact,
//!   validated on load, zero-copy mappable.
//! * `ghsom_detector.json` — the feature pipeline + fitted detector
//!   thresholds/labels through JSON serde. JSON remains the
//!   **debug/interchange** path: human-inspectable and stable across
//!   representations, but it must be parsed and rebuilt on load, carries
//!   no integrity check, and cannot be mapped — the snapshot is the
//!   serving artifact.
//!
//! ```text
//! cargo run --release --example model_persistence
//! ```

use ghsom_suite::prelude::*;
use serde::{Deserialize, Serialize};

/// The slow-changing, human-readable part of a deployment: the exact
/// input transform and the fitted detector state (labels + threshold),
/// versioned together. The heavyweight hierarchy ships separately as a
/// binary snapshot.
#[derive(Serialize, Deserialize)]
struct DetectorArtifact {
    format_version: u32,
    pipeline: KddPipeline,
    detector: HybridGhsomDetector,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Training process -------------------------------------------------
    println!("training …");
    let (train, test) = traffic::synth::kdd_train_test(3_000, 1_000, 21)?;
    let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train)?;
    let x_train = pipeline.transform_dataset(&train)?;
    let labels: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
    let model = GhsomModel::train(
        &GhsomConfig::default()
            .with_tau1(0.3)
            .with_tau2(0.03)
            .with_seed(21),
        &x_train,
    )?;
    let detector = HybridGhsomDetector::fit(model, &x_train, &labels, 0.99)?;

    // Compile the hierarchy and write the binary snapshot.
    let compiled = detector.labeled().model().compile()?;
    let snapshot_path = std::env::temp_dir().join("ghsom_model.ghsom");
    compiled.save(&snapshot_path)?;
    println!(
        "  wrote {} ({:.2} MiB binary snapshot, {} maps / {} units)",
        snapshot_path.display(),
        compiled.to_bytes().len() as f64 / (1024.0 * 1024.0),
        compiled.map_count(),
        compiled.total_units(),
    );

    // Write the pipeline + detector state as JSON (debug/interchange).
    let artifact = DetectorArtifact {
        format_version: 2,
        pipeline,
        detector,
    };
    let json = serde_json::to_string(&artifact)?;
    let json_path = std::env::temp_dir().join("ghsom_detector.json");
    std::fs::write(&json_path, &json)?;
    println!(
        "  wrote {} ({:.2} MiB JSON artifact)",
        json_path.display(),
        json.len() as f64 / (1024.0 * 1024.0)
    );

    // --- "Deployment process" --------------------------------------------
    println!("reloading …");
    let reloaded: DetectorArtifact = serde_json::from_str(&std::fs::read_to_string(&json_path)?)?;
    assert_eq!(reloaded.format_version, 2);
    let served_model = CompiledGhsom::load(&snapshot_path)?;
    // Move the fitted thresholds/labels onto the reloaded compiled plane.
    let served = reloaded.detector.with_scorer(served_model);

    // Projections and verdicts must agree exactly between the trained
    // tree and the snapshot-reloaded arena.
    let mut flagged = 0usize;
    for rec in test.iter() {
        let x_orig = artifact.pipeline.transform(rec)?;
        let x_new = reloaded.pipeline.transform(rec)?;
        assert_eq!(x_orig, x_new, "pipeline transform drifted");
        let p_tree = artifact.detector.labeled().model().project(&x_orig)?;
        let p_flat = served.labeled().model().project(&x_new)?;
        assert_eq!(p_tree.leaf_key(), p_flat.leaf_key(), "leaf key drifted");
        assert_eq!(
            p_tree.leaf_qe().to_bits(),
            p_flat.leaf_qe().to_bits(),
            "leaf QE drifted"
        );
        let v_orig = artifact.detector.is_anomalous(&x_orig)?;
        let v_new = served.is_anomalous(&x_new)?;
        assert_eq!(v_orig, v_new, "detector verdict drifted");
        if v_new {
            flagged += 1;
        }
    }
    println!(
        "  verified: {} projections bit-identical pre/post snapshot reload ({} flagged of {})",
        test.len(),
        flagged,
        test.len()
    );
    std::fs::remove_file(&snapshot_path).ok();
    std::fs::remove_file(&json_path).ok();
    Ok(())
}
