//! Model persistence: train once, serialize the pipeline + detector as a
//! single JSON artifact, reload it in a "fresh process" and verify the
//! verdicts are identical — the ship-a-trained-model workflow.
//!
//! ```text
//! cargo run --release --example model_persistence
//! ```

use ghsom_suite::prelude::*;
use serde::{Deserialize, Serialize};

/// Everything a deployment needs: the exact input transform and the
/// fitted detector, versioned together.
#[derive(Serialize, Deserialize)]
struct DetectorArtifact {
    format_version: u32,
    pipeline: KddPipeline,
    detector: HybridGhsomDetector,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Training process -------------------------------------------------
    println!("training …");
    let (train, test) = traffic::synth::kdd_train_test(3_000, 1_000, 21)?;
    let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train)?;
    let x_train = pipeline.transform_dataset(&train)?;
    let labels: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
    let model = GhsomModel::train(
        &GhsomConfig {
            tau1: 0.3,
            tau2: 0.03,
            seed: 21,
            ..Default::default()
        },
        &x_train,
    )?;
    let detector = HybridGhsomDetector::fit(model, &x_train, &labels, 0.99)?;

    let artifact = DetectorArtifact {
        format_version: 1,
        pipeline,
        detector,
    };
    let json = serde_json::to_string(&artifact)?;
    let path = std::env::temp_dir().join("ghsom_detector.json");
    std::fs::write(&path, &json)?;
    println!(
        "  wrote {} ({:.1} MiB)",
        path.display(),
        json.len() as f64 / (1024.0 * 1024.0)
    );

    // --- "Deployment process" --------------------------------------------
    println!("reloading …");
    let reloaded: DetectorArtifact = serde_json::from_str(&std::fs::read_to_string(&path)?)?;
    assert_eq!(reloaded.format_version, 1);

    // Verdicts must agree exactly between the trained and reloaded
    // detectors.
    let mut flagged = 0usize;
    for rec in test.iter() {
        let x_orig = artifact.pipeline.transform(rec)?;
        let x_new = reloaded.pipeline.transform(rec)?;
        assert_eq!(x_orig, x_new, "pipeline transform drifted");
        let v_orig = artifact.detector.is_anomalous(&x_orig)?;
        let v_new = reloaded.detector.is_anomalous(&x_new)?;
        assert_eq!(v_orig, v_new, "detector verdict drifted");
        if v_new {
            flagged += 1;
        }
    }
    println!(
        "  verified: {} verdicts identical pre/post reload ({} flagged of {})",
        test.len(),
        flagged,
        test.len()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
