//! Map exploration: inspect what a trained GHSOM learned — the hierarchy
//! tree, per-map U-matrices and the attack categories each leaf unit
//! captured. This mirrors the qualitative "map analysis" sections of
//! SOM-based IDS papers.
//!
//! ```text
//! cargo run --release --example map_exploration
//! ```

use std::collections::HashMap;

use ghsom_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut gen = traffic::synth::TrafficGenerator::new(traffic::synth::MixSpec::kdd_train(), 5)?;
    let train = gen.generate(5_000);
    let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train)?;
    let x_train = pipeline.transform_dataset(&train)?;

    println!("training GHSOM …");
    let model = GhsomModel::train(
        &GhsomConfig::default()
            .with_tau1(0.3)
            .with_tau2(0.03)
            .with_seed(5),
        &x_train,
    )?;
    let stats = model.topology_stats();
    println!(
        "hierarchy: {} maps, {} units, depth {} (mqe0 = {:.4})\n",
        stats.maps,
        stats.total_units,
        stats.max_depth,
        model.mqe0()
    );

    // --- Hierarchy tree ---------------------------------------------------
    println!("hierarchy tree (map: rows x cols [training hits]):");
    print_tree(&model, 0, 0);

    // --- Per-unit category census of the root map -------------------------
    println!("\nroot-map unit census (majority category per unit):");
    let mut unit_census: HashMap<usize, HashMap<AttackCategory, usize>> = HashMap::new();
    for (x, rec) in x_train.iter_rows().zip(train.iter()) {
        let projection = model.project(x)?;
        let root_step = projection.steps()[0];
        *unit_census
            .entry(root_step.unit)
            .or_default()
            .entry(rec.category())
            .or_insert(0) += 1;
    }
    let root = model.root();
    let topo = root.som().topology();
    for r in 0..topo.rows() {
        let mut line = String::new();
        for c in 0..topo.cols() {
            let unit = topo.index(r, c);
            let cell = match unit_census.get(&unit) {
                Some(tally) => {
                    let (cat, _) = tally.iter().max_by_key(|(_, &n)| n).unwrap();
                    match cat {
                        AttackCategory::Normal => "norm ",
                        AttackCategory::Dos => "dos  ",
                        AttackCategory::Probe => "probe",
                        AttackCategory::R2l => "r2l  ",
                        AttackCategory::U2r => "u2r  ",
                    }
                }
                None => "  .  ",
            };
            line.push_str(cell);
            line.push(' ');
        }
        println!("  {line}");
    }

    // --- U-matrix of the root map -----------------------------------------
    println!("\nroot-map U-matrix (higher = cluster boundary):");
    let umatrix = root.som().umatrix();
    let max = umatrix.iter().cloned().fold(1e-12, f64::max);
    let shades = [' ', '.', ':', '+', '#'];
    for r in 0..topo.rows() {
        let mut line = String::new();
        for c in 0..topo.cols() {
            let v = umatrix[topo.index(r, c)] / max;
            let shade =
                shades[((v * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1)];
            line.push(shade);
            line.push(shade);
        }
        println!("  |{line}|");
    }

    // --- What an attack projection looks like ------------------------------
    println!("\nprojection traces:");
    for ty in [AttackType::Normal, AttackType::Smurf, AttackType::Portsweep] {
        let rec = gen.sample_of(ty);
        let x = pipeline.transform(&rec)?;
        let p = model.project(&x)?;
        let path: Vec<String> = p
            .steps()
            .iter()
            .map(|s| format!("map{}→unit{} (qe {:.3})", s.node, s.unit, s.distance))
            .collect();
        println!("  {:<12} {}", ty.to_string(), path.join("  →  "));
    }
    Ok(())
}

fn print_tree(model: &ghsom_suite::core::GhsomModel, node: usize, indent: usize) {
    let n = &model.nodes()[node];
    let topo = n.som().topology();
    let hits: usize = n.unit_hits().iter().sum();
    println!(
        "{:indent$}map {}: {}x{} [{} hits]",
        "",
        node,
        topo.rows(),
        topo.cols(),
        hits,
        indent = indent
    );
    for unit in 0..n.som().len() {
        if let Some(child) = n.child_of_unit(unit) {
            print_tree(model, child, indent + 2);
        }
    }
}
