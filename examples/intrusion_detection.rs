//! Intrusion detection benchmark: GHSOM against all baselines, with
//! per-category and unseen-attack breakdowns — the workload the paper's
//! evaluation is built around.
//!
//! ```text
//! cargo run --release --example intrusion_detection
//! ```

use evalkit::report::{cell, Table};
use ghsom_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, test) = traffic::synth::kdd_train_test(6_000, 4_000, 7)?;
    let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train)?;
    let x_train = pipeline.transform_dataset(&train)?;
    let x_test = pipeline.transform_dataset(&test)?;
    let train_labels: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();

    println!("training GHSOM and baselines on {} records …", train.len());
    let config = GhsomConfig::default()
        .with_tau1(0.3)
        .with_tau2(0.03)
        .with_epochs(3, 3)
        .with_seed(7);
    let model = GhsomModel::train(&config, &x_train)?;
    let units = model.total_units();
    println!(
        "  ghsom: {} maps / {} units / depth {}",
        model.map_count(),
        units,
        model.max_depth()
    );

    let ghsom = HybridGhsomDetector::fit(model, &x_train, &train_labels, 0.99)?;
    let side = ((units as f64).sqrt().round() as usize).clamp(4, 16);
    let flat = FlatSomDetector::fit(&x_train, &train_labels, side, side, 0.99, 8)?;
    let kmeans = KMeansDetector::fit(&x_train, &train_labels, units.clamp(8, 64), 0.99, 9)?;
    let grid = GrowingGridDetector::fit(&x_train, &train_labels, 0.3, 0.99, 10)?;

    let detectors: Vec<(&str, &dyn Detector)> = vec![
        ("ghsom-hybrid", &ghsom),
        ("growing-grid", &grid),
        ("flat-som", &flat),
        ("kmeans", &kmeans),
    ];

    // Overall table.
    let mut overall = Table::new(vec!["detector", "DR", "FPR", "F1", "accuracy"]);
    for (name, det) in &detectors {
        let mut m = evalkit::BinaryMetrics::new();
        for (x, rec) in x_test.iter_rows().zip(test.iter()) {
            m.record(rec.is_attack(), det.is_anomalous(x)?);
        }
        overall.add_row(vec![
            name.to_string(),
            cell(m.detection_rate()),
            cell(m.false_positive_rate()),
            cell(m.f1()),
            cell(m.accuracy()),
        ]);
    }
    println!("\noverall detection (test set includes unseen attack types):\n{overall}");

    // Per-category detection rates for the GHSOM.
    let mut per_cat = Table::new(vec!["category", "records", "flagged", "rate"]);
    for cat in AttackCategory::ALL {
        let mut total = 0usize;
        let mut flagged = 0usize;
        for (x, rec) in x_test.iter_rows().zip(test.iter()) {
            if rec.category() == cat {
                total += 1;
                if ghsom.is_anomalous(x)? {
                    flagged += 1;
                }
            }
        }
        if total > 0 {
            per_cat.add_row(vec![
                cat.to_string(),
                total.to_string(),
                flagged.to_string(),
                cell(flagged as f64 / total as f64),
            ]);
        }
    }
    println!("ghsom per-category detection (normal row = false positives):\n{per_cat}");

    // Unseen attack types: the hard part of the corrected test set.
    let mut unseen = Table::new(vec!["unseen attack", "records", "detected", "rate"]);
    let mut unseen_types: Vec<AttackType> = test
        .distinct_labels()
        .into_iter()
        .filter(|t| t.is_test_only())
        .collect();
    unseen_types.sort();
    for ty in unseen_types {
        let mut total = 0usize;
        let mut flagged = 0usize;
        for (x, rec) in x_test.iter_rows().zip(test.iter()) {
            if rec.label == ty {
                total += 1;
                if ghsom.is_anomalous(x)? {
                    flagged += 1;
                }
            }
        }
        unseen.add_row(vec![
            ty.to_string(),
            total.to_string(),
            flagged.to_string(),
            cell(flagged as f64 / total.max(1) as f64),
        ]);
    }
    println!("ghsom on attack types never seen in training:\n{unseen}");

    // Explain one flagged record: which features pushed it off its leaf
    // prototype (the evidence an operator acts on).
    if let Some((x, rec)) = x_test
        .iter_rows()
        .zip(test.iter())
        .find(|(x, rec)| rec.is_attack() && ghsom.is_anomalous(x).unwrap_or(false))
    {
        let explanation = detect::explain::explain(ghsom.labeled().model(), pipeline.schema(), x)?;
        println!(
            "why was this {} record flagged? top feature deviations:\n{}",
            rec.label,
            explanation.render(5)
        );
    }
    Ok(())
}
