//! Streaming detection over raw flows: simulate a live link with injected
//! attack episodes, derive KDD-style features in a sliding window, and run
//! the thread-safe streaming detector — the deployment scenario the paper
//! motivates.
//!
//! ```text
//! cargo run --release --example streaming_detection
//! ```

use detect::online::StreamingDetector;
use ghsom_suite::prelude::*;
use traffic::flows::{AttackEpisode, EpisodeKind, FlowSimConfig, FlowSimulator};
use traffic::window::derive_dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Train offline on a labelled flow trace --------------------------
    // The training records are derived from raw flows with the *same*
    // window aggregation used online, so the training distribution matches
    // the deployment distribution (content features are zero in both).
    println!("offline phase: simulating a labelled training trace …");
    let mut train_sim = FlowSimulator::new(
        FlowSimConfig {
            duration_secs: 180.0,
            background_rate: 80.0,
            server_count: 32,
            client_count: 256,
            episodes: vec![
                AttackEpisode {
                    kind: EpisodeKind::SynFlood {
                        target: 0xC0A8_0001,
                    },
                    start: 60.0,
                    duration: 20.0,
                    rate: 500.0,
                },
                AttackEpisode {
                    kind: EpisodeKind::PortScan {
                        target: 0xC0A8_0003,
                    },
                    start: 120.0,
                    duration: 20.0,
                    rate: 120.0,
                },
            ],
        },
        99,
    );
    let train = derive_dataset(&train_sim.generate());
    println!("  {} training records derived from flows", train.len());
    let pipeline = KddPipeline::fit(&PipelineConfig::default(), &train)?;
    let x_train = pipeline.transform_dataset(&train)?;
    let labels: Vec<AttackCategory> = train.iter().map(|r| r.category()).collect();
    let model = GhsomModel::train(
        &GhsomConfig::default()
            .with_tau1(0.3)
            .with_tau2(0.03)
            .with_seed(3),
        &x_train,
    )?;
    let detector = HybridGhsomDetector::fit(model, &x_train, &labels, 0.995)?;
    // Serve from the compiled plane: the tree trains, the arena serves
    // (bit-identical verdicts, no pointer chasing on the hot path).
    let compiled = detector.labeled().model().compile()?;
    let stream = StreamingDetector::new(detector.with_scorer(compiled), 4.0, 200);

    // --- Simulate a live link -------------------------------------------
    println!("online phase: simulating 120 s of traffic with two attacks …");
    let sim_config = FlowSimConfig {
        duration_secs: 120.0,
        background_rate: 80.0,
        server_count: 32,
        client_count: 256,
        episodes: vec![
            AttackEpisode {
                kind: EpisodeKind::SynFlood {
                    target: 0xC0A8_0001,
                },
                start: 40.0,
                duration: 15.0,
                rate: 500.0,
            },
            AttackEpisode {
                kind: EpisodeKind::PortScan {
                    target: 0xC0A8_0002,
                },
                start: 85.0,
                duration: 15.0,
                rate: 120.0,
            },
        ],
    };
    let mut sim = FlowSimulator::new(sim_config, 11);
    let flows = sim.generate();
    let derived = derive_dataset(&flows);
    println!("  {} flows observed", flows.len());

    // --- Stream through the detector, reporting per-10s buckets ----------
    // Records arrive in bursts: each burst runs through the batched
    // columnar transform into one reused buffer, and the streaming
    // detector walks the buffer as a borrowed view — one grouped
    // hierarchy traversal per burst, zero allocations per record, and
    // verdicts identical to observing record by record.
    const BURST: usize = 256;
    let mut scratch = FeatureMatrix::new();
    let mut verdicts = Vec::with_capacity(derived.len());
    for burst in derived.records().chunks(BURST) {
        pipeline.transform_batch(burst, &mut scratch)?;
        verdicts.extend(stream.observe_batch_view(scratch.as_view())?);
    }

    let mut bucket_flagged = [0usize; 12];
    let mut bucket_total = [0usize; 12];
    let mut bucket_truth = [0usize; 12];
    for (flow, verdict) in flows.iter().zip(&verdicts) {
        let bucket = ((flow.time / 10.0) as usize).min(11);
        bucket_total[bucket] += 1;
        if verdict.anomalous {
            bucket_flagged[bucket] += 1;
        }
        if flow.label.is_attack() {
            bucket_truth[bucket] += 1;
        }
    }

    println!("\n  window      flows   attacks   flagged   flag-rate");
    println!("  ------------------------------------------------------");
    for b in 0..12 {
        let marker = if bucket_truth[b] > 0 {
            "  << attack"
        } else {
            ""
        };
        println!(
            "  {:>3}-{:<4}s {:>7} {:>9} {:>9}   {:>6.3}{marker}",
            b * 10,
            (b + 1) * 10,
            bucket_total[b],
            bucket_truth[b],
            bucket_flagged[b],
            bucket_flagged[b] as f64 / bucket_total[b].max(1) as f64,
        );
    }
    let stats = stream.stats();
    println!(
        "\n  stream totals: {} observed, {} flagged ({:.2}%)",
        stats.seen,
        stats.flagged,
        100.0 * stats.flagged as f64 / stats.seen.max(1) as f64
    );
    Ok(())
}
